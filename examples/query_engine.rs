//! A resident verification engine answering a mixed query batch
//! (DESIGN.md §8): train a tiny classifier, mount it in a
//! `fannet_engine::Engine`, and push tolerance + check traffic through
//! the subsumption-aware verdict cache — twice, to watch re-analysis
//! become free.
//!
//! ```text
//! cargo run --release --example query_engine
//! ```

use std::time::Instant;

use fannet::data::normalize::Affine;
use fannet::data::Dataset;
use fannet::engine::batch::run_batch;
use fannet::engine::protocol::{parse_request, render_response};
use fannet::engine::{Engine, EngineConfig};
use fannet::nn::{fold, init, quantize, train, Activation};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The quickstart's toy problem: class 0 near (100, 10), class 1
    //    near (10, 100), trained with the paper's schedule and folded
    //    back to raw integer readings.
    let xs: Vec<Vec<f64>> = vec![
        vec![100.0, 10.0],
        vec![120.0, 5.0],
        vec![90.0, 20.0],
        vec![10.0, 110.0],
        vec![5.0, 130.0],
        vec![20.0, 95.0],
    ];
    let ys = vec![0, 0, 0, 1, 1, 1];
    let data = Dataset::new(xs.clone(), ys.clone(), 2)?;
    let norm = Affine::fit_max_abs(&data);
    let normalized = norm.apply_dataset(&data);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut net = init::fresh_network(
        &mut rng,
        &[2, 8, 2],
        Activation::ReLU,
        init::Init::XavierUniform,
    );
    train::train(
        &mut net,
        normalized.samples(),
        normalized.labels(),
        &train::TrainConfig::paper(),
    )?;
    let exact =
        quantize::to_rational_default(&fold::fold_input_affine(&net, norm.scale(), norm.offset())?);

    // 2. Mount the network in a resident engine. The fingerprint is the
    //    cache namespace: verdicts can never leak across models.
    let engine = Engine::new(exact, EngineConfig::serving());
    println!("engine up, network fingerprint {}", engine.fingerprint());

    // 3. A mixed batch in the JSONL wire format `fannet serve` speaks:
    //    one radius search plus sweep-style checks per training input.
    let mut lines = Vec::new();
    for (i, (x, &y)) in xs.iter().zip(&ys).enumerate() {
        let input = format!("[\"{}\",\"{}\"]", x[0], x[1]);
        lines.push(format!(
            "{{\"op\":\"tolerance\",\"id\":{},\"input\":{input},\"label\":{y},\"max_delta\":100}}",
            10 * i
        ));
        for (j, delta) in [10i64, 30, 60, 90].into_iter().enumerate() {
            lines.push(format!(
                "{{\"op\":\"check\",\"id\":{},\"input\":{input},\"label\":{y},\"delta\":{delta}}}",
                10 * i + j + 1
            ));
        }
    }
    let requests: Vec<_> = lines
        .iter()
        .map(|l| parse_request(l).expect("well-formed request"))
        .collect();

    // 4. Round one: the cache is cold, most queries reach the solver.
    let t = Instant::now();
    let responses = run_batch(&engine, &requests, 1);
    let cold = t.elapsed();
    for response in responses.iter().take(5) {
        println!("  {}", render_response(response));
    }
    println!("  … {} responses in {cold:?}", responses.len());
    let s = engine.stats();
    println!(
        "round 1: {} queries → {} exact hits, {} subsumption hits, {} misses",
        s.lookups(),
        s.exact_hits,
        s.subsumption_hits,
        s.misses
    );

    // 5. Round two: identical traffic, warm cache — re-analysis is
    //    answered without a single fresh branch-and-bound.
    let before = engine.stats();
    let t = Instant::now();
    let warm_responses = run_batch(&engine, &requests, 1);
    let warm = t.elapsed();
    // Only the `source` attribution (and its zeroed solver counters) may
    // change between rounds — verdicts and witnesses never do.
    let verdicts = |responses: &[fannet::engine::protocol::Response]| -> Vec<String> {
        responses
            .iter()
            .map(|r| {
                render_response(r)
                    .split(",\"source\":")
                    .next()
                    .expect("split yields a prefix")
                    .to_string()
            })
            .collect()
    };
    assert_eq!(
        verdicts(&responses),
        verdicts(&warm_responses),
        "cache reuse never changes answers"
    );
    let s = engine.stats();
    println!(
        "round 2: +{} exact hits, +{} subsumption hits, +{} misses in {warm:?}",
        s.exact_hits - before.exact_hits,
        s.subsumption_hits - before.subsumption_hits,
        s.misses - before.misses,
    );
    println!(
        "cumulative solver work: {} boxes across {} cached verdicts",
        engine.solver_stats().boxes_visited,
        engine.cache_len()
    );
    Ok(())
}
