//! The paper's complete leukemia case study (§V), end to end:
//! dataset generation → mRMR gene selection → training → exact
//! quantization → the full FANNet analysis, printed as the same tables the
//! paper reports in Fig. 4.
//!
//! ```text
//! cargo run --release --example leukemia_case_study
//! ```

use fannet::core::casestudy::{build, CaseStudyConfig};
use fannet::core::pipeline::{self, AnalysisConfig};
use fannet::data::golub::{L0_AML, L1_ALL};

fn main() {
    let config = CaseStudyConfig::paper();
    println!(
        "generating synthetic Golub dataset: {} genes, {}+{} samples…",
        config.golub.genes,
        config.golub.train_per_class[0] + config.golub.train_per_class[1],
        config.golub.test_per_class[0] + config.golub.test_per_class[1],
    );
    let cs = build(&config);

    println!(
        "mRMR selected genes: {:?} (relevance {:?})",
        cs.selection.features,
        cs.selection
            .relevance
            .iter()
            .map(|r| (r * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "training: {} epochs, final accuracy {:.2}% (paper: 100%)",
        cs.train_report.epoch_loss.len(),
        100.0 * cs.train_accuracy()
    );
    println!(
        "test accuracy: {:.2}% (paper: 94.12%)",
        100.0 * cs.test_accuracy()
    );
    println!(
        "training-set composition: {} AML (L0) / {} ALL (L1) — {:.0}% L1 (paper: ~70%)",
        cs.train5.class_counts()[L0_AML],
        cs.train5.class_counts()[L1_ALL],
        100.0 * cs.train5.label_fraction(L1_ALL)
    );

    println!("\nrunning the FANNet analysis (P1 → P2 → P3 → bias/sensitivity/boundary)…\n");
    let report = pipeline::run(
        &cs.exact_net,
        &cs.float_net,
        &cs.train5,
        &cs.test5,
        &AnalysisConfig::default(),
    );
    println!("{}", report.render_text());
    println!(
        "paper comparison: tolerance ±{}% here vs ±11% in the paper",
        report.noise_tolerance()
    );
}
