//! Screening-tier showdown (DESIGN.md §6/§10): the same P2 queries
//! answered under every [`ScreeningTier`], with identical verdicts and
//! witnesses but very different work profiles — the point of the
//! zonotope tier is the collapse in explored branch-and-bound boxes at
//! wide noise ranges, where interval decorrelation forces thousands of
//! splits the affine-form output-difference classification avoids.
//!
//! ```text
//! cargo run --release --example screening_tiers
//! ```
//!
//! [`ScreeningTier`]: fannet::verify::bab::ScreeningTier

use fannet::core::behavior;
use fannet::core::casestudy::{build, CaseStudyConfig};
use fannet::verify::bab::{find_counterexample_with, CheckerConfig, ScreeningTier};
use fannet::verify::region::NoiseRegion;
use std::time::Instant;

fn main() {
    let cs = build(&CaseStudyConfig::paper());
    let correct = behavior::correctly_classified(&cs.exact_net, &cs.test5);
    let idx = correct[0];
    let x = behavior::rational_input(&cs.test5.samples()[idx]);
    let label = cs.test5.labels()[idx];
    println!(
        "P2 queries against the trained 5–20–2 network, test input {idx} (label L{label});\n\
         every tier returns the identical verdict and witness — only the\n\
         per-box work changes.\n"
    );

    let tiers = [
        ScreeningTier::None,
        ScreeningTier::Interval,
        ScreeningTier::Zonotope,
        ScreeningTier::Cascade,
    ];
    println!(
        "{:>5}  {:>9}  {:>10}  {:>7}  {:>7}  {:>11}  {:>11}  {:>8}",
        "range", "tier", "time", "boxes", "splits", "interval", "zonotope", "verdict"
    );
    for delta in [10i64, 20, 30, 40, 50] {
        let region = NoiseRegion::symmetric(delta, 5);
        let mut witness = None;
        for tier in tiers {
            let config = CheckerConfig::serial_exact().with_screening(tier);
            let t = Instant::now();
            let (outcome, stats) =
                find_counterexample_with(&cs.exact_net, &x, label, &region, &config)
                    .expect("widths match");
            let elapsed = t.elapsed();
            // The cross-tier invariant the whole design rests on.
            let ce = outcome.counterexample().map(|c| c.noise.clone());
            match &witness {
                None => witness = Some(ce),
                Some(baseline) => assert_eq!(
                    baseline, &ce,
                    "tiers must return identical outcomes and witnesses"
                ),
            }
            let rate = |r: Option<f64>| match r {
                Some(r) => format!("{:5.0}% hits", 100.0 * r),
                None => "—".to_string(),
            };
            println!(
                "±{delta:3}%  {:>9}  {:>8.2?}  {:>7}  {:>7}  {:>11}  {:>11}  {}",
                tier.name(),
                elapsed,
                stats.boxes_visited,
                stats.splits,
                rate(stats.interval_hit_rate()),
                rate(stats.zonotope_hit_rate()),
                if outcome.is_robust() {
                    "robust".to_string()
                } else {
                    format!(
                        "flips at {}",
                        outcome.counterexample().expect("checked").noise
                    )
                },
            );
        }
        println!();
    }
    println!(
        "reading the table: at small ranges the interval tier decides every box\n\
         at the root; at wide ranges its decorrelated outputs overlap and it\n\
         splits hundreds of boxes, while the zonotope classifies the *output\n\
         difference* — input correlations cancel — and prunes the tree near the\n\
         root. The cascade always pays the cheapest tier that works."
    );
}
