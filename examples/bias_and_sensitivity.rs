//! Training-bias and input-node-sensitivity analysis (paper §V-C.3/4),
//! including the balanced-retraining ablation (A1 in DESIGN.md): when the
//! ≈70 %-L1 training set is rebalanced to 50/50 and the network retrained,
//! the directional bias in the extracted counterexamples should weaken or
//! flip — demonstrating that FANNet detects *training-data* bias, not an
//! artifact of the architecture.
//!
//! ```text
//! cargo run --release --example bias_and_sensitivity
//! ```

use fannet::core::casestudy::{build, CaseStudyConfig};
use fannet::core::pipeline::{self, AnalysisConfig};
use fannet::core::FannetReport;
use fannet::data::golub::{L0_AML, L1_ALL};
use fannet::data::normalize::Affine;
use fannet::nn::{fold, init, quantize, train, Activation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn describe(tag: &str, report: &FannetReport) {
    println!("--- {tag} ---");
    println!(
        "flows: L0->L1 = {}, L1->L0 = {}   (majority flow {:.0}%)",
        report.bias.flow(L0_AML, L1_ALL),
        report.bias.flow(L1_ALL, L0_AML),
        100.0 * report.bias.majority_flow_fraction()
    );
    println!(
        "fragility: L0 {:?}, L1 {:?}  most fragile: {:?}",
        report.bias.per_class_fragility[L0_AML],
        report.bias.per_class_fragility[L1_ALL],
        report.bias.most_fragile_class()
    );
    for n in &report.sensitivity.nodes {
        println!(
            "  node i{}: +{} / -{} / zero {}  asymmetry {:+.2}{}",
            n.node + 1,
            n.positive,
            n.negative,
            n.zero,
            n.sign_asymmetry(),
            if n.insensitive_to_positive() {
                "  << never positive"
            } else {
                ""
            }
        );
    }
    println!();
}

fn main() {
    let config = CaseStudyConfig::paper();
    let cs = build(&config);
    let analysis = AnalysisConfig::default();

    // --- biased training set (the paper's setting) -----------------------
    let biased = pipeline::run(
        &cs.exact_net,
        &cs.float_net,
        &cs.train5,
        &cs.test5,
        &analysis,
    );
    println!(
        "biased training set: {:.0}% L1\n",
        100.0 * cs.train5.label_fraction(L1_ALL)
    );
    describe("biased (paper setting)", &biased);

    // --- ablation A1: balanced retraining --------------------------------
    let balanced_train = cs.train5.balanced_subsample(&mut StdRng::seed_from_u64(99));
    println!(
        "balanced training set: {} AML / {} ALL",
        balanced_train.class_counts()[L0_AML],
        balanced_train.class_counts()[L1_ALL]
    );
    let normalization = Affine::fit_max_abs(&balanced_train);
    let train_norm = normalization.apply_dataset(&balanced_train);
    let mut net = init::fresh_network(
        &mut StdRng::seed_from_u64(config.init_seed),
        &[5, config.hidden, 2],
        Activation::ReLU,
        init::Init::XavierUniform,
    );
    train::train(
        &mut net,
        train_norm.samples(),
        train_norm.labels(),
        &config.train,
    )
    .expect("shapes fixed by construction");
    let float_net = fold::fold_input_affine(&net, normalization.scale(), normalization.offset())
        .expect("same width");
    let exact_net = quantize::to_rational(&float_net, config.denom_bits);

    let rebalanced = pipeline::run(
        &exact_net,
        &float_net,
        &balanced_train,
        &cs.test5,
        &analysis,
    );
    describe("balanced retraining (ablation A1)", &rebalanced);

    println!(
        "bias_toward_majority: biased={:?}  balanced={:?}",
        biased.bias.bias_toward_majority(),
        rebalanced.bias.bias_toward_majority()
    );
    println!(
        "majority-flow fraction: biased={:.2}  balanced={:.2} (expect the biased run to be ≥)",
        biased.bias.majority_flow_fraction(),
        rebalanced.bias.majority_flow_fraction()
    );
}
