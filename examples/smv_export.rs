//! Behaviour extraction (paper Fig. 2, left): translate the trained
//! leukemia network into the SMV language, print the model, re-parse it,
//! flatten a small-noise instance into an explicit FSM, and check the P2
//! invariant with the explicit-state checker — then cross-validate the
//! verdict against the branch-and-bound engine.
//!
//! Also reproduces the paper's Fig. 3 state-space accounting
//! (3 states / 6 transitions → 65 states / 4160 transitions).
//!
//! ```text
//! cargo run --release --example smv_export
//! ```

use fannet::core::behavior;
use fannet::core::casestudy::{build, CaseStudyConfig};
use fannet::smv::explicit::check_invariant;
use fannet::smv::nn_to_smv::{network_to_smv, TranslationConfig};
use fannet::smv::parser::parse_module;
use fannet::smv::printer::print_module;
use fannet::smv::statespace::{growth_table, PaperFsm};
use fannet::smv::TransitionSystem;
use fannet::verify::bab;
use fannet::verify::region::NoiseRegion;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cs = build(&CaseStudyConfig::small());

    // Pick the first correctly classified test input.
    let correct = behavior::correctly_classified(&cs.exact_net, &cs.test5);
    let index = correct[0];
    let x = behavior::rational_input(&cs.test5.samples()[index]);
    let label = cs.test5.labels()[index];

    // --- translate to SMV with ±1% noise --------------------------------
    let module = network_to_smv(&cs.exact_net, &x, label, &TranslationConfig::symmetric(1));
    let text = print_module(&module);
    println!("== generated SMV model (truncated) ==");
    for line in text.lines().take(12) {
        println!("{line}");
    }
    println!(
        "…  [{} defines, {} noise variables]\n",
        module.defines.len(),
        module.vars.len()
    );

    // Round-trip through the parser.
    let reparsed = parse_module(&text)?;
    assert_eq!(reparsed, module);
    println!("parser round-trip: OK");

    // --- flatten and model-check (the nuXmv step) ------------------------
    let ts = TransitionSystem::from_module(&module, 1 << 20)?;
    println!(
        "flattened FSM: {} states, {} transitions",
        ts.state_count(),
        ts.transition_count()
    );
    let result = check_invariant(&ts, &module.invarspecs[0])?;
    println!(
        "explicit-state INVARSPEC check: {}",
        if result.holds() { "HOLDS" } else { "violated" }
    );

    // Cross-validate against branch-and-bound on the same region.
    let (bab_outcome, _) = bab::find_counterexample(
        &cs.exact_net,
        &x,
        label,
        &NoiseRegion::symmetric(1, x.len()),
    )?;
    assert_eq!(result.holds(), bab_outcome.is_robust());
    println!("branch-and-bound agrees: OK\n");

    // --- the paper's Fig. 3 numbers --------------------------------------
    let fig3b = PaperFsm::without_noise(2);
    let fig3c = PaperFsm::with_noise(2, 6);
    println!(
        "Fig. 3b (no noise):   {} states, {} transitions",
        fig3b.states(),
        fig3b.transitions()
    );
    println!(
        "Fig. 3c ([0,1]% x6):  {} states, {} transitions",
        fig3c.states(),
        fig3c.transitions()
    );
    println!("\nstate-space growth with ±delta on 5 input nodes:");
    for row in growth_table(&[0, 1, 2, 5, 11, 25, 50], 5) {
        println!(
            "  ±{:2}%: {:>20} states, {:>25} transitions",
            row.delta, row.states, row.transitions
        );
    }
    Ok(())
}
