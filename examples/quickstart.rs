//! Quickstart: train a tiny classifier, quantize it exactly, and ask the
//! FANNet verifier how much relative input noise it tolerates.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fannet::core::tolerance;
use fannet::data::normalize::Affine;
use fannet::data::Dataset;
use fannet::nn::{fold, init, quantize, train, Activation};
use fannet::numeric::Rational;
use fannet::verify::bab;
use fannet::verify::region::NoiseRegion;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A linearly separable toy problem: class 0 lives near (100, 10),
    //    class 1 near (10, 100) — integer "sensor readings".
    let xs: Vec<Vec<f64>> = vec![
        vec![100.0, 10.0],
        vec![120.0, 5.0],
        vec![90.0, 20.0],
        vec![10.0, 110.0],
        vec![5.0, 130.0],
        vec![20.0, 95.0],
    ];
    let ys = vec![0, 0, 0, 1, 1, 1];

    // 2. Train the paper's architecture style: FC → ReLU → FC → maxpool,
    //    with the DATE-2020 learning-rate schedule (0.5 ×40, 0.2 ×40).
    //    Training happens on max-abs-normalized features; the normalization
    //    is then folded back into the first layer so the final network
    //    consumes the raw integer readings (FANNet's noise domain).
    let data = Dataset::new(xs.clone(), ys.clone(), 2)?;
    let norm = Affine::fit_max_abs(&data);
    let normalized = norm.apply_dataset(&data);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut net = init::fresh_network(
        &mut rng,
        &[2, 8, 2],
        Activation::ReLU,
        init::Init::XavierUniform,
    );
    let report = train::train(
        &mut net,
        normalized.samples(),
        normalized.labels(),
        &train::TrainConfig::paper(),
    )?;
    println!(
        "trained: final accuracy {:.0}%",
        100.0 * report.final_accuracy()
    );
    let raw_net = fold::fold_input_affine(&net, norm.scale(), norm.offset())?;

    // 3. Quantize to exact rationals — every verdict below is a proof about
    //    THIS network, with no floating-point rounding anywhere.
    let exact = quantize::to_rational_default(&raw_net);

    // 4. One-shot robustness query (property P2): can ±8% relative noise
    //    flip the first training input?
    let x: Vec<Rational> = xs[0]
        .iter()
        .map(|&v| Rational::from_f64_exact(v).expect("finite"))
        .collect();
    let (outcome, stats) = bab::find_counterexample(&exact, &x, 0, &NoiseRegion::symmetric(8, 2))?;
    println!(
        "±8% on {:?}: {} ({} boxes explored)",
        xs[0],
        if outcome.is_robust() {
            "ROBUST (proved)"
        } else {
            "flips!"
        },
        stats.boxes_visited
    );

    // 5. The exact robustness radius of each input, by binary search.
    for (x, &y) in xs.iter().zip(&ys) {
        let qx: Vec<Rational> = x
            .iter()
            .map(|&v| Rational::from_f64_exact(v).expect("finite"))
            .collect();
        match tolerance::robustness_radius(&exact, &qx, y, 100) {
            Some(radius) => println!("input {x:?}: first flip at ±{radius}%"),
            None => println!("input {x:?}: robust through ±100%"),
        }
    }
    Ok(())
}
