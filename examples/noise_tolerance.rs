//! Noise-tolerance deep dive (paper §V-C.1/2): per-input robustness radii,
//! the Fig. 4 misclassification sweep, boundary analysis, and a
//! fixed-point-vs-exact comparison showing why the verifier works over
//! rationals.
//!
//! ```text
//! cargo run --release --example noise_tolerance
//! ```

use fannet::core::behavior;
use fannet::core::casestudy::{build, CaseStudyConfig};
use fannet::core::{boundary, tolerance};
use fannet::nn::quantize;
use fannet::numeric::Scalar;

fn main() {
    let cs = build(&CaseStudyConfig::paper());
    let correct = behavior::correctly_classified(&cs.exact_net, &cs.test5);
    println!(
        "analysing {} correctly classified of {} test inputs",
        correct.len(),
        cs.test5.len()
    );

    // --- per-input radii + tolerance -------------------------------------
    let report = tolerance::analyze(&cs.exact_net, &cs.test5, &correct, 50);
    println!("\nnoise tolerance: ±{}% (paper: ±11%)", report.tolerance());
    println!("\nper-input robustness radii:");
    for r in &report.per_input {
        match r.radius {
            Some(radius) => println!(
                "  test[{:2}] (L{}): first flip at ±{radius}%",
                r.index, r.label
            ),
            None => println!("  test[{:2}] (L{}): robust through ±50%", r.index, r.label),
        }
    }

    // --- the Fig. 4 sweep -------------------------------------------------
    println!("\nFig. 4 sweep (misclassified inputs per noise range):");
    for row in report.sweep(&[5, 10, 15, 20, 25, 30, 35, 40]) {
        let bar = "#".repeat(row.misclassified_inputs);
        println!(
            "  [-{:2},+{:2}] {:3}/{}  {bar}",
            row.delta, row.delta, row.misclassified_inputs, row.total_inputs
        );
    }

    // --- boundary analysis -------------------------------------------------
    let bd = boundary::analyze(&cs.exact_net, &cs.test5, &report, 15);
    println!(
        "\nboundary analysis: near (radius ≤ 15): {:?}",
        bd.near_boundary()
    );
    println!("far (robust at ±50%): {:?}", bd.far_from_boundary());
    println!(
        "margin/radius concordance: {:.2} (1.0 = identical orderings)",
        bd.margin_radius_concordance()
    );

    // --- deployment datapath check ----------------------------------------
    // The Q32.32 fixed-point network is what an embedded deployment would
    // run; verify it agrees with the exact model on the test set.
    let fixed_net = quantize::to_fixed(&cs.float_net);
    let mut disagreements = 0;
    for (sample, _) in cs.test5.iter() {
        let fx: Vec<fannet::numeric::Fixed> = sample.iter().map(|&v| Scalar::from_f64(v)).collect();
        let fixed_label = fixed_net.classify(&fx).expect("widths match");
        let exact_label = cs
            .exact_net
            .classify(&behavior::rational_input(sample))
            .expect("widths match");
        if fixed_label != exact_label {
            disagreements += 1;
        }
    }
    println!(
        "\nQ32.32 deployment datapath vs exact model: {disagreements}/{} disagreements",
        cs.test5.len()
    );
}
