//! `fannet` — command-line front end for the FANNet reproduction.
//!
//! ```text
//! fannet train [--small] --out model.json     train the leukemia case study
//!                                             and save the exact model
//! fannet check --model model.json --input 1,2,3,4,5 --label 0 --delta 11
//!                                             one P2 robustness query
//!                                             (--screening picks the tier)
//! fannet radius --model model.json --input 1,2,3,4,5 --label 0 [--max 50]
//!                                             exact robustness radius
//! fannet faults --model weight-noise --eps 0.02 [--net model.json]
//!                                             weight-fault robustness: per-class
//!                                             fault tolerance of the case-study
//!                                             network, or one query with
//!                                             --input/--label (DESIGN.md §11)
//! fannet joint [--deltas 0,2,5] [--small]     joint input×weight robustness:
//!                                             the per-class (δ, ε) frontier of
//!                                             the case-study network, or one
//!                                             query with --input/--label
//!                                             --delta/--model (DESIGN.md §12)
//! fannet export-smv --model model.json --input 1,2,3,4,5 --label 0 --delta 1
//!                                             print the SMV translation
//! fannet serve --model model.json [--once] [--threads N]
//!                                             resident JSONL query engine:
//!                                             requests on stdin, responses
//!                                             on stdout (DESIGN.md §8)
//! fannet listen --addr host:port --model model.json [--threads N]
//!                                             the same engine over TCP:
//!                                             concurrent connections, bounded
//!                                             queue, graceful drain
//!                                             (DESIGN.md §13)
//! ```
//!
//! Models are the JSON documents written by `fannet::nn::io` (exact
//! rational weights serialize as `"num/den"` strings).

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use fannet::core::casestudy::{build, CaseStudyConfig};
use fannet::core::faults as core_faults;
use fannet::core::joint as core_joint;
use fannet::core::tolerance::robustness_radius;
use fannet::engine::{Engine, EngineConfig};
use fannet::faults::{
    FaultChecker, FaultModel, FaultOutcome, JointChecker, JointOutcome, ToleranceSearch,
};
use fannet::nn::io;
use fannet::nn::Network;
use fannet::numeric::Rational;
use fannet::server::session::SessionConfig;
use fannet::server::{serve_stdio, serve_tcp, signal};
use fannet::smv::nn_to_smv::{network_to_smv, TranslationConfig};
use fannet::smv::printer::print_module;
use fannet::verify::bab::{
    default_threads, find_counterexample_with, CheckerConfig, ScreeningTier,
};
use fannet::verify::region::NoiseRegion;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  fannet train [--small] --out <model.json>
  fannet check --model <model.json> --input <v1,v2,...> --label <L> --delta <D>
               [--screening <none|interval|zonotope|cascade>]
  fannet radius --model <model.json> --input <v1,v2,...> --label <L> [--max <D>]
  fannet faults --model <weight-noise|stuck-at|bit-flips|quantization>
                [--eps <E>] [--layer <L> --neuron <N> --value <V>]
                [--budget <K>] [--denom-bits <B>]
                [--net <model.json>] [--small]
                [--input <v1,v2,...> --label <L>]
                [--denom <D>] [--max-numer <K>]
    without --net, trains the Golub case study and reports per-class
    fault tolerance over its test set; with --input/--label, one query
  fannet joint [--deltas <d1,d2,...>] [--denom <D>] [--max-numer <K>]
               [--max-boxes <N>] [--small]
               [--input <v1,v2,...> --label <L> --delta <D>
                --model <weight-noise|stuck-at|bit-flips|quantization> ...
                [--net <model.json>]]
    without --input, trains the Golub case study and reports the
    per-class joint (input-noise δ, weight-noise ε) frontier over its
    test set; with --input/--label, one joint query at ±delta%
  fannet export-smv --model <model.json> --input <v1,v2,...> --label <L> --delta <D>
  fannet serve --model <model.json> [--once] [--threads <N>]
               [--cache-capacity <N>] [--queue-capacity <N>] [--max-line-bytes <N>]
               [--screening <none|interval|zonotope|cascade>] [--no-screening]
               [--slow-query-ms <MS>] [--log-level <trace|debug|info|warn|error>]
               [--trace-out <trace.json>]
    JSONL requests on stdin, one response per line on stdout, e.g.
      {\"op\":\"check\",\"input\":[\"100\",\"82\"],\"label\":0,\"delta\":5}
      {\"op\":\"tolerance\",\"input\":[\"100\",\"82\"],\"label\":0,\"max_delta\":50}
      {\"op\":\"sensitivity\",\"input\":[\"100\",\"99\"],\"label\":0,\"delta\":3,\"cap\":10}
      {\"op\":\"fault_check\",\"input\":[\"100\",\"82\"],\"label\":0,\"model\":\"weight-noise\",\"eps\":\"1/50\"}
      {\"op\":\"fault_tolerance\",\"input\":[\"100\",\"82\"],\"label\":0,\"denom\":1000,\"max_numer\":200}
      {\"op\":\"joint_check\",\"input\":[\"100\",\"82\"],\"label\":0,\"delta\":3,\"model\":\"weight-noise\",\"eps\":\"1/50\"}
      {\"op\":\"joint_tolerance\",\"input\":[\"100\",\"82\"],\"label\":0,\"delta\":3,\"denom\":100,\"max_numer\":25}
      {\"op\":\"stats\"}
      {\"op\":\"metrics\"}
      {\"op\":\"shutdown\"}
    any solver-backed op takes \"trace\":true for a per-query cost trace;
    --slow-query-ms logs slower requests (full trace, stderr JSON),
    --log-level sets the structured-logger threshold (default info), and
    --trace-out streams a Chrome trace-event JSON timeline (open it in
    Perfetto or chrome://tracing) with one lane per connection and
    queue/service/sequence/write spans per request
  fannet listen --addr <host:port> --model <model.json> [--threads <N>]
               [--cache-capacity <N>] [--queue-capacity <N>] [--max-line-bytes <N>]
               [--screening <none|interval|zonotope|cascade>] [--no-screening]
               [--slow-query-ms <MS>] [--log-level <trace|debug|info|warn|error>]
               [--trace-out <trace.json>]
    the same JSONL protocol over TCP: one resident engine shared by all
    connections, per-connection response ordering, bounded-queue
    backpressure; prints `listening on <addr>` once bound, drains on
    SIGINT/SIGTERM or an in-band shutdown request";

fn run(args: &[String]) -> Result<(), String> {
    let (command, rest) = args.split_first().ok_or("missing command")?;
    match command.as_str() {
        "train" => train(rest),
        "check" => check(rest),
        "radius" => radius(rest),
        "faults" => faults(rest),
        "joint" => joint(rest),
        "export-smv" => export_smv(rest),
        "serve" => serve(rest),
        "listen" => listen(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Looks up the value of `--name`, accepting both the space-separated
/// (`--name value`) and the `=`-joined (`--name=value`) spellings.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(name)?.strip_prefix('='))
        })
}

fn required<'a>(args: &'a [String], name: &str) -> Result<&'a str, String> {
    flag(args, name).ok_or_else(|| format!("missing required flag {name} <value>"))
}

fn has_switch(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_input(text: &str) -> Result<Vec<Rational>, String> {
    text.split(',')
        .map(|part| {
            part.trim()
                .parse::<Rational>()
                .map_err(|e| format!("bad input component `{part}`: {e}"))
        })
        .collect()
}

fn parse_label(text: &str) -> Result<usize, String> {
    text.parse().map_err(|_| format!("bad label `{text}`"))
}

fn parse_delta(text: &str) -> Result<i64, String> {
    let d: i64 = text.parse().map_err(|_| format!("bad delta `{text}`"))?;
    if !(0..=100).contains(&d) {
        return Err(format!("delta {d} outside the model's [0, 100] range"));
    }
    Ok(d)
}

fn load_model(path: &str) -> Result<Network<Rational>, String> {
    io::load(path).map_err(|e| format!("cannot load model `{path}`: {e}"))
}

fn validate_query(net: &Network<Rational>, x: &[Rational], label: usize) -> Result<(), String> {
    if x.len() != net.inputs() {
        return Err(format!(
            "input has {} components but the model expects {}",
            x.len(),
            net.inputs()
        ));
    }
    if label >= net.outputs() {
        return Err(format!(
            "label {label} out of range for {} outputs",
            net.outputs()
        ));
    }
    Ok(())
}

fn train(args: &[String]) -> Result<(), String> {
    let out = required(args, "--out")?;
    let config = if has_switch(args, "--small") {
        CaseStudyConfig::small()
    } else {
        CaseStudyConfig::paper()
    };
    eprintln!(
        "training the {}-gene leukemia case study…",
        config.golub.genes
    );
    let cs = build(&config);
    io::save(&cs.exact_net, out).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!(
        "saved exact model to {out} (train acc {:.1}%, test acc {:.2}%)",
        100.0 * cs.train_accuracy(),
        100.0 * cs.test_accuracy()
    );
    println!(
        "selected genes: {:?} — inputs to `check`/`radius` are these raw expressions",
        cs.selection.features
    );
    Ok(())
}

/// The `--screening <tier>` flag; each subcommand passes its own
/// `default` (`check` defaults to the cascade, `serve` to the interval
/// tier). Every tier returns identical verdicts — the flag only chooses
/// who pays per box.
fn parse_screening(args: &[String], default: ScreeningTier) -> Result<ScreeningTier, String> {
    match flag(args, "--screening") {
        Some(text) => ScreeningTier::parse(text),
        None => Ok(default),
    }
}

fn check(args: &[String]) -> Result<(), String> {
    let net = load_model(required(args, "--model")?)?;
    let x = parse_input(required(args, "--input")?)?;
    let label = parse_label(required(args, "--label")?)?;
    let delta = parse_delta(required(args, "--delta")?)?;
    let screening = parse_screening(args, ScreeningTier::Cascade)?;
    validate_query(&net, &x, label)?;

    let region = NoiseRegion::symmetric(delta, x.len());
    let config = CheckerConfig::serial_exact().with_screening(screening);
    let (outcome, stats) =
        find_counterexample_with(&net, &x, label, &region, &config).map_err(|e| e.to_string())?;
    match outcome.counterexample() {
        None => println!(
            "ROBUST: no noise vector within ±{delta}% flips label L{label} \
             ({} boxes, {} exact evaluations — this is a proof)",
            stats.boxes_visited, stats.exact_evals
        ),
        Some(ce) => {
            println!("COUNTEREXAMPLE: {}", ce);
            println!(
                "  noisy input: {:?}",
                ce.noisy_input
                    .iter()
                    .map(Rational::to_f64)
                    .collect::<Vec<_>>()
            );
            println!(
                "  outputs:     {:?}",
                ce.outputs.iter().map(Rational::to_f64).collect::<Vec<_>>()
            );
        }
    }
    if screening.is_active() {
        println!(
            "screening [{screening}]: interval tier decided {} of {} boxes, \
             zonotope tier {} of {}, exact tier ran on {}",
            stats.interval_hits,
            stats.interval_hits + stats.interval_fallbacks,
            stats.zonotope_hits,
            stats.zonotope_hits + stats.zonotope_fallbacks,
            stats.screen_fallbacks,
        );
    }
    Ok(())
}

/// Resolves the `--model <kind>` fault-model flags of `fannet faults`.
fn parse_fault_model(args: &[String]) -> Result<FaultModel, String> {
    let parse_rational = |name: &str, text: &str| -> Result<Rational, String> {
        text.parse::<Rational>()
            .map_err(|e| format!("bad {name} `{text}`: {e}"))
    };
    match required(args, "--model")? {
        "weight-noise" => {
            let eps = parse_rational("--eps", required(args, "--eps")?)?;
            if eps.is_negative() {
                return Err(format!("--eps must be non-negative, got {eps}"));
            }
            Ok(FaultModel::WeightNoise { rel_eps: eps })
        }
        "stuck-at" => Ok(FaultModel::StuckAt {
            layer: required(args, "--layer")?
                .parse()
                .map_err(|_| "bad --layer".to_string())?,
            neuron: required(args, "--neuron")?
                .parse()
                .map_err(|_| "bad --neuron".to_string())?,
            value: parse_rational("--value", required(args, "--value")?)?,
        }),
        "bit-flips" => Ok(FaultModel::BitFlips {
            budget: match flag(args, "--budget") {
                Some(text) => text.parse().map_err(|_| "bad --budget".to_string())?,
                None => 1,
            },
        }),
        "quantization" => {
            let bits: u32 = match flag(args, "--denom-bits") {
                Some(text) => text.parse().map_err(|_| "bad --denom-bits".to_string())?,
                None => fannet::nn::quantize::DEFAULT_DENOM_BITS,
            };
            if bits >= 126 {
                return Err(format!("--denom-bits {bits} overflows the exact domain"));
            }
            Ok(FaultModel::Quantization { denom_bits: bits })
        }
        other => Err(format!(
            "unknown fault model `{other}` (expected weight-noise/stuck-at/bit-flips/quantization)"
        )),
    }
}

/// `fannet faults`: weight-fault robustness (DESIGN.md §11) — one query
/// with `--input`/`--label`, or the per-class fault-tolerance report of
/// the Golub case study when no input is given.
fn faults(args: &[String]) -> Result<(), String> {
    let model = parse_fault_model(args)?;
    let denom: i64 = match flag(args, "--denom") {
        Some(text) => match text.parse() {
            Ok(d) if d > 0 => d,
            _ => return Err(format!("bad --denom `{text}` (need a positive integer)")),
        },
        None => 100,
    };
    let max_numer: i64 = match flag(args, "--max-numer") {
        Some(text) => match text.parse() {
            Ok(k) if k >= 0 => k,
            _ => return Err(format!("bad --max-numer `{text}`")),
        },
        None => 25,
    };
    let search = ToleranceSearch::new(i128::from(denom), i128::from(max_numer));

    if let Some(input) = flag(args, "--input") {
        // Single-query mode (works with --net or the trained case study).
        let x = parse_input(input)?;
        let label = parse_label(required(args, "--label")?)?;
        let net = match flag(args, "--net") {
            Some(path) => load_model(path)?,
            None => faults_case_study(args).exact_net,
        };
        validate_query(&net, &x, label)?;
        let checker = FaultChecker::new(net, Default::default());
        let (outcome, stats) = checker.check(&x, label, &model)?;
        match &outcome {
            FaultOutcome::Robust => println!(
                "ROBUST under {model}: every faulted network keeps label L{label} \
                 ({} fault boxes, {} concrete probes — this is a proof)",
                stats.boxes_visited, stats.concrete_evals
            ),
            FaultOutcome::Vulnerable(w) => {
                println!("VULNERABLE under {model}: {}", w.description);
                println!("  predicted L{} instead of L{}", w.predicted, w.expected);
                println!(
                    "  outputs: {:?}",
                    w.outputs.iter().map(Rational::to_f64).collect::<Vec<_>>()
                );
            }
            FaultOutcome::Unknown => println!(
                "UNKNOWN under {model}: the budgeted fault-space search could not \
                 decide ({} boxes, budget exhausted: {})",
                stats.boxes_visited, stats.budget_exhausted
            ),
        }
        let (tolerance, _) = checker.tolerance(&x, label, &search)?;
        match tolerance.robust_eps {
            Some(eps) => println!(
                "weight-noise fault tolerance of this input: eps >= {eps} (~{:.4}, \
                 grid k/{denom}, k <= {max_numer})",
                eps.to_f64()
            ),
            None => println!("fault-free network already misclassifies this input"),
        }
        return Ok(());
    }
    if flag(args, "--net").is_some() {
        return Err(
            "give --input/--label with --net (the per-class report needs the case-study \
             dataset; omit --net to train it)"
                .to_string(),
        );
    }

    // Per-class report over the trained case study's test set.
    let cs = faults_case_study(args);
    let correct = fannet::core::behavior::correctly_classified(&cs.exact_net, &cs.test5);
    let config = core_faults::FaultAnalysisConfig {
        search,
        ..Default::default()
    };
    println!(
        "== weight-fault analysis of the {} network ==",
        cs.exact_net
            .topology()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("-")
    );
    let verdicts = core_faults::class_verdicts(&cs.exact_net, &cs.test5, &correct, &model, &config);
    println!("verdicts under {model}:");
    for (class, (robust, vulnerable, unknown)) in verdicts.iter().enumerate() {
        println!("  class L{class}: {robust} robust / {vulnerable} vulnerable / {unknown} unknown");
    }
    let report = core_faults::analyze(&cs.exact_net, &cs.test5, &correct, &config);
    println!("per-class weight-noise fault tolerance (grid k/{denom}, k <= {max_numer}):");
    for (class, eps) in report.per_class_tolerance().iter().enumerate() {
        match eps {
            Some(e) => println!("  class L{class}: eps >= {e} (~{:.4})", e.to_f64()),
            None => println!("  class L{class}: no analysed inputs"),
        }
    }
    match report.network_tolerance() {
        Some(e) => println!("network fault tolerance: eps >= {e} (~{:.4})", e.to_f64()),
        None => println!("network fault tolerance: no analysed inputs"),
    }
    Ok(())
}

/// `fannet joint`: joint input-noise × weight-fault robustness
/// (DESIGN.md §12) — one product query with `--input`/`--label`, or the
/// per-class (δ, ε) frontier of the Golub case study when no input is
/// given. Deterministic throughout (the search is serial and the δ/ε
/// grids are fixed), so repeat runs print the identical report.
fn joint(args: &[String]) -> Result<(), String> {
    let denom: i64 = match flag(args, "--denom") {
        Some(text) => match text.parse() {
            Ok(d) if d > 0 => d,
            _ => return Err(format!("bad --denom `{text}` (need a positive integer)")),
        },
        None => 100,
    };
    let max_numer: i64 = match flag(args, "--max-numer") {
        Some(text) => match text.parse() {
            Ok(k) if k >= 0 => k,
            _ => return Err(format!("bad --max-numer `{text}`")),
        },
        None => 25,
    };
    let search = ToleranceSearch::new(i128::from(denom), i128::from(max_numer));

    if let Some(input) = flag(args, "--input") {
        // Single-query mode (works with --net or the trained case study).
        let x = parse_input(input)?;
        let label = parse_label(required(args, "--label")?)?;
        let delta = parse_delta(required(args, "--delta")?)?;
        let model = parse_fault_model(args)?;
        let net = match flag(args, "--net") {
            Some(path) => load_model(path)?,
            None => faults_case_study(args).exact_net,
        };
        validate_query(&net, &x, label)?;
        // Single queries get the engine/serve budget (512 boxes): the
        // frontier's slim fan-out default would answer the *same* query
        // UNKNOWN where `fannet serve`'s joint_check proves it.
        let base = fannet::faults::FaultCheckerConfig::default();
        let checker = JointChecker::new(net, joint_checker_config(args, base)?);
        let noise = fannet::verify::region::NoiseRegion::symmetric(delta, x.len());
        let (outcome, stats) = checker.check(&x, label, &noise, &model)?;
        match &outcome {
            JointOutcome::Robust => println!(
                "ROBUST: every noise vector within ±{delta}% and every faulted \
                 network under {model} keep label L{label} ({} product boxes, \
                 {} concrete probes — this is a proof)",
                stats.boxes_visited, stats.concrete_evals
            ),
            JointOutcome::Vulnerable(w) => {
                println!("VULNERABLE under ±{delta}% × {model}: {}", w.description);
                println!("  witness noise: {}", w.noise);
                println!("  predicted L{} instead of L{}", w.predicted, w.expected);
                println!(
                    "  outputs: {:?}",
                    w.outputs.iter().map(Rational::to_f64).collect::<Vec<_>>()
                );
            }
            JointOutcome::Unknown => println!(
                "UNKNOWN: the budgeted joint search could not decide ±{delta}% × \
                 {model} ({} boxes, budget exhausted: {})",
                stats.boxes_visited, stats.budget_exhausted
            ),
        }
        let (tolerance, _) = checker.tolerance(&x, label, delta, &search)?;
        match tolerance.robust_eps {
            Some(eps) => println!(
                "joint weight-noise tolerance at ±{delta}% input noise: eps >= {eps} \
                 (~{:.4}, grid k/{denom}, k <= {max_numer})",
                eps.to_f64()
            ),
            None => println!(
                "no weight-noise eps is certified at ±{delta}% input noise \
                 (the input noise alone flips, or the search could not decide)"
            ),
        }
        return Ok(());
    }
    if flag(args, "--net").is_some() {
        return Err(
            "give --input/--label with --net (the per-class frontier needs the \
             case-study dataset; omit --net to train it)"
                .to_string(),
        );
    }

    // Per-class frontier over the trained case study's test set.
    let deltas: Vec<i64> = match flag(args, "--deltas") {
        Some(text) => text
            .split(',')
            .map(|part| parse_delta(part.trim()))
            .collect::<Result<_, _>>()?,
        None => vec![0, 1, 2, 3, 5],
    };
    if deltas.is_empty() {
        return Err("--deltas needs at least one radius".to_string());
    }
    let cs = faults_case_study(args);
    let correct = fannet::core::behavior::correctly_classified(&cs.exact_net, &cs.test5);
    let base = core_joint::JointAnalysisConfig::default().checker;
    let config = core_joint::JointAnalysisConfig {
        deltas: deltas.clone(),
        search,
        checker: joint_checker_config(args, base)?,
        ..Default::default()
    };
    println!(
        "== joint input×weight robustness of the {} network ==",
        cs.exact_net
            .topology()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("-")
    );
    println!(
        "largest certified weight-noise eps (grid k/{denom}, k <= {max_numer}) \
         per input-noise radius ±δ%:"
    );
    let report = core_joint::analyze(&cs.exact_net, &cs.test5, &correct, &config);
    let header: Vec<String> = deltas.iter().map(|d| format!("δ=±{d}%")).collect();
    println!("  class     {}", header.join("   "));
    let fmt_cell = |eps: &Option<Rational>| match eps {
        Some(e) => format!("{:.3}", e.to_f64()),
        None => "  -  ".to_string(),
    };
    for (class, row) in report.per_class_frontier().iter().enumerate() {
        let cells: Vec<String> = row.iter().map(fmt_cell).collect();
        println!("  L{class}       {}", cells.join("   "));
    }
    let cells: Vec<String> = report.network_frontier().iter().map(fmt_cell).collect();
    println!("  network  {}", cells.join("   "));
    println!(
        "(each cell is a proof: every correctly-classified input of the class \
         keeps its label under ±δ% input noise and ±ε·|w| weight noise \
         simultaneously; `-` = not certified at this radius)"
    );
    Ok(())
}

/// The `--max-boxes` override of `fannet joint`'s product searches,
/// applied to the mode's base budget (single queries run the full
/// engine default, the per-input frontier the slimmer fan-out budget).
fn joint_checker_config(
    args: &[String],
    base: fannet::faults::FaultCheckerConfig,
) -> Result<fannet::faults::FaultCheckerConfig, String> {
    match flag(args, "--max-boxes") {
        Some(text) => match text.parse::<u64>() {
            Ok(n) if n > 0 => Ok(base.with_max_boxes(n)),
            _ => Err(format!(
                "bad --max-boxes `{text}` (need a positive integer)"
            )),
        },
        None => Ok(base),
    }
}

/// Trains the case study for `fannet faults` (`--small` for the quick
/// variant), with progress on stderr.
fn faults_case_study(args: &[String]) -> fannet::core::CaseStudy {
    let config = if has_switch(args, "--small") {
        CaseStudyConfig::small()
    } else {
        CaseStudyConfig::paper()
    };
    eprintln!(
        "no --net given; training the {}-gene leukemia case study…",
        config.golub.genes
    );
    build(&config)
}

fn radius(args: &[String]) -> Result<(), String> {
    let net = load_model(required(args, "--model")?)?;
    let x = parse_input(required(args, "--input")?)?;
    let label = parse_label(required(args, "--label")?)?;
    let max = match flag(args, "--max") {
        Some(text) => parse_delta(text)?.max(1),
        None => 50,
    };
    validate_query(&net, &x, label)?;

    match robustness_radius(&net, &x, label, max) {
        Some(radius) => println!(
            "first flip at ±{radius}% (tolerance of this input: ±{}%)",
            radius - 1
        ),
        None => println!("robust through ±{max}%"),
    }
    Ok(())
}

/// Builds the resident engine and session knobs shared by `fannet
/// serve` and `fannet listen`: `--threads` sizes the worker pool,
/// `--cache-capacity` the verdict cache, `--queue-capacity` the bounded
/// request queue (full ⇒ readers block ⇒ backpressure), and
/// `--max-line-bytes` the per-line framing cap.
fn serving_engine(args: &[String]) -> Result<(Arc<Engine>, SessionConfig), String> {
    let net = load_model(required(args, "--model")?)?;
    let workers = match flag(args, "--threads") {
        Some(text) => text
            .parse::<usize>()
            .map_err(|_| format!("bad --threads `{text}`"))?
            .max(1),
        None => default_threads(),
    };
    let cache_capacity = match flag(args, "--cache-capacity") {
        Some(text) => match text.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                return Err(format!(
                    "bad --cache-capacity `{text}` (need a positive integer)"
                ))
            }
        },
        None => EngineConfig::serving().cache_capacity,
    };
    let queue_capacity = match flag(args, "--queue-capacity") {
        Some(text) => match text.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                return Err(format!(
                    "bad --queue-capacity `{text}` (need a positive integer)"
                ))
            }
        },
        None => fannet::server::DEFAULT_QUEUE_CAPACITY,
    };
    let max_line_bytes = match flag(args, "--max-line-bytes") {
        Some(text) => match text.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                return Err(format!(
                    "bad --max-line-bytes `{text}` (need a positive integer)"
                ))
            }
        },
        None => fannet::server::DEFAULT_MAX_LINE_BYTES,
    };
    let slow_query_ms = match flag(args, "--slow-query-ms") {
        Some(text) => match text.parse::<u64>() {
            Ok(ms) => Some(ms),
            Err(_) => {
                return Err(format!(
                    "bad --slow-query-ms `{text}` (need a non-negative integer)"
                ))
            }
        },
        None => None,
    };
    if let Some(text) = flag(args, "--log-level") {
        let level = fannet_obs::Level::parse(text)?;
        fannet_obs::set_level(level);
    }
    // Parallelism is spent across requests, not inside one query. The
    // default tier stays `interval` (the serving-latency sweet spot for
    // typical request mixes — see DESIGN.md §10); `--screening cascade`
    // adds the zonotope tier, `--no-screening` is the legacy spelling of
    // `--screening none`. Verdicts are identical under every tier.
    let screening = if has_switch(args, "--no-screening") {
        if flag(args, "--screening").is_some() {
            return Err("give either --screening or --no-screening, not both".to_string());
        }
        ScreeningTier::None
    } else {
        parse_screening(args, ScreeningTier::Interval)?
    };
    // `--trace-out` opens the timeline sink up front (so a bad path
    // fails before the engine loads) and installs it as the global
    // trace writer, which also routes the engine's internal spans into
    // the same file as pid-2 lanes.
    let trace_out = match flag(args, "--trace-out") {
        Some(path) => {
            let writer = fannet_obs::TraceWriter::to_file(std::path::Path::new(path))
                .map_err(|e| format!("cannot open --trace-out `{path}`: {e}"))?;
            let writer = Arc::new(writer);
            fannet_obs::install_global(Arc::clone(&writer));
            Some(writer)
        }
        None => None,
    };
    let checker = CheckerConfig::serial_exact().with_screening(screening);
    let engine = Engine::new(
        net,
        EngineConfig {
            checker,
            cache_capacity,
        },
    );
    Ok((
        Arc::new(engine),
        SessionConfig {
            workers,
            queue_capacity,
            max_line_bytes,
            slow_query_ms,
            trace_out,
        },
    ))
}

/// `fannet serve`: one resident engine answering JSONL requests over
/// stdin/stdout, through the same connection-handler core as `fannet
/// listen` (DESIGN.md §13) — a worker pool drains a bounded queue and a
/// sequencer keeps responses in request order, so `--threads N` speeds
/// up a pipelined client without reordering anything. Exits at stdin
/// EOF or on a `shutdown` request. `--once` is accepted for
/// compatibility with the historical batch mode; both modes stream.
fn serve(args: &[String]) -> Result<(), String> {
    let (engine, config) = serving_engine(args)?;
    serve_stdio(engine, &config, std::io::stdin(), std::io::stdout());
    // Close the timeline array so the file is valid JSON; idempotent,
    // and a no-op when --trace-out was not given.
    if let Some(trace) = &config.trace_out {
        trace.finish();
    }
    Ok(())
}

/// `fannet listen`: the serving core over TCP. Every accepted
/// connection speaks the same JSONL protocol against one shared
/// resident engine; `listening on <addr>` on stdout signals readiness
/// (and reveals the port under `--addr host:0`). Drains gracefully on
/// SIGINT/SIGTERM or an in-band `shutdown` request.
fn listen(args: &[String]) -> Result<(), String> {
    let (engine, config) = serving_engine(args)?;
    let addr = required(args, "--addr")?;
    signal::install();
    serve_tcp(engine, &config, addr, signal::triggered, |bound| {
        // The bare stdout line is the readiness contract scripts wait
        // on; the structured record is the operator's copy on stderr.
        println!("listening on {bound}");
        let _ = std::io::stdout().flush();
        fannet_obs::log::info(
            "fannet::listen",
            "listening",
            &[("addr", bound.to_string().into())],
        );
    })
    .map_err(|e| format!("cannot listen on `{addr}`: {e}"))?;
    if let Some(trace) = &config.trace_out {
        trace.finish();
    }
    Ok(())
}

fn export_smv(args: &[String]) -> Result<(), String> {
    let net = load_model(required(args, "--model")?)?;
    let x = parse_input(required(args, "--input")?)?;
    let label = parse_label(required(args, "--label")?)?;
    let delta = parse_delta(required(args, "--delta")?)?;
    validate_query(&net, &x, label)?;

    let module = network_to_smv(&net, &x, label, &TranslationConfig::symmetric(delta));
    print!("{}", print_module(&module));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let args = strings(&["--model", "m.json", "--delta", "5"]);
        assert_eq!(flag(&args, "--model"), Some("m.json"));
        assert_eq!(flag(&args, "--delta"), Some("5"));
        assert_eq!(flag(&args, "--missing"), None);
        assert!(required(&args, "--nope").is_err());
        assert!(has_switch(&args, "--model"));
        assert!(!has_switch(&args, "--small"));
        // The `=`-joined spelling is equivalent.
        let eq = strings(&["--screening=cascade", "--model=m.json"]);
        assert_eq!(flag(&eq, "--screening"), Some("cascade"));
        assert_eq!(flag(&eq, "--model"), Some("m.json"));
        assert_eq!(flag(&eq, "--delta"), None);
        // A space-separated occurrence wins over a later `=` form.
        let both = strings(&["--delta", "5", "--delta=9"]);
        assert_eq!(flag(&both, "--delta"), Some("5"));
    }

    #[test]
    fn input_parsing() {
        let x = parse_input("1, -2, 3/4").unwrap();
        assert_eq!(x[2], Rational::new(3, 4));
        assert!(parse_input("1,abc").is_err());
        assert!(parse_label("3").is_ok());
        assert!(parse_label("-1").is_err());
        assert!(parse_delta("11").is_ok());
        assert!(parse_delta("101").is_err());
        assert!(parse_delta("x").is_err());
    }

    #[test]
    fn screening_flag_parsing() {
        assert_eq!(
            parse_screening(
                &strings(&["--screening", "cascade"]),
                ScreeningTier::Interval
            ),
            Ok(ScreeningTier::Cascade)
        );
        assert_eq!(
            parse_screening(&[], ScreeningTier::Interval),
            Ok(ScreeningTier::Interval)
        );
        assert!(parse_screening(&strings(&["--screening", "bogus"]), ScreeningTier::None).is_err());
    }

    #[test]
    fn fault_model_flag_parsing() {
        assert_eq!(
            parse_fault_model(&strings(&["--model", "weight-noise", "--eps", "0.02"])),
            Ok(FaultModel::WeightNoise {
                rel_eps: Rational::new(1, 50)
            })
        );
        assert_eq!(
            parse_fault_model(&strings(&[
                "--model", "stuck-at", "--layer", "0", "--neuron", "3", "--value", "-1/2"
            ])),
            Ok(FaultModel::StuckAt {
                layer: 0,
                neuron: 3,
                value: Rational::new(-1, 2)
            })
        );
        assert_eq!(
            parse_fault_model(&strings(&["--model", "bit-flips"])),
            Ok(FaultModel::BitFlips { budget: 1 })
        );
        assert_eq!(
            parse_fault_model(&strings(&["--model", "quantization", "--denom-bits", "8"])),
            Ok(FaultModel::Quantization { denom_bits: 8 })
        );
        assert!(parse_fault_model(&strings(&["--model", "weight-noise"]))
            .unwrap_err()
            .contains("--eps"));
        assert!(
            parse_fault_model(&strings(&["--model", "weight-noise", "--eps", "-1/50"]))
                .unwrap_err()
                .contains("non-negative")
        );
        assert!(parse_fault_model(&strings(&["--model", "frobnicate"]))
            .unwrap_err()
            .contains("unknown fault model"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&strings(&["help"])).is_ok());
    }
}
