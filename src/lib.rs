//! # fannet — reproduction of FANNet (DATE 2020)
//!
//! A Rust reproduction of *"FANNet: Formal Analysis of Noise Tolerance,
//! Training Bias and Input Sensitivity in Neural Networks"* (Naseer, Minhas,
//! Khalid, Hanif, Hasan, Shafique — DATE 2020, arXiv:1912.01978).
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`numeric`] | `fannet-numeric` | exact rationals, Q32.32 fixed point, interval arithmetic, the `Scalar` abstraction |
//! | [`tensor`] | `fannet-tensor` | dense matrices/vectors generic over `Scalar` |
//! | [`nn`] | `fannet-nn` | feed-forward networks, training (paper's two-phase schedule), quantization, model I/O |
//! | [`data`] | `fannet-data` | synthetic Golub leukemia dataset, normalization, mRMR feature selection |
//! | [`smv`] | `fannet-smv` | SMV-subset front end, NN→SMV translation, explicit-state model checking, Fig. 3 state-space accounting |
//! | [`verify`] | `fannet-verify` | exact branch-and-bound decision procedure over integer-percent noise regions |
//! | [`faults`] | `fannet-faults` | weight-fault & quantization robustness: interval-weight propagation, fault-space branch-and-bound, fault-tolerance search |
//! | [`engine`] | `fannet-engine` | persistent query engine: subsumption-aware verdict cache, incremental tolerance search, batch/JSONL serving |
//! | [`server`] | `fannet-server` | concurrent serving front end: TCP listener, bounded-queue backpressure, per-connection response ordering, graceful drain |
//! | [`core`] | `fannet-core` | the FANNet methodology: P1/P2/P3, noise tolerance, adversarial extraction, bias, sensitivity, boundary analysis |
//!
//! ## Quickstart
//!
//! ```no_run
//! use fannet::core::casestudy::{build, CaseStudyConfig};
//! use fannet::core::pipeline::{self, AnalysisConfig};
//!
//! // Train the paper's 5–20–2 leukemia classifier end to end…
//! let cs = build(&CaseStudyConfig::paper());
//! // …and run the full formal analysis.
//! let report = pipeline::run(
//!     &cs.exact_net,
//!     &cs.float_net,
//!     &cs.train5,
//!     &cs.test5,
//!     &AnalysisConfig::default(),
//! );
//! println!("{}", report.render_text());
//! println!("noise tolerance: ±{}%", report.noise_tolerance());
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md`/`EXPERIMENTS.md`
//! for the experiment-by-experiment reproduction map.

pub use fannet_core as core;
pub use fannet_data as data;
pub use fannet_engine as engine;
pub use fannet_faults as faults;
pub use fannet_nn as nn;
pub use fannet_numeric as numeric;
pub use fannet_server as server;
pub use fannet_smv as smv;
pub use fannet_tensor as tensor;
pub use fannet_verify as verify;
