//! Regression tests pinning the reproduction's paper-facing numbers.
//!
//! The Fig. 3 accounting must match the paper *exactly* (it is a property
//! of the modelling); the case-study numbers are pinned to the values
//! recorded in EXPERIMENTS.md so that any drift in dataset, training or
//! verification is caught immediately.
//!
//! The full-size case study takes a few seconds to build and analyse; this
//! file is the slowest part of the integration suite by design.

use fannet::core::casestudy::{build, CaseStudyConfig};
use fannet::core::pipeline::{self, AnalysisConfig};
use fannet::data::golub::{L0_AML, L1_ALL};
use fannet::smv::statespace::PaperFsm;

#[test]
fn fig3_numbers_are_exact() {
    let fig3b = PaperFsm::without_noise(2);
    assert_eq!(fig3b.states(), 3, "paper: 3 states without noise");
    assert_eq!(fig3b.transitions(), 6, "paper: 6 transitions without noise");

    let fig3c = PaperFsm::with_noise(2, 6);
    assert_eq!(fig3c.states(), 65, "paper: 65 states with [0,1]% noise");
    assert_eq!(fig3c.transitions(), 4160, "paper: 4160 transitions");
}

#[test]
fn paper_case_study_headline_numbers() {
    let cs = build(&CaseStudyConfig::paper());

    // §V-A: 100% train / 94.12% test (= 32 of 34).
    assert_eq!(cs.train_accuracy(), 1.0, "paper: 100% training accuracy");
    assert!(
        (cs.test_accuracy() - 32.0 / 34.0).abs() < 1e-9,
        "paper: 94.12% test accuracy, measured {:.4}",
        cs.test_accuracy()
    );

    // §V-A: ~70% of training samples are ALL (L1).
    let l1_fraction = cs.train5.label_fraction(L1_ALL);
    assert!(
        (l1_fraction - 27.0 / 38.0).abs() < 1e-12,
        "paper: ~70% L1, measured {l1_fraction:.3}"
    );

    let report = pipeline::run(
        &cs.exact_net,
        &cs.float_net,
        &cs.train5,
        &cs.test5,
        &AnalysisConfig::default(),
    );

    // §V-C.1: the paper's noise tolerance is ±11%; this reproduction's
    // trained network measures the same (EXPERIMENTS.md, E4).
    assert_eq!(
        report.noise_tolerance(),
        11,
        "EXPERIMENTS.md pins tolerance at ±11%"
    );

    // §V-C.3: all extracted misclassifications flow L0 → L1.
    assert!(report.bias.flow(L0_AML, L1_ALL) > 0);
    assert_eq!(
        report.bias.flow(L1_ALL, L0_AML),
        0,
        "paper: no L1 → L0 misclassification"
    );
    assert_eq!(report.bias.bias_toward_majority(), Some(true));
    assert_eq!(report.bias.majority_flow_fraction(), 1.0);

    // §V-C.4: at least one node never carries positive noise in any
    // counterexample (the paper's i5 finding; the node index depends on
    // training randomness).
    assert!(
        !report.sensitivity.positive_insensitive_nodes().is_empty(),
        "paper shape: some node is insensitive to positive noise"
    );

    // §V-C.2: some inputs survive even ±50% noise.
    assert!(
        !report.boundary.far_from_boundary().is_empty(),
        "paper: noise as large as 50% did not flip some inputs"
    );

    // Fig. 4: sweep counts are monotone and nontrivial.
    let counts: Vec<usize> = report
        .sweep
        .iter()
        .map(|r| r.misclassified_inputs)
        .collect();
    assert_eq!(counts[0], 0, "nothing flips at ±5 (below tolerance)");
    assert!(*counts.last().unwrap() > 0, "something flips by ±40");
    for w in counts.windows(2) {
        assert!(w[1] >= w[0]);
    }
}
