//! End-to-end tests of `fannet listen`: the real binary, real loopback
//! TCP. The contracts under test (DESIGN.md §13):
//!
//! * the golden request replay over TCP produces the *same* responses as
//!   `fannet serve --once` over stdin (modulo the four masked volatile
//!   gauges) — one protocol, two transports;
//! * ≥4 concurrent pipelined clients each see their responses in request
//!   order, byte-identical to a single-client `fannet serve --once` run
//!   of the same workload;
//! * a client disconnecting mid-batch leaves other streams intact;
//! * an in-band `shutdown` request and a SIGTERM both drain and exit
//!   cleanly.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn repo_file(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Zeroes the volatile `server` gauges (lifetime and windowed rates,
/// percentiles, per-request nanosecond stamps, per-connection byte and
/// blocking gauges), blanks the `peer` string (a TCP peer carries an
/// ephemeral port where the stdin golden says "stdio"), and blanks the
/// `text` payload of a `metrics` response (same rewrite as the serve
/// golden test and CI's serve-smoke job).
fn mask_volatile(text: &str) -> String {
    let mut masked = text.to_string();
    for key in [
        "uptime_ms",
        "qps",
        "qps_10s",
        "qps_60s",
        "queue_depth",
        "queue_high_water",
        "p50_ns",
        "p90_ns",
        "p99_ns",
        "count_10s",
        "p50_10s_ns",
        "p99_10s_ns",
        "wall_ns",
        "queue_ns",
        "ns",
        "bytes_out",
        "queue_blocked_ns",
        "queue_peak",
    ] {
        let pat = format!("\"{key}\":");
        let mut from = 0;
        while let Some(at) = masked[from..].find(&pat) {
            let start = from + at + pat.len();
            let end = start
                + masked[start..]
                    .find([',', '}'])
                    .expect("JSON value terminates");
            masked.replace_range(start..end, "0");
            from = start + 1;
        }
    }
    // `peer` is the one volatile *string* gauge.
    let mut from = 0;
    while let Some(at) = masked[from..].find("\"peer\":\"") {
        let start = from + at + "\"peer\":\"".len();
        let end = start + masked[start..].find('"').expect("string closes");
        masked.replace_range(start..end, "");
        from = start + 1;
    }
    masked
        .lines()
        .map(|line| match line.find("\"text\":\"") {
            Some(at) => format!("{}\"text\":\"\"}}", &line[..at]),
            None => line.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
        + if masked.ends_with('\n') { "\n" } else { "" }
}

/// Spawns `fannet listen --addr 127.0.0.1:0 …` and returns the child
/// plus the OS-assigned address parsed from the readiness line.
fn spawn_listen(extra_args: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fannet"))
        .arg("listen")
        .args(["--addr", "127.0.0.1:0"])
        .args(["--model", &repo_file("tests/data/serve_model.json")])
        .args(extra_args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("fannet binary spawns");
    let mut ready = String::new();
    BufReader::new(child.stdout.take().expect("stdout piped"))
        .read_line(&mut ready)
        .expect("readiness line");
    let addr = ready
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected readiness line: {ready:?}"))
        .parse()
        .expect("bound address parses");
    (child, addr)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("loopback connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout arms");
    stream
}

/// Pipelines `input` over one connection and reads one response line per
/// non-blank request line.
fn roundtrip(addr: SocketAddr, input: &str) -> Vec<String> {
    let mut stream = connect(addr);
    stream.write_all(input.as_bytes()).expect("requests sent");
    stream.flush().expect("requests flushed");
    let expected = input.lines().filter(|l| !l.trim().is_empty()).count();
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::with_capacity(expected);
    for _ in 0..expected {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        lines.push(line.trim_end().to_string());
    }
    lines
}

/// Runs `fannet serve --once --threads 1` over stdin with `input` — the
/// single-client reference every TCP run is compared against.
fn serve_once(input: &str) -> Vec<String> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fannet"))
        .arg("serve")
        .args(["--once", "--threads", "1"])
        .args(["--model", &repo_file("tests/data/serve_model.json")])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("fannet binary spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("requests written");
    let out = child.wait_with_output().expect("fannet serve exits");
    assert!(out.status.success());
    String::from_utf8(out.stdout)
        .expect("utf-8 stdout")
        .lines()
        .map(str::to_string)
        .collect()
}

/// Sends `shutdown`, checks the ack, and waits for a clean exit.
fn shutdown_and_join(mut child: Child, addr: SocketAddr) {
    let mut stream = connect(addr);
    stream
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .expect("shutdown sent");
    let mut reader = BufReader::new(stream);
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("shutdown ack");
    assert_eq!(ack.trim_end(), "{\"op\":\"shutdown\",\"ok\":true}");
    let status = child.wait().expect("listener exits");
    assert!(status.success(), "listener must drain and exit cleanly");
}

/// A workload of globally unique queries (no two requests anywhere share
/// an input vector), so the shared verdict cache cannot couple clients:
/// every answer, including its `source` and per-answer solver counters,
/// is then byte-identical to a solo run of the same lines.
fn unique_workload(client: u64) -> String {
    let mut lines = String::new();
    for i in 0..2u64 {
        let base = client * 20 + i * 5;
        let id = client * 100 + i * 10;
        lines += &format!(
            "{{\"op\":\"check\",\"id\":{},\"input\":[\"100\",\"{}\"],\"label\":0,\"delta\":2}}\n",
            id + 1,
            40 + base
        );
        lines += &format!(
            "{{\"op\":\"tolerance\",\"id\":{},\"input\":[\"100\",\"{}\"],\"label\":0,\"max_delta\":15}}\n",
            id + 2,
            41 + base
        );
        lines += &format!(
            "{{\"op\":\"fault_check\",\"id\":{},\"input\":[\"100\",\"{}\"],\"label\":0,\"model\":\"weight-noise\",\"eps\":\"1/25\"}}\n",
            id + 3,
            42 + base
        );
        lines += &format!(
            "{{\"op\":\"joint_check\",\"id\":{},\"input\":[\"100\",\"{}\"],\"label\":0,\"delta\":1,\"model\":\"bit-flips\",\"budget\":1}}\n",
            id + 4,
            43 + base
        );
    }
    lines
}

#[test]
fn golden_replay_over_tcp_matches_the_stdin_golden() {
    let requests =
        std::fs::read_to_string(repo_file("tests/data/serve_requests.jsonl")).expect("requests");
    let golden =
        std::fs::read_to_string(repo_file("tests/data/serve_golden.jsonl")).expect("golden");
    let (child, addr) = spawn_listen(&["--threads", "1"]);
    let got = roundtrip(addr, &requests);
    let got = format!("{}\n", got.join("\n"));
    assert_eq!(
        mask_volatile(&got),
        golden,
        "the TCP transport must answer the golden batch exactly like stdin"
    );
    shutdown_and_join(child, addr);
}

#[test]
fn four_concurrent_clients_see_ordered_single_client_responses() {
    const CLIENTS: u64 = 4;
    let (child, addr) = spawn_listen(&["--threads", "2"]);
    // Single-client references first (each against its own fresh solo
    // process), then the concurrent run.
    let references: Vec<Vec<String>> = (0..CLIENTS)
        .map(|c| serve_once(&unique_workload(c)))
        .collect();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| std::thread::spawn(move || roundtrip(addr, &unique_workload(c))))
        .collect();
    for (c, handle) in handles.into_iter().enumerate() {
        let got = handle.join().expect("client thread");
        assert_eq!(
            got, references[c],
            "client {c}: concurrent responses must be byte-identical to its solo serve --once run"
        );
    }
    shutdown_and_join(child, addr);
}

#[test]
fn disconnect_mid_batch_leaves_other_streams_intact() {
    let (child, addr) = spawn_listen(&["--threads", "2"]);
    // A long-lived client mid-conversation…
    let mut survivor = connect(addr);
    survivor
        .write_all(
            b"{\"op\":\"check\",\"id\":1,\"input\":[\"100\",\"82\"],\"label\":0,\"delta\":5}\n",
        )
        .expect("first request");
    let mut reader = BufReader::new(survivor.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("first response");
    assert!(line.starts_with("{\"op\":\"check\",\"id\":1"), "{line}");
    // …while another client writes a batch and vanishes without reading.
    {
        let mut doomed = connect(addr);
        doomed
            .write_all(unique_workload(9).as_bytes())
            .expect("doomed batch");
        // Drop without reading a single response.
    }
    // The survivor's stream still works, in order.
    survivor
        .write_all(
            b"{\"op\":\"tolerance\",\"id\":2,\"input\":[\"100\",\"82\"],\"label\":0,\"max_delta\":15}\n\
              {\"op\":\"stats\",\"id\":3}\n",
        )
        .expect("followup requests");
    let mut line = String::new();
    reader.read_line(&mut line).expect("tolerance response");
    assert!(line.starts_with("{\"op\":\"tolerance\",\"id\":2"), "{line}");
    let mut line = String::new();
    reader.read_line(&mut line).expect("stats response");
    assert!(line.starts_with("{\"op\":\"stats\",\"id\":3"), "{line}");
    assert!(line.contains("\"server\":{"), "{line}");
    shutdown_and_join(child, addr);
}

#[cfg(unix)]
#[test]
fn sigterm_drains_and_exits_cleanly() {
    let (mut child, addr) = spawn_listen(&["--threads", "1"]);
    // Prove the engine is live first.
    let lines = roundtrip(
        addr,
        "{\"op\":\"check\",\"id\":1,\"input\":[\"100\",\"82\"],\"label\":0,\"delta\":5}\n",
    );
    assert!(
        lines[0].starts_with("{\"op\":\"check\",\"id\":1"),
        "{lines:?}"
    );
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let status = child.wait().expect("listener exits");
    assert!(status.success(), "SIGTERM must drain, not abort");
    // And the listener said nothing alarming: stderr may carry
    // structured info records (e.g. the readiness log), but nothing at
    // warn or error severity.
    let mut stderr = String::new();
    if let Some(mut pipe) = child.stderr.take() {
        let _ = pipe.read_to_string(&mut stderr);
    }
    for line in stderr.lines() {
        assert!(
            line.starts_with('{') && line.contains("\"level\":\"info\""),
            "unexpected stderr line: {line}"
        );
    }
}
