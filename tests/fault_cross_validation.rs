//! Cross-validation of the fault subsystem against concrete sampling:
//! random faulted networks drawn *inside* a fault model must always be
//! enclosed by the interval-weight propagator, `Robust` verdicts must
//! never be contradicted by any sampled faulted network, and the
//! engine's cached fault answers must equal the cold checker's bit for
//! bit (DESIGN.md §11).

use fannet::engine::{Engine, EngineConfig};
use fannet::faults::{
    propagate, FaultChecker, FaultCheckerConfig, FaultModel, FaultOutcome, FaultRegion,
    FaultedNetwork, JointChecker, JointOutcome, ProductRegion, ToleranceSearch,
};
use fannet::nn::{init, quantize, Activation, Network};
use fannet::numeric::Rational;
use fannet::verify::region::NoiseRegion;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random small ReLU network with 8-bit quantized weights (the same
/// family `checker_cross_validation` uses).
fn random_exact_net(seed: u64) -> Network<Rational> {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = init::fresh_network(
        &mut rng,
        &[2, 3, 2],
        Activation::ReLU,
        init::Init::Uniform(1.5),
    );
    quantize::to_rational(&net, 8)
}

/// Samples one concrete faulted network inside `model` (exact rational
/// arithmetic throughout, so membership is by construction).
fn sample_faulted(net: &Network<Rational>, model: &FaultModel, rng: &mut StdRng) -> FaultedNetwork {
    let mut faulted = FaultedNetwork::from_network(net);
    let shapes = faulted.layer_shapes();
    // A random in-ball factor t = (k − 8)/8 ∈ [−1, 1].
    let t = |rng: &mut StdRng| Rational::new(i128::from(rng.gen_range(0..=16u32)) - 8, 8);
    match model {
        FaultModel::WeightNoise { rel_eps } => {
            for (layer, &(weights, biases)) in shapes.iter().enumerate() {
                for i in 0..weights {
                    let w = faulted.weight(layer, i);
                    faulted.set_weight(layer, i, w + w.abs() * *rel_eps * t(rng));
                }
                for i in 0..biases {
                    let b = faulted.bias(layer, i);
                    faulted.set_bias(layer, i, b + b.abs() * *rel_eps * t(rng));
                }
            }
        }
        FaultModel::Quantization { denom_bits } => {
            let e = FaultModel::quantization_error_bound(*denom_bits);
            for (layer, &(weights, biases)) in shapes.iter().enumerate() {
                for i in 0..weights {
                    let w = faulted.weight(layer, i);
                    faulted.set_weight(layer, i, w + e * t(rng));
                }
                for i in 0..biases {
                    let b = faulted.bias(layer, i);
                    faulted.set_bias(layer, i, b + e * t(rng));
                }
            }
        }
        FaultModel::BitFlips { budget } => {
            let flips = rng.gen_range(0..=*budget);
            for _ in 0..flips {
                let layer = rng.gen_range(0..shapes.len());
                let (weights, biases) = shapes[layer];
                let slot = rng.gen_range(0..weights + biases);
                let original = if slot < weights {
                    faulted.weight(layer, slot)
                } else {
                    faulted.bias(layer, slot - weights)
                };
                if original.is_zero() {
                    continue;
                }
                let flipped = match rng.gen_range(0..3u32) {
                    0 => -original,
                    1 => original + original,
                    _ => original * Rational::new(1, 2),
                };
                if slot < weights {
                    faulted.set_weight(layer, slot, flipped);
                } else {
                    faulted.set_bias(layer, slot - weights, flipped);
                }
            }
        }
        FaultModel::StuckAt {
            layer,
            neuron,
            value,
        } => {
            faulted.set_stuck(*layer, *neuron, *value);
        }
    }
    faulted
}

/// The models the sampling suite quantifies over, driven by two small
/// proptest integers.
fn models(eps_numer: i128, budget: usize) -> Vec<FaultModel> {
    vec![
        FaultModel::WeightNoise {
            rel_eps: Rational::new(eps_numer, 100),
        },
        FaultModel::Quantization { denom_bits: 6 },
        FaultModel::BitFlips { budget },
        FaultModel::StuckAt {
            layer: 0,
            neuron: 1,
            value: Rational::ZERO,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// The enclosure lemma, against ground truth: every sampled faulted
    /// network's outputs lie inside the exact interval-weight enclosure,
    /// the float enclosure, and the zonotope concretization.
    #[test]
    fn sampled_faulted_networks_are_enclosed_by_every_tier(
        seed in 0u64..300,
        sample_seed in 0u64..1000,
        x0 in -30i64..30,
        x1 in -30i64..30,
        eps_numer in 0i128..25,
        budget in 0usize..3,
    ) {
        let net = random_exact_net(seed);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let noise = NoiseRegion::symmetric(0, 2);
        for model in models(eps_numer, budget) {
            let region = FaultRegion::lift(&net, &model).expect("in-domain model");
            let exact = region.output_intervals(&propagate::enclose_input(&x, &noise));
            let float = region.float_outputs(&propagate::enclose_input_float(&x, &noise));
            let forms = region.zonotope_outputs(&x, &noise);
            let mut rng = StdRng::seed_from_u64(sample_seed);
            for _ in 0..8 {
                let faulted = sample_faulted(&net, &model, &mut rng);
                let out = faulted.forward(&x).expect("widths");
                prop_assert!(
                    propagate::encloses_faulted_outputs(&exact, &faulted, &x),
                    "exact enclosure violated under {} (net {}, x {:?}, outputs {:?}, enclosure {:?})",
                    model, seed, x, out, exact
                );
                for (fi, &v) in float.iter().zip(&out) {
                    prop_assert!(
                        fi.contains_rational(v),
                        "float enclosure violated under {}: {} outside {:?}",
                        model, v, fi
                    );
                }
                for (form, &v) in forms.iter().zip(&out) {
                    let (lo, hi) = form.range();
                    let vf = v.to_f64();
                    prop_assert!(
                        lo <= vf.next_up() && vf.next_down() <= hi,
                        "zonotope enclosure violated under {}: {} outside [{}, {}]",
                        model, v, lo, hi
                    );
                }
            }
        }
    }

    /// The verdict soundness lemma, against ground truth: a `Robust`
    /// verdict is never contradicted by any sampled in-model faulted
    /// network, and a `Vulnerable` witness genuinely misclassifies.
    #[test]
    fn robust_verdicts_never_contradicted_by_sampling(
        seed in 0u64..300,
        sample_seed in 0u64..1000,
        x0 in -30i64..30,
        x1 in -30i64..30,
        eps_numer in 0i128..25,
        budget in 0usize..3,
    ) {
        let net = random_exact_net(seed);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let label = net.classify(&x).expect("widths");
        let checker = FaultChecker::new(net.clone(), FaultCheckerConfig::default());
        for model in models(eps_numer, budget) {
            let (outcome, _) = checker.check(&x, label, &model).expect("valid query");
            match &outcome {
                FaultOutcome::Robust => {
                    let mut rng = StdRng::seed_from_u64(sample_seed);
                    for _ in 0..12 {
                        let faulted = sample_faulted(&net, &model, &mut rng);
                        prop_assert_eq!(
                            faulted.classify(&x).expect("widths"),
                            label,
                            "Robust verdict under {} contradicted (net {}, x {:?})",
                            model, seed, x
                        );
                    }
                }
                FaultOutcome::Vulnerable(w) => {
                    prop_assert_ne!(w.predicted, w.expected);
                    prop_assert_eq!(w.expected, label);
                }
                FaultOutcome::Unknown => {} // always sound
            }
        }
    }

    /// The product-region enclosure lemma, against ground truth: every
    /// sampled (noise grid point, in-model faulted network) pair stays
    /// inside the [`ProductRegion`] output enclosure — at the root and
    /// down a chain of alternating splits (the joint domain's abstract
    /// transformer is sound on every box the search can reach).
    #[test]
    fn product_region_enclosure_covers_sampled_pairs_through_splits(
        seed in 0u64..200,
        sample_seed in 0u64..1000,
        x0 in -30i64..30,
        x1 in -30i64..30,
        delta in 0i64..4,
        eps_numer in 0i128..20,
    ) {
        let net = random_exact_net(seed);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let model = FaultModel::WeightNoise {
            rel_eps: Rational::new(eps_numer, 100),
        };
        let fault = FaultRegion::lift(&net, &model).expect("in-domain model");
        let mut region = ProductRegion::new(NoiseRegion::symmetric(delta, 2), fault);
        let mut rng = StdRng::seed_from_u64(sample_seed);
        for depth in 0..5u32 {
            let enclosure = region.output_intervals(&x);
            // Sample noise grid points (corners + a random interior
            // point) × sampled in-model faulted networks.
            let ranges = region.noise.ranges().to_vec();
            let corners = [
                ranges.iter().map(|&(lo, _)| lo).collect::<Vec<_>>(),
                ranges.iter().map(|&(_, hi)| hi).collect::<Vec<_>>(),
                ranges
                    .iter()
                    .map(|&(lo, hi)| rng.gen_range(lo..=hi))
                    .collect::<Vec<_>>(),
            ];
            for percents in corners {
                let nv = fannet::verify::noise::NoiseVector::new(percents);
                let noisy = nv.apply(&x);
                // In-box assignments: the sub-box's own corners and
                // midpoint always work; whole-model samples are only
                // guaranteed inside the *root* fault box.
                let mut assignments = vec![
                    region.fault.corner_lo(),
                    region.fault.corner_hi(),
                    region.fault.midpoint(),
                ];
                if depth == 0 {
                    assignments.push(sample_faulted(&net, &model, &mut rng));
                }
                for faulted in assignments {
                    let out = faulted.forward(&noisy).expect("widths");
                    for (iv, v) in enclosure.iter().zip(&out) {
                        prop_assert!(
                            iv.contains(*v),
                            "pair (noise {}, in-box fault) escapes the product \
                             enclosure at depth {} (net {}, x {:?}): {} outside {:?}",
                            nv, depth, seed, x, v, iv
                        );
                    }
                }
            }
            match region.split() {
                // Descend a deterministic-but-varied path.
                Some((a, b)) => region = if depth % 2 == 0 { a } else { b },
                None => break,
            }
        }
    }

    /// Joint verdict soundness against ground truth: a joint `Robust`
    /// is never contradicted by any sampled (grid point, in-model
    /// fault) pair, and a `Vulnerable` witness genuinely misclassifies
    /// at its recorded noise vector.
    #[test]
    fn joint_robust_verdicts_never_contradicted_by_sampling(
        seed in 0u64..200,
        sample_seed in 0u64..1000,
        x0 in -30i64..30,
        x1 in -30i64..30,
        delta in 0i64..4,
        eps_numer in 0i128..20,
    ) {
        let net = random_exact_net(seed);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let label = net.classify(&x).expect("widths");
        let noise = NoiseRegion::symmetric(delta, 2);
        let model = FaultModel::WeightNoise {
            rel_eps: Rational::new(eps_numer, 100),
        };
        let checker = JointChecker::new(net.clone(), FaultCheckerConfig::default());
        let (outcome, _) = checker.check(&x, label, &noise, &model).expect("valid query");
        match &outcome {
            JointOutcome::Robust => {
                let mut rng = StdRng::seed_from_u64(sample_seed);
                for _ in 0..10 {
                    let percents: Vec<i64> = noise
                        .ranges()
                        .iter()
                        .map(|&(lo, hi)| rng.gen_range(lo..=hi))
                        .collect();
                    let nv = fannet::verify::noise::NoiseVector::new(percents);
                    let faulted = sample_faulted(&net, &model, &mut rng);
                    prop_assert_eq!(
                        faulted.classify(&nv.apply(&x)).expect("widths"),
                        label,
                        "joint Robust contradicted (net {}, x {:?}, noise {}, δ {}, ε {}/100)",
                        seed, x, nv, delta, eps_numer
                    );
                }
            }
            JointOutcome::Vulnerable(w) => {
                prop_assert_ne!(w.predicted, w.expected);
                prop_assert_eq!(w.expected, label);
                prop_assert!(noise.contains(&w.noise), "witness noise inside the box");
            }
            JointOutcome::Unknown => {} // always sound
        }
        // δ = 0 anchor: the joint verdict kind equals the fault checker's.
        if delta == 0 {
            let fault = FaultChecker::new(net.clone(), FaultCheckerConfig::default());
            let (fault_outcome, _) = fault.check(&x, label, &model).expect("valid query");
            prop_assert_eq!(
                outcome.wire_name(),
                fault_outcome.wire_name(),
                "δ=0 joint/fault verdicts diverge (net {}, x {:?}, ε {}/100)",
                seed, x, eps_numer
            );
        }
    }

    /// The engine's joint answers are bit-identical to the cold joint
    /// checker — cold and warm, including a zero-miss tolerance replay.
    #[test]
    fn engine_joint_answers_equal_cold_checker(
        seed in 0u64..150,
        x0 in -30i64..30,
        x1 in -30i64..30,
        delta in 0i64..3,
        eps_numer in 0i128..20,
    ) {
        let net = random_exact_net(seed);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let label = net.classify(&x).expect("widths");
        let noise = NoiseRegion::symmetric(delta, 2);
        let cold = JointChecker::new(net.clone(), FaultCheckerConfig::default());
        let engine = Engine::new(net, EngineConfig::serving());
        let model = FaultModel::WeightNoise {
            rel_eps: Rational::new(eps_numer, 100),
        };
        let (cold_outcome, cold_stats) =
            cold.check(&x, label, &noise, &model).expect("valid");
        let reply = engine.joint_check(&x, label, &noise, &model).expect("valid");
        prop_assert_eq!(&reply.outcome, &cold_outcome);
        prop_assert_eq!(reply.stats, cold_stats);
        let warm = engine.joint_check(&x, label, &noise, &model).expect("valid");
        prop_assert_eq!(&warm.outcome, &cold_outcome);

        let search = ToleranceSearch::new(50, 10);
        let (cold_tol, _) = cold.tolerance(&x, label, delta, &search).expect("valid");
        let engine_tol = engine.joint_tolerance(&x, label, delta, &search).expect("valid");
        prop_assert_eq!(&engine_tol, &cold_tol);
        // The warm repeat replays entirely from the cache.
        let misses = engine.joint_cache_stats().misses;
        let again = engine.joint_tolerance(&x, label, delta, &search).expect("valid");
        prop_assert_eq!(&again, &cold_tol);
        prop_assert_eq!(engine.joint_cache_stats().misses, misses);
    }

    /// Budgeted parallel search determinism (DESIGN.md §16): on random
    /// networks the threaded fault and joint checkers — speculation +
    /// deterministic replay — return verdicts, witnesses **and search
    /// counters** bit-identical to the serial checker at 2 and 4
    /// threads, including the joint tolerance frontier.
    #[test]
    fn threaded_checkers_bit_identical_to_serial_on_random_nets(
        seed in 0u64..200,
        x0 in -30i64..30,
        x1 in -30i64..30,
        delta in 0i64..4,
        eps_numer in 0i128..20,
    ) {
        let net = random_exact_net(seed);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let label = net.classify(&x).expect("widths");
        let noise = NoiseRegion::symmetric(delta, 2);
        let model = FaultModel::WeightNoise {
            rel_eps: Rational::new(eps_numer, 100),
        };
        let config = FaultCheckerConfig::default();
        let fault_serial = FaultChecker::new(net.clone(), config.clone());
        let joint_serial = JointChecker::new(net.clone(), config.clone());
        let (fault_want, fault_want_stats) = fault_serial.check(&x, label, &model).expect("valid");
        let (joint_want, joint_want_stats) =
            joint_serial.check(&x, label, &noise, &model).expect("valid");
        let search = ToleranceSearch::new(50, 10);
        let (tol_want, tol_want_stats) =
            joint_serial.tolerance(&x, label, delta, &search).expect("valid");
        for threads in [2usize, 4] {
            let fault = FaultChecker::new(net.clone(), config.clone()).with_threads(threads);
            let (got, got_stats) = fault.check(&x, label, &model).expect("valid");
            prop_assert_eq!(&got, &fault_want, "fault verdict at {} threads", threads);
            prop_assert_eq!(got_stats, fault_want_stats, "fault stats at {} threads", threads);
            let joint = JointChecker::new(net.clone(), config.clone()).with_threads(threads);
            let (got, got_stats) = joint.check(&x, label, &noise, &model).expect("valid");
            prop_assert_eq!(&got, &joint_want, "joint verdict at {} threads", threads);
            prop_assert_eq!(got_stats, joint_want_stats, "joint stats at {} threads", threads);
            let (tol, tol_stats) = joint.tolerance(&x, label, delta, &search).expect("valid");
            prop_assert_eq!(&tol, &tol_want, "joint tolerance at {} threads", threads);
            prop_assert_eq!(tol_stats, tol_want_stats, "tolerance stats at {} threads", threads);
        }
    }

    /// The engine's fault answers are bit-identical to the cold checker —
    /// cold and warm (the acceptance criterion for `fault_tolerance`).
    #[test]
    fn engine_fault_answers_equal_cold_checker(
        seed in 0u64..200,
        x0 in -30i64..30,
        x1 in -30i64..30,
        eps_numer in 0i128..25,
    ) {
        let net = random_exact_net(seed);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let label = net.classify(&x).expect("widths");
        let cold = FaultChecker::new(net.clone(), FaultCheckerConfig::default());
        let engine = Engine::new(net, EngineConfig::serving());
        let model = FaultModel::WeightNoise {
            rel_eps: Rational::new(eps_numer, 100),
        };
        let (cold_outcome, cold_stats) = cold.check(&x, label, &model).expect("valid");
        let reply = engine.fault_check(&x, label, &model).expect("valid");
        prop_assert_eq!(&reply.outcome, &cold_outcome);
        prop_assert_eq!(reply.stats, cold_stats);
        let warm = engine.fault_check(&x, label, &model).expect("valid");
        prop_assert_eq!(&warm.outcome, &cold_outcome);

        let search = ToleranceSearch::new(100, 25);
        let (cold_tol, _) = cold.tolerance(&x, label, &search).expect("valid");
        let engine_tol = engine.fault_tolerance(&x, label, &search).expect("valid");
        prop_assert_eq!(&engine_tol, &cold_tol);
        // The warm repeat replays entirely from the cache.
        let misses = engine.fault_cache_stats().misses;
        let again = engine.fault_tolerance(&x, label, &search).expect("valid");
        prop_assert_eq!(&again, &cold_tol);
        prop_assert_eq!(engine.fault_cache_stats().misses, misses);
    }
}

/// The trained case-study network: the per-class fault-tolerance numbers
/// the CLI reports are certified and stable shapes (one per class, both
/// non-negative, network = min).
#[test]
fn case_study_fault_report_is_certified_and_consistent() {
    use fannet::core::behavior;
    use fannet::core::casestudy::{build, CaseStudyConfig};
    use fannet::core::faults as core_faults;

    let cs = build(&CaseStudyConfig::small());

    // Satellite regression: the single-pass `quantize_with_error` pins
    // the Golub network's quantization-error budget (and its network
    // equals the two-pass `to_rational` used to build the case study).
    let q = quantize::quantize_with_error(&cs.float_net, quantize::DEFAULT_DENOM_BITS);
    assert_eq!(q.net, cs.exact_net);
    assert_eq!(
        q.max_error,
        Rational::new(8_560_829_693, 18_014_398_509_481_984),
        "max_quantization_error drifted on the Golub case-study network"
    );
    assert_eq!(
        q.max_error,
        quantize::max_quantization_error(&cs.float_net, quantize::DEFAULT_DENOM_BITS)
    );

    let correct = behavior::correctly_classified(&cs.exact_net, &cs.test5);
    let config = core_faults::FaultAnalysisConfig {
        input_threads: 1,
        ..Default::default()
    };
    let report = core_faults::analyze(&cs.exact_net, &cs.test5, &correct, &config);
    assert_eq!(report.per_input.len(), correct.len());
    let per_class = report.per_class_tolerance();
    assert_eq!(per_class.len(), 2);
    let network = report.network_tolerance().expect("analysed inputs");
    for eps in per_class.iter().flatten() {
        assert!(!eps.is_negative());
        assert!(*eps >= network, "class tolerance below the network minimum");
    }
    // Certification spot check: the network-level ε is genuinely Robust
    // for every analysed input under the cold checker.
    let checker = FaultChecker::new(cs.exact_net.clone(), config.checker.clone());
    let model = FaultModel::WeightNoise { rel_eps: network };
    for &i in correct.iter().take(4) {
        let x = behavior::rational_input(&cs.test5.samples()[i]);
        let (outcome, _) = checker.check(&x, cs.test5.labels()[i], &model).unwrap();
        assert_eq!(
            outcome,
            FaultOutcome::Robust,
            "input {i} must be robust at the certified network ε"
        );
    }
}
