//! Cross-crate serialization and export integration: trained models
//! round-trip through JSON; translated SMV models round-trip through the
//! printer/parser; the exported artifacts stay semantically faithful.

use fannet::core::behavior;
use fannet::core::casestudy::{build, CaseStudyConfig};
use fannet::nn::io;
use fannet::numeric::Rational;
use fannet::smv::nn_to_smv::{network_to_smv, TranslationConfig};
use fannet::smv::parser::parse_module;
use fannet::smv::printer::print_module;

#[test]
fn trained_model_round_trips_through_json() {
    let cs = build(&CaseStudyConfig::small());

    // Float network.
    let json = io::to_json(&cs.float_net).expect("serializable");
    let back: fannet::nn::Network<f64> = io::from_json(&json).expect("parse");
    assert_eq!(back, cs.float_net);

    // Exact network: rationals serialize as exact "num/den" strings.
    let json = io::to_json(&cs.exact_net).expect("serializable");
    let back: fannet::nn::Network<Rational> = io::from_json(&json).expect("parse");
    assert_eq!(back, cs.exact_net);

    // The reloaded exact model classifies the whole test set identically.
    let report = behavior::validate(&back, &cs.float_net, &cs.test5);
    assert!(report.translation_faithful());
}

#[test]
fn file_round_trip_preserves_classification() {
    let cs = build(&CaseStudyConfig::small());
    let dir = std::env::temp_dir().join("fannet-integration");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("leukemia_exact.json");

    io::save(&cs.exact_net, &path).expect("save");
    let back: fannet::nn::Network<Rational> = io::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    for (sample, _) in cs.test5.iter() {
        let x = behavior::rational_input(sample);
        assert_eq!(
            back.classify(&x).expect("width"),
            cs.exact_net.classify(&x).expect("width")
        );
    }
}

#[test]
fn smv_export_round_trips_for_every_test_input() {
    let cs = build(&CaseStudyConfig::small());
    for (i, (sample, label)) in cs.test5.iter().enumerate().take(10) {
        let x = behavior::rational_input(sample);
        let module = network_to_smv(&cs.exact_net, &x, label, &TranslationConfig::symmetric(3));
        let text = print_module(&module);
        let back = parse_module(&text)
            .unwrap_or_else(|e| panic!("reparse failed for test input {i}: {e}"));
        assert_eq!(back, module, "AST round trip for test input {i}");
        // Structure: 5 noise vars, 5 + 20 + 2 + 1 defines, one invariant.
        assert_eq!(module.vars.len(), 5);
        assert_eq!(module.defines.len(), 28);
        assert_eq!(module.invarspecs.len(), 1);
    }
}
