//! The paper's case study is binary, but nothing in the methodology is:
//! these tests exercise the full verification stack on a 3-class problem,
//! including the lower-index tie-break of the maxpool readout across more
//! than two rivals.

use fannet::core::{adversarial, behavior, bias, sensitivity, tolerance};
use fannet::data::Dataset;
use fannet::nn::{Activation, DenseLayer, Network, Readout};
use fannet::numeric::Rational;
use fannet::tensor::Matrix;
use fannet::verify::bab::{check_region_exhaustive, find_counterexample};
use fannet::verify::noise::ExclusionSet;
use fannet::verify::region::NoiseRegion;

fn r(n: i128) -> Rational {
    Rational::from_integer(n)
}

/// Three-class "which coordinate is largest" network (identity weights).
fn three_way() -> Network<Rational> {
    Network::new(
        vec![DenseLayer::new(
            Matrix::from_rows(vec![
                vec![r(1), r(0), r(0)],
                vec![r(0), r(1), r(0)],
                vec![r(0), r(0), r(1)],
            ])
            .unwrap(),
            vec![r(0), r(0), r(0)],
            Activation::Identity,
        )
        .unwrap()],
        Readout::MaxPool,
    )
    .unwrap()
}

#[test]
fn three_class_classification_and_ties() {
    let net = three_way();
    assert_eq!(net.classify(&[r(3), r(2), r(1)]).unwrap(), 0);
    assert_eq!(net.classify(&[r(1), r(3), r(2)]).unwrap(), 1);
    assert_eq!(net.classify(&[r(1), r(2), r(3)]).unwrap(), 2);
    // Ties break toward the lowest index across all three outputs.
    assert_eq!(net.classify(&[r(5), r(5), r(5)]).unwrap(), 0);
    assert_eq!(net.classify(&[r(1), r(5), r(5)]).unwrap(), 1);
}

#[test]
fn three_class_bab_agrees_with_bruteforce() {
    let net = three_way();
    let cases = [
        ([100i64, 90, 80], 0usize),
        ([90, 100, 80], 1),
        ([80, 90, 100], 2),
        ([100, 99, 98], 0),
    ];
    for (raw, label) in cases {
        let x: Vec<Rational> = raw.iter().map(|&v| r(i128::from(v))).collect();
        assert_eq!(net.classify(&x).unwrap(), label);
        for delta in [1i64, 3, 6] {
            let region = NoiseRegion::symmetric(delta, 3);
            let (bab_out, _) = find_counterexample(&net, &x, label, &region).unwrap();
            let (exh_out, _) =
                check_region_exhaustive(&net, &x, label, &region, &ExclusionSet::new()).unwrap();
            assert_eq!(
                bab_out.is_robust(),
                exh_out.is_robust(),
                "disagreement at {raw:?} ±{delta}"
            );
        }
    }
}

#[test]
fn three_class_full_analysis_runs() {
    let net = three_way();
    let float = net.map(|v| v.to_f64());
    let data = Dataset::new(
        vec![
            vec![100.0, 90.0, 80.0],
            vec![90.0, 100.0, 80.0],
            vec![80.0, 90.0, 100.0],
            vec![100.0, 98.0, 96.0],
        ],
        vec![0, 1, 2, 0],
        3,
    )
    .unwrap();

    let validation = behavior::validate(&net, &float, &data);
    assert_eq!(validation.correct, 4);
    let correct = behavior::correctly_classified(&net, &data);

    let tol = tolerance::analyze(&net, &data, &correct, 20);
    // The (100, 98, 96) input sits near a 3-way boundary; the clean ones
    // are further out.
    assert!(tol.per_input[3].radius.unwrap() < tol.per_input[0].radius.unwrap_or(21));

    let adv = adversarial::extract(&net, &data, &correct, 6, 50);
    let b = bias::analyze(&adv, &tol, &data);
    assert_eq!(b.flows.len(), 3, "3x3 flow matrix");
    assert_eq!(b.flows[0].len(), 3);

    let s = sensitivity::analyze(&adv);
    if adv.total_vectors() > 0 {
        assert_eq!(s.nodes.len(), 3);
    }
}
