//! Cross-validation of the three "model checkers" against each other:
//! branch-and-bound, exhaustive grid enumeration, and the explicit-state
//! SMV checker must return the same verdict for the same P2 property.
//!
//! This is the load-bearing correctness argument for the nuXmv
//! substitution (DESIGN.md §2/§5): three independent implementations of
//! the same semantics agree on real trained networks.

use fannet::core::behavior;
use fannet::core::casestudy::{build, CaseStudyConfig};
use fannet::numeric::Rational;
use fannet::smv::explicit::check_invariant;
use fannet::smv::nn_to_smv::{network_to_smv, TranslationConfig};
use fannet::smv::TransitionSystem;
use fannet::verify::bab::{
    check_region_exhaustive, find_counterexample, find_counterexample_with, CheckerConfig,
    ScreeningTier,
};
use fannet::verify::noise::ExclusionSet;
use fannet::verify::region::NoiseRegion;
use fannet::verify::zonotope::ZonotopeShadow;
use proptest::prelude::*;
use rand::SeedableRng;

#[test]
fn three_checkers_agree_on_trained_network() {
    let cs = build(&CaseStudyConfig::small());
    let correct = behavior::correctly_classified(&cs.exact_net, &cs.test5);

    // Keep the explicit state space small: ±1% over 5 nodes = 3^5 = 243.
    for &i in correct.iter().take(6) {
        let x = behavior::rational_input(&cs.test5.samples()[i]);
        let label = cs.test5.labels()[i];
        let region = NoiseRegion::symmetric(1, 5);

        let (bab_out, _) = find_counterexample(&cs.exact_net, &x, label, &region).expect("widths");
        let (exh_out, _) =
            check_region_exhaustive(&cs.exact_net, &x, label, &region, &ExclusionSet::new())
                .expect("widths");
        let module = network_to_smv(&cs.exact_net, &x, label, &TranslationConfig::symmetric(1));
        let ts = TransitionSystem::from_module(&module, 1 << 12).expect("243 states");
        let smv_result = check_invariant(&ts, &module.invarspecs[0]).expect("evaluates");

        assert_eq!(
            bab_out.is_robust(),
            exh_out.is_robust(),
            "bab vs exhaustive disagree on input {i}"
        );
        assert_eq!(
            bab_out.is_robust(),
            smv_result.holds(),
            "bab vs SMV explicit checker disagree on input {i}"
        );
    }
}

/// Random small ReLU networks: branch-and-bound must agree with brute
/// force everywhere, including pathological weight patterns.
fn random_exact_net(seed: u64) -> fannet::nn::Network<Rational> {
    use fannet::nn::{init, quantize, Activation};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let net = init::fresh_network(
        &mut rng,
        &[2, 3, 2],
        Activation::ReLU,
        init::Init::Uniform(1.5),
    );
    quantize::to_rational(&net, 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bab_agrees_with_bruteforce_on_random_nets(
        seed in 0u64..500,
        x0 in -30i64..30,
        x1 in -30i64..30,
        delta in 0i64..6,
    ) {
        let net = random_exact_net(seed);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let label = net.classify(&x).expect("width");
        let region = NoiseRegion::symmetric(delta, 2);
        let (bab_out, _) = find_counterexample(&net, &x, label, &region).expect("widths");
        let (exh_out, _) =
            check_region_exhaustive(&net, &x, label, &region, &ExclusionSet::new())
                .expect("widths");
        prop_assert_eq!(bab_out.is_robust(), exh_out.is_robust());
        // When both find counterexamples, each witness must be genuine.
        if let Some(ce) = bab_out.counterexample() {
            let noisy = ce.noise.apply(&x);
            prop_assert_ne!(net.classify(&noisy).expect("width"), label);
            prop_assert!(region.contains(&ce.noise));
        }
    }

    /// The tentpole's soundness-is-never-traded guarantee: every
    /// [`ScreeningTier`] (none/interval/zonotope/cascade), serial and
    /// parallel, returns the identical outcome AND the identical
    /// (lexicographically-first, i.e. serial-DFS-first) counterexample on
    /// random small networks.
    #[test]
    fn all_checker_variants_agree_on_outcome_and_witness(
        seed in 0u64..500,
        x0 in -30i64..30,
        x1 in -30i64..30,
        delta in 0i64..6,
    ) {
        let net = random_exact_net(seed);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let label = net.classify(&x).expect("width");
        let region = NoiseRegion::symmetric(delta, 2);
        let (baseline, _) =
            find_counterexample(&net, &x, label, &region).expect("widths");
        let baseline_ce = baseline.counterexample().map(|c| c.noise.clone());
        for config in [
            CheckerConfig::screened(),
            CheckerConfig::zonotope(),
            CheckerConfig::cascade(),
            CheckerConfig::serial_exact().with_threads(4),
            CheckerConfig::screened().with_threads(4),
            CheckerConfig::cascade().with_threads(4),
        ] {
            let (out, _) = find_counterexample_with(&net, &x, label, &region, &config)
                .expect("widths");
            prop_assert_eq!(
                baseline.is_robust(),
                out.is_robust(),
                "outcome differs under {:?}", config
            );
            prop_assert_eq!(
                baseline_ce.clone(),
                out.counterexample().map(|c| c.noise.clone()),
                "counterexample identity differs under {:?}", config
            );
        }
    }

    /// Zonotope soundness lemma, checked against ground truth: the
    /// concretization of every output form encloses the exact rational
    /// network output for every grid point of the region (random
    /// networks, random inputs, asymmetric random regions).
    #[test]
    fn zonotope_concretization_encloses_exact_outputs(
        seed in 0u64..300,
        x0 in -30i64..30,
        x1 in -30i64..30,
        lo0 in -3i64..=0, hi0 in 0i64..=3,
        lo1 in -3i64..=0, hi1 in 0i64..=3,
    ) {
        let net = random_exact_net(seed);
        let shadow = ZonotopeShadow::new(&net);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let region = NoiseRegion::new(vec![(lo0, hi0), (lo1, hi1)]);
        let forms = shadow.output_forms(&ZonotopeShadow::enclose_input(&x), &region);
        for nv in region.iter_points() {
            let exact = net.forward(&nv.apply(&x)).expect("width");
            for (form, &v) in forms.iter().zip(&exact) {
                let (lo, hi) = form.range();
                let vf = v.to_f64();
                prop_assert!(
                    lo <= vf.next_up() && vf.next_down() <= hi,
                    "output {} of noise {} escapes [{}, {}] (net seed {}, x {:?})",
                    v, nv, lo, hi, seed, x
                );
            }
        }
    }

    /// The generic `fannet-search` collector: on random networks the
    /// single-pass counterexample collection returns, under every
    /// screening tier, the identical sequence to the serial-exact
    /// baseline — and as a *set* exactly the brute-force population of
    /// misclassifying grid points. This pins the post-refactor
    /// `collect_witnesses` loop (uniform-box expansion included) to the
    /// pre-refactor semantics.
    #[test]
    fn generic_collector_bit_identical_across_tiers_and_complete(
        seed in 0u64..300,
        x0 in -30i64..30,
        x1 in -30i64..30,
        delta in 1i64..5,
    ) {
        use fannet::verify::bab::{
            collect_region_counterexamples, collect_region_counterexamples_with,
        };
        let net = random_exact_net(seed);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let label = net.classify(&x).expect("width");
        let region = NoiseRegion::symmetric(delta, 2);
        let (baseline, exhausted, _) =
            collect_region_counterexamples(&net, &x, label, &region, usize::MAX)
                .expect("widths");
        prop_assert!(exhausted, "uncapped collection exhausts the region");
        let baseline_noise: Vec<_> = baseline.iter().map(|ce| ce.noise.clone()).collect();
        // Set-level completeness against brute force.
        let mut brute: Vec<_> = region
            .iter_points()
            .filter(|nv| {
                fannet::verify::exact::classify_noisy(&net, &x, nv).expect("width") != label
            })
            .collect();
        let mut sorted = baseline_noise.clone();
        sorted.sort_by_key(|nv| nv.percents().to_vec());
        brute.sort_by_key(|nv| nv.percents().to_vec());
        prop_assert_eq!(sorted, brute, "collector must enumerate every CE exactly once");
        // Sequence-level identity across every screening tier.
        for tier in ScreeningTier::ALL {
            let config = CheckerConfig::serial_exact().with_screening(tier);
            let (collected, tier_exhausted, _) = collect_region_counterexamples_with(
                &net, &x, label, &region, usize::MAX, &config,
            )
            .expect("widths");
            prop_assert_eq!(tier_exhausted, exhausted);
            let got: Vec<_> = collected.iter().map(|ce| ce.noise.clone()).collect();
            prop_assert_eq!(
                &got, &baseline_noise,
                "collection order/content differs under tier {:?}", tier
            );
        }
    }

    /// Batched propagation lemma (DESIGN.md §16): on random networks and
    /// random asymmetric regions, every lane of a K-wide batched pass is
    /// **bitwise** equal to the scalar float shadow on that box — both
    /// the output enclosures and the derived verdicts — for K ∈
    /// {1, 2, 7, 64} (singleton, tiny, odd, beyond `BATCH_WIDTH`), with
    /// the workspace reused across batches.
    #[test]
    fn batched_propagation_bitwise_equals_the_scalar_shadow(
        seed in 0u64..300,
        x0 in -30i64..30,
        x1 in -30i64..30,
        lo0 in -6i64..=0, hi0 in 0i64..=6,
        lo1 in -6i64..=0, hi1 in 0i64..=6,
    ) {
        use fannet::verify::batch::{BatchFloatShadow, BatchWorkspace};
        use fannet::verify::propagate::{classify_box_float, FloatShadow};
        let net = random_exact_net(seed);
        let shadow = FloatShadow::new(&net);
        let batch = BatchFloatShadow::from_shadow(&shadow);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let xf = FloatShadow::enclose_input(&x);
        let label = net.classify(&x).expect("width");
        // A deterministic pool of distinct sub-boxes: the base region's
        // split frontier, refined until it can seed the widest batch.
        let mut pool = vec![NoiseRegion::new(vec![(lo0, hi0), (lo1, hi1)])];
        let mut at = 0usize;
        while pool.len() < 64 && at < 4096 {
            let slot = at % pool.len();
            let split = pool[slot].split();
            if let Some((a, b)) = split {
                pool[slot] = a;
                pool.push(b);
            }
            at += 1; // point-only pools (lo = hi = 0) exit via the cap
        }
        let mut ws = BatchWorkspace::default();
        for k in [1usize, 2, 7, 64] {
            let regions: Vec<&NoiseRegion> =
                (0..k).map(|i| &pool[i % pool.len()]).collect();
            let outputs = batch.output_intervals_batch(&xf, &regions, &mut ws);
            let verdicts = batch.classify_batch(&xf, label, &regions, &mut ws);
            for (lane, region) in regions.iter().enumerate() {
                let scalar = shadow.output_intervals(&xf, region);
                prop_assert_eq!(outputs[lane].len(), scalar.len());
                for (b, s) in outputs[lane].iter().zip(&scalar) {
                    prop_assert_eq!(
                        (b.lo().to_bits(), b.hi().to_bits()),
                        (s.lo().to_bits(), s.hi().to_bits()),
                        "lane {} of K={} diverges from the scalar shadow \
                         (net seed {}, x {:?})",
                        lane, k, seed, &x
                    );
                }
                prop_assert_eq!(
                    verdicts[lane],
                    classify_box_float(&scalar, label),
                    "verdict of lane {} of K={} diverges (net seed {})",
                    lane, k, seed
                );
            }
        }
    }

    /// End-to-end batching identity: the batched cascade (default) and
    /// the scalar cascade (`with_batching(false)`) return bit-identical
    /// verdicts, witnesses and search counters on random networks.
    #[test]
    fn batched_checker_bit_identical_to_scalar_on_random_nets(
        seed in 0u64..300,
        x0 in -30i64..30,
        x1 in -30i64..30,
        delta in 0i64..6,
    ) {
        use fannet::verify::bab::RegionChecker;
        let net = random_exact_net(seed);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let label = net.classify(&x).expect("width");
        let region = NoiseRegion::symmetric(delta, 2);
        for config in [CheckerConfig::screened(), CheckerConfig::cascade()] {
            let batched = RegionChecker::new(&net, config.clone());
            let scalar = RegionChecker::new(&net, config.clone()).with_batching(false);
            let (out_b, stats_b) = batched
                .check_region(&x, label, &region, &ExclusionSet::new())
                .expect("widths");
            let (out_s, stats_s) = scalar
                .check_region(&x, label, &region, &ExclusionSet::new())
                .expect("widths");
            prop_assert_eq!(out_b.is_robust(), out_s.is_robust());
            prop_assert_eq!(
                out_b.counterexample().map(|c| c.noise.clone()),
                out_s.counterexample().map(|c| c.noise.clone()),
                "witness identity under {:?} (net seed {})", config, seed
            );
            prop_assert_eq!(
                stats_b, stats_s,
                "counter identity under {:?} (net seed {})", config, seed
            );
        }
    }

    /// ScreeningTier settings are pure routing: on random asymmetric
    /// regions every tier's verdict and witness equal the serial-exact
    /// baseline's (the box-level guarantee behind the acceptance
    /// criterion; symmetric regions are covered above).
    #[test]
    fn all_screening_tiers_identical_on_asymmetric_regions(
        seed in 0u64..300,
        x0 in -30i64..30,
        x1 in -30i64..30,
        lo0 in -5i64..=0, hi0 in 0i64..=5,
        lo1 in -5i64..=0, hi1 in 0i64..=5,
    ) {
        let net = random_exact_net(seed);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let label = net.classify(&x).expect("width");
        let region = NoiseRegion::new(vec![(lo0, hi0), (lo1, hi1)]);
        let (baseline, _) = find_counterexample(&net, &x, label, &region).expect("widths");
        let baseline_ce = baseline.counterexample().map(|c| c.noise.clone());
        for tier in [
            ScreeningTier::None,
            ScreeningTier::Interval,
            ScreeningTier::Zonotope,
            ScreeningTier::Cascade,
        ] {
            let config = CheckerConfig::serial_exact().with_screening(tier);
            let (out, _) = find_counterexample_with(&net, &x, label, &region, &config)
                .expect("widths");
            prop_assert_eq!(
                baseline.is_robust(), out.is_robust(),
                "verdict differs under tier {:?}", tier
            );
            prop_assert_eq!(
                baseline_ce.clone(),
                out.counterexample().map(|c| c.noise.clone()),
                "witness differs under tier {:?}", tier
            );
        }
    }
}
