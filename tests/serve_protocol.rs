//! End-to-end smoke test of `fannet serve`: pipes the committed JSONL
//! request batch through the real binary and diffs against the committed
//! golden responses — the same check CI's serve-smoke job runs in shell.
//!
//! Run with `--threads 1` so the `stats` response's counters are
//! scheduling-independent (verdicts are deterministic at any thread
//! count; the counters are not, because concurrent queries race for who
//! misses first).
//!
//! Four fields of the `server` block are wall-clock- or scheduling-
//! dependent even at one worker (`uptime_ms`, `qps`, `queue_depth`,
//! `queue_high_water` — how far the reader ran ahead of the worker).
//! The committed golden holds them masked to `0`, and [`mask_volatile`]
//! applies the same rewrite to live output before diffing; everything
//! else, including the rest of the `server` block, compares byte-exact.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn repo_file(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Zeroes the volatile `server` gauges (lifetime and windowed rates,
/// percentile scalars, per-request nanosecond stamps, per-connection
/// byte/blocking gauges), blanks the `peer` string (a TCP peer carries
/// an ephemeral port where stdio says "stdio"), and blanks the (wholly
/// wall-clock-dependent) `text` payload of a `metrics` response,
/// leaving every other byte alone (mirrors the `sed` rewrite of CI's
/// serve-smoke job).
fn mask_volatile(text: &str) -> String {
    let mut masked = text.to_string();
    for key in [
        "uptime_ms",
        "qps",
        "qps_10s",
        "qps_60s",
        "queue_depth",
        "queue_high_water",
        "p50_ns",
        "p90_ns",
        "p99_ns",
        "count_10s",
        "p50_10s_ns",
        "p99_10s_ns",
        "wall_ns",
        "queue_ns",
        "ns",
        "bytes_out",
        "queue_blocked_ns",
        "queue_peak",
    ] {
        let pat = format!("\"{key}\":");
        let mut from = 0;
        while let Some(at) = masked[from..].find(&pat) {
            let start = from + at + pat.len();
            let end = start
                + masked[start..]
                    .find([',', '}'])
                    .expect("JSON value terminates");
            masked.replace_range(start..end, "0");
            from = start + 1;
        }
    }
    // `peer` is the one volatile *string* gauge.
    let mut from = 0;
    while let Some(at) = masked[from..].find("\"peer\":\"") {
        let start = from + at + "\"peer\":\"".len();
        let end = start + masked[start..].find('"').expect("string closes");
        masked.replace_range(start..end, "");
        from = start + 1;
    }
    // `text` is the final deterministic-order field of a `metrics`
    // line; truncating there also drops the trailing `recent` timeline
    // ring, which is volatile in every field.
    masked
        .lines()
        .map(|line| match line.find("\"text\":\"") {
            Some(at) => format!("{}\"text\":\"\"}}", &line[..at]),
            None => line.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
        + if masked.ends_with('\n') { "\n" } else { "" }
}

fn run_serve(extra_args: &[&str], input: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fannet"))
        .arg("serve")
        .args(["--model", &repo_file("tests/data/serve_model.json")])
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("fannet binary spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("requests written");
    let out = child.wait_with_output().expect("fannet serve exits");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
        out.status.success(),
    )
}

#[test]
fn once_batch_matches_committed_golden_responses() {
    let requests =
        std::fs::read_to_string(repo_file("tests/data/serve_requests.jsonl")).expect("requests");
    let golden =
        std::fs::read_to_string(repo_file("tests/data/serve_golden.jsonl")).expect("golden");
    let (stdout, stderr, ok) = run_serve(&["--once", "--threads", "1"], &requests);
    assert!(ok, "serve must exit cleanly: {stderr}");
    assert_eq!(
        mask_volatile(&stdout),
        golden,
        "JSONL responses drifted from tests/data/serve_golden.jsonl — if the \
         change is intentional, regenerate it with:\n  fannet serve --once \
         --threads 1 --model tests/data/serve_model.json \
         < tests/data/serve_requests.jsonl \
         | sed -E 's/\"(uptime_ms|qps|qps_10s|qps_60s|queue_depth|queue_high_water|p50_ns|p90_ns|p99_ns|count_10s|p50_10s_ns|p99_10s_ns|wall_ns|queue_ns|ns|bytes_out|queue_blocked_ns|queue_peak)\":[0-9.eE+-]+/\"\\1\":0/g; \
         s/\"peer\":\"[^\"]*\"/\"peer\":\"\"/g; \
         s/\"text\":\".*/\"text\":\"\"}}/' \
         > tests/data/serve_golden.jsonl"
    );
}

/// A `shutdown` request must end the session even though stdin never
/// reaches EOF — the in-band stop the TCP front end relies on, checked
/// here through the stdio front end that shares the core.
#[test]
fn shutdown_request_exits_without_stdin_eof() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fannet"))
        .arg("serve")
        .args(["--model", &repo_file("tests/data/serve_model.json")])
        .args(["--threads", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("fannet binary spawns");
    let mut stdin = child.stdin.take().expect("stdin piped");
    stdin
        .write_all(
            b"{\"op\":\"check\",\"id\":1,\"input\":[\"100\",\"82\"],\"label\":0,\"delta\":5}\n\
              {\"op\":\"shutdown\",\"id\":2}\n",
        )
        .expect("requests written");
    stdin.flush().expect("requests flushed");
    // `stdin` stays open in this variable: the exit below can only come
    // from the shutdown drain, never from an EOF.
    let out = child.wait_with_output().expect("fannet serve exits");
    drop(stdin);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(
        lines[0].starts_with("{\"op\":\"check\",\"id\":1,\"verdict\":\"robust\""),
        "{stdout}"
    );
    assert_eq!(lines[1], "{\"op\":\"shutdown\",\"id\":2,\"ok\":true}");
}

/// An oversized request line is answered with one contained error
/// response and the session keeps serving the next line.
#[test]
fn oversized_line_is_contained() {
    let huge = format!("{{\"pad\":\"{}\"}}\n", "x".repeat(512));
    let input = format!(
        "{huge}{{\"op\":\"check\",\"id\":2,\"input\":[\"100\",\"82\"],\"label\":0,\"delta\":5}}\n"
    );
    let (stdout, stderr, ok) = run_serve(&["--threads", "1", "--max-line-bytes", "256"], &input);
    assert!(ok, "serve must exit cleanly: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(
        lines[0].contains("exceeds --max-line-bytes (256 bytes)"),
        "{stdout}"
    );
    assert!(
        lines[1].starts_with("{\"op\":\"check\",\"id\":2,\"verdict\":\"robust\""),
        "{stdout}"
    );
}

#[test]
fn parallel_batch_verdicts_match_golden_modulo_stats() {
    let requests =
        std::fs::read_to_string(repo_file("tests/data/serve_requests.jsonl")).expect("requests");
    let golden =
        std::fs::read_to_string(repo_file("tests/data/serve_golden.jsonl")).expect("golden");
    let (stdout, stderr, ok) = run_serve(&["--once", "--threads", "4"], &requests);
    assert!(ok, "serve must exit cleanly: {stderr}");
    // Verdict-bearing fields are deterministic at any thread count; only
    // `source` attribution and counters may shift, so compare the stable
    // prefix of every non-stats line.
    let stable = |line: &str| {
        line.split(",\"source\":")
            .next()
            .expect("split yields a prefix")
            .to_string()
    };
    let got: Vec<String> = mask_volatile(&stdout)
        .lines()
        .filter(|l| !l.contains("\"op\":\"stats\""))
        .map(stable)
        .collect();
    let want: Vec<String> = golden
        .lines()
        .filter(|l| !l.contains("\"op\":\"stats\""))
        .map(stable)
        .collect();
    assert_eq!(got, want);
}

/// Verdict-bearing fields must be identical across screening tiers —
/// the tiers only change who pays for each box, never the answer (the
/// same invariant CI's serve-smoke job re-checks in shell for the
/// cascade tier). Solver counters legitimately differ per tier, so the
/// comparison strips from the `source`/`stats` suffix on.
#[test]
fn all_screening_tiers_match_golden_verdicts_modulo_stats() {
    let requests =
        std::fs::read_to_string(repo_file("tests/data/serve_requests.jsonl")).expect("requests");
    let golden =
        std::fs::read_to_string(repo_file("tests/data/serve_golden.jsonl")).expect("golden");
    let stable = |line: &str| {
        line.split(",\"source\":")
            .next()
            .expect("split yields a prefix")
            .to_string()
    };
    let want: Vec<String> = golden
        .lines()
        .filter(|l| !l.contains("\"op\":\"stats\""))
        .map(stable)
        .collect();
    for tier in ["none", "interval", "zonotope", "cascade"] {
        let (stdout, stderr, ok) = run_serve(
            &["--once", "--threads", "1", "--screening", tier],
            &requests,
        );
        assert!(ok, "serve --screening {tier} must exit cleanly: {stderr}");
        let got: Vec<String> = mask_volatile(&stdout)
            .lines()
            .filter(|l| !l.contains("\"op\":\"stats\""))
            .map(stable)
            .collect();
        assert_eq!(got, want, "tier {tier} drifted from the golden verdicts");
    }
}

#[test]
fn conflicting_screening_flags_fail_with_usage() {
    let (_, stderr, ok) = run_serve(&["--once", "--no-screening", "--screening", "cascade"], "");
    assert!(!ok);
    assert!(stderr.contains("not both"), "{stderr}");
}

#[test]
fn streaming_mode_answers_in_order_and_skips_blank_lines() {
    let input = concat!(
        "{\"op\":\"check\",\"id\":1,\"input\":[\"100\",\"82\"],\"label\":0,\"delta\":5}\n",
        "\n",
        "{\"op\":\"check\",\"id\":2,\"input\":[\"100\",\"82\"],\"label\":0,\"delta\":5}\n",
        "not json\n",
        "{\"op\":\"stats\",\"id\":3}\n",
    );
    // No --once: the streaming loop drains chunks until stdin closes.
    let (stdout, stderr, ok) = run_serve(&["--threads", "1"], input);
    assert!(ok, "serve must exit cleanly: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "{stdout}");
    assert!(lines[0].starts_with("{\"op\":\"check\",\"id\":1,\"verdict\":\"robust\""));
    assert!(lines[1].starts_with("{\"op\":\"check\",\"id\":2,\"verdict\":\"robust\""));
    assert!(lines[2].starts_with("{\"op\":\"error\""), "{}", lines[2]);
    assert!(
        lines[3].starts_with("{\"op\":\"stats\",\"id\":3"),
        "{}",
        lines[3]
    );
}

/// `--trace-out` writes a Chrome trace-event (catapult) JSON array —
/// the format Perfetto and chrome://tracing load directly — with one
/// complete `service` span per answered request (alongside its queue/
/// sequence/write spans in the same per-connection lane).
#[test]
fn trace_out_writes_one_complete_service_event_per_request() {
    let requests =
        std::fs::read_to_string(repo_file("tests/data/serve_requests.jsonl")).expect("requests");
    let path = std::env::temp_dir().join(format!("fannet-trace-{}.json", std::process::id()));
    let (stdout, stderr, ok) = run_serve(
        &[
            "--once",
            "--threads",
            "1",
            "--trace-out",
            path.to_str().expect("utf-8 path"),
        ],
        &requests,
    );
    let trace = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    assert!(ok, "serve must exit cleanly: {stderr}");
    let trimmed = trace.trim();
    assert!(
        trimmed.starts_with('[') && trimmed.ends_with(']'),
        "trace must be a closed JSON array: {trimmed:?}"
    );
    let responses = stdout.lines().count();
    assert_eq!(
        trace.matches("\"name\":\"service\"").count(),
        responses,
        "one service span per answered request"
    );
    // Every event in the file is a complete event ("ph":"X").
    assert_eq!(
        trace.matches("\"ph\":\"X\"").count(),
        trace.matches("\"name\":").count()
    );
}

#[test]
fn bad_model_path_fails_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_fannet"))
        .args(["serve", "--model", "/nonexistent/model.json", "--once"])
        .stdin(Stdio::null())
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot load model"), "{stderr}");
}
