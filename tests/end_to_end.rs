//! End-to-end integration: the complete case study through the complete
//! pipeline, on the reduced (500-gene) configuration for CI speed.

use fannet::core::casestudy::{build, CaseStudyConfig};
use fannet::core::pipeline::{self, AnalysisConfig};
use fannet::data::golub::{L0_AML, L1_ALL};

fn fast_config() -> AnalysisConfig {
    AnalysisConfig {
        max_delta: 30,
        sweep_deltas: vec![5, 10, 20, 30],
        extraction_delta: None,
        per_input_cap: 20,
        near_threshold: 10,
        ..AnalysisConfig::default()
    }
}

#[test]
fn small_case_study_full_pipeline() {
    let cs = build(&CaseStudyConfig::small());
    let report = pipeline::run(
        &cs.exact_net,
        &cs.float_net,
        &cs.train5,
        &cs.test5,
        &fast_config(),
    );

    // P1: the quantized model is faithful and the test set imperfect-but-good.
    assert!(report.validation.translation_faithful());
    assert!(report.validation.accuracy() >= 0.85);
    assert!(report.validation.accuracy() < 1.0);

    // P2: a meaningful tolerance exists (not zero, not the whole range).
    let tol = report.noise_tolerance();
    assert!(tol >= 1, "tolerance {tol} collapsed");

    // The sweep is monotone in the noise range.
    let counts: Vec<usize> = report
        .sweep
        .iter()
        .map(|r| r.misclassified_inputs)
        .collect();
    for w in counts.windows(2) {
        assert!(w[1] >= w[0], "sweep must be monotone: {counts:?}");
    }

    // P3: vectors were extracted, all unique per input.
    for per_input in &report.adversarial.per_input {
        let mut seen = std::collections::HashSet::new();
        for ce in &per_input.counterexamples {
            assert!(seen.insert(ce.noise.clone()), "duplicate vector");
            assert_eq!(ce.expected, per_input.label);
            assert_ne!(ce.predicted, ce.expected);
        }
    }

    // Training bias: flows exist and the training set is ~71% L1.
    assert!((cs.train5.label_fraction(L1_ALL) - 27.0 / 38.0).abs() < 1e-12);
    assert!(
        report.bias.total() > 0,
        "need counterexamples for bias analysis"
    );

    // Sensitivity: one entry per input node.
    assert_eq!(report.sensitivity.nodes.len(), 5);

    // Boundary: every analysed point carries a margin consistent with its
    // correct classification (margin ≥ 0; = 0 only possible for label 0 ties).
    for p in &report.boundary.points {
        assert!(
            p.margin >= 0.0,
            "correctly classified input {} has negative margin {}",
            p.index,
            p.margin
        );
    }

    // Fault section: one certified ε per analysed (correctly classified)
    // input, and a meaningful network-level weight-noise tolerance.
    assert_eq!(
        report.fault.per_input.len(),
        report.tolerance.per_input.len()
    );
    let eps = report
        .fault
        .network_tolerance()
        .expect("analysed inputs exist");
    assert!(!eps.is_negative());
    for t in &report.fault.per_input {
        assert!(
            t.robust_eps.is_some(),
            "correctly classified input {} must be robust at ε = 0",
            t.index
        );
    }
}

#[test]
fn pipeline_is_deterministic() {
    let cs = build(&CaseStudyConfig::small());
    let run = || {
        let r = pipeline::run(
            &cs.exact_net,
            &cs.float_net,
            &cs.train5,
            &cs.test5,
            &fast_config(),
        );
        (
            r.noise_tolerance(),
            r.adversarial.total_vectors(),
            r.bias.flows.clone(),
            r.render_text(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn bias_direction_follows_training_composition() {
    let cs = build(&CaseStudyConfig::small());
    let report = pipeline::run(
        &cs.exact_net,
        &cs.float_net,
        &cs.train5,
        &cs.test5,
        &fast_config(),
    );
    // The paper's core bias finding: flips into the majority class (L1)
    // dominate flips out of it.
    assert!(
        report.bias.flow(L0_AML, L1_ALL) >= report.bias.flow(L1_ALL, L0_AML),
        "flows: {:?}",
        report.bias.flows
    );
    // And the minority class is at least as fragile as the majority.
    assert!(
        report.bias.fragility_rate(L0_AML) >= report.bias.fragility_rate(L1_ALL),
        "fragility: {:?}",
        report.bias.per_class_fragility
    );
}
