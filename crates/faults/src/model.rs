//! The fault-model taxonomy (DESIGN.md §11).
//!
//! A [`FaultModel`] names a *set of faulted networks* derived from one
//! trained [`Network<Rational>`]: the verification question is whether
//! every network in the set still classifies a given input correctly.
//! Each model is given exact semantics here and an interval-weight
//! over-approximation in [`crate::region`]; the soundness lemma (why
//! independent per-parameter intervals cover correlated faults) lives
//! with the lift, DESIGN.md §11 carries the proof sketch.

use std::fmt;

use fannet_nn::Network;
use fannet_numeric::Rational;

/// A set of faulted parameter assignments of one network.
///
/// `Eq + Hash` so the engine can key fault-verdict cache entries by
/// `(input, label, model)` within a network-fingerprint namespace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Every weight and bias independently perturbed within a relative
    /// ball: `ŵ ∈ [w − ε·|w|, w + ε·|w|]` (weight drift, analog noise).
    WeightNoise {
        /// The relative radius ε ≥ 0.
        rel_eps: Rational,
    },
    /// One neuron's post-activation output forced to a constant (dead or
    /// saturated hardware unit). `layer` indexes the dense layers from
    /// the input side, `neuron` that layer's outputs.
    StuckAt {
        /// Dense-layer index (0 = first hidden layer).
        layer: usize,
        /// Output-neuron index within the layer.
        neuron: usize,
        /// The forced post-activation value.
        value: Rational,
    },
    /// Up to `budget` single-bit storage faults, each turning one
    /// parameter `w` into a sign flip `−w` or a neighbour-exponent flip
    /// `2w` / `w/2`. `budget == 0` is the fault-free network.
    BitFlips {
        /// Maximum number of simultaneously flipped parameters.
        budget: usize,
    },
    /// Deployment-time quantization of every parameter to the nearest
    /// rational with denominator `2^denom_bits`:
    /// `ŵ ∈ [w − e, w + e]` with `e = 2^-(denom_bits+1)` — the supremum
    /// of `fannet_nn::quantize::max_quantization_error` over all
    /// networks, which [`crate::FaultChecker`] uses as the sound
    /// per-parameter bound.
    Quantization {
        /// Denominator precision in bits.
        denom_bits: u32,
    },
}

impl FaultModel {
    /// The CLI/wire spelling of the model kind (parameters excluded).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultModel::WeightNoise { .. } => "weight-noise",
            FaultModel::StuckAt { .. } => "stuck-at",
            FaultModel::BitFlips { .. } => "bit-flips",
            FaultModel::Quantization { .. } => "quantization",
        }
    }

    /// The half-ulp worst-case rounding error of `denom_bits`-bit
    /// quantization, `2^-(denom_bits+1)` — the bound the
    /// [`FaultModel::Quantization`] lift charges per parameter.
    ///
    /// # Panics
    ///
    /// Panics if `denom_bits >= 126` (the bound's denominator would
    /// overflow `i128`).
    #[must_use]
    pub fn quantization_error_bound(denom_bits: u32) -> Rational {
        assert!(
            denom_bits < 126,
            "2^-({denom_bits}+1) underflows the i128 rational range"
        );
        Rational::new(1, 1i128 << (denom_bits + 1))
    }

    /// Validates the model against a concrete network.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a parameter is out of the
    /// model's domain (negative ε, stuck coordinates out of range,
    /// excessive quantization precision).
    pub fn validate(&self, net: &Network<Rational>) -> Result<(), String> {
        match self {
            FaultModel::WeightNoise { rel_eps } => {
                if rel_eps.is_negative() {
                    return Err(format!(
                        "weight-noise ε must be non-negative, got {rel_eps}"
                    ));
                }
            }
            FaultModel::StuckAt { layer, neuron, .. } => {
                let layers = net.layers().len();
                if *layer >= layers {
                    return Err(format!(
                        "stuck-at layer {layer} out of range for {layers} layers"
                    ));
                }
                let outputs = net.layers()[*layer].outputs();
                if *neuron >= outputs {
                    return Err(format!(
                        "stuck-at neuron {neuron} out of range for {outputs} neurons in layer {layer}"
                    ));
                }
            }
            FaultModel::BitFlips { .. } => {}
            FaultModel::Quantization { denom_bits } => {
                if *denom_bits >= 126 {
                    return Err(format!(
                        "quantization precision 2^{denom_bits} overflows the exact domain"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModel::WeightNoise { rel_eps } => write!(f, "weight-noise(eps={rel_eps})"),
            FaultModel::StuckAt {
                layer,
                neuron,
                value,
            } => write!(f, "stuck-at(layer={layer}, neuron={neuron}, value={value})"),
            FaultModel::BitFlips { budget } => write!(f, "bit-flips(budget={budget})"),
            FaultModel::Quantization { denom_bits } => {
                write!(f, "quantization(denom_bits={denom_bits})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn net() -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    #[test]
    fn names_and_display() {
        let m = FaultModel::WeightNoise {
            rel_eps: Rational::new(1, 50),
        };
        assert_eq!(m.name(), "weight-noise");
        assert_eq!(m.to_string(), "weight-noise(eps=1/50)");
        assert_eq!(FaultModel::BitFlips { budget: 2 }.name(), "bit-flips");
        assert_eq!(
            FaultModel::Quantization { denom_bits: 8 }.to_string(),
            "quantization(denom_bits=8)"
        );
        assert_eq!(
            FaultModel::StuckAt {
                layer: 0,
                neuron: 1,
                value: r(0),
            }
            .to_string(),
            "stuck-at(layer=0, neuron=1, value=0)"
        );
    }

    #[test]
    fn quantization_bound_is_half_ulp() {
        assert_eq!(
            FaultModel::quantization_error_bound(8),
            Rational::new(1, 512)
        );
        assert_eq!(
            FaultModel::quantization_error_bound(20),
            Rational::new(1, 1 << 21)
        );
    }

    #[test]
    #[should_panic(expected = "underflows")]
    fn quantization_bound_rejects_overflowing_precision() {
        let _ = FaultModel::quantization_error_bound(126);
    }

    #[test]
    fn validation_rejects_out_of_domain_models() {
        let n = net();
        assert!(FaultModel::WeightNoise {
            rel_eps: Rational::new(-1, 10)
        }
        .validate(&n)
        .unwrap_err()
        .contains("non-negative"));
        assert!(FaultModel::StuckAt {
            layer: 3,
            neuron: 0,
            value: r(0)
        }
        .validate(&n)
        .unwrap_err()
        .contains("layer 3 out of range"));
        assert!(FaultModel::StuckAt {
            layer: 0,
            neuron: 9,
            value: r(0)
        }
        .validate(&n)
        .unwrap_err()
        .contains("neuron 9 out of range"));
        assert!(FaultModel::Quantization { denom_bits: 127 }
            .validate(&n)
            .is_err());
        assert!(FaultModel::WeightNoise {
            rel_eps: Rational::new(1, 50)
        }
        .validate(&n)
        .is_ok());
        assert!(FaultModel::BitFlips { budget: 3 }.validate(&n).is_ok());
    }
}
