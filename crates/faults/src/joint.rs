//! Joint input-noise × weight-fault robustness: the product-domain
//! instantiation of the generic `fannet-search` core (DESIGN.md §12).
//!
//! FANNet asks how much *input* noise a verdict survives; PR 4's fault
//! subsystem asks the same about the network's *parameters*. Galloway
//! et al. ("Adversarial Examples as an Input-Fault Tolerance Problem")
//! and Duddu et al. ("Fault Tolerance of Neural Networks in Adversarial
//! Settings") argue these are one robustness question — this module
//! finally lets the repo pose it: *"is the classification of `x` robust
//! to ±δ input noise **and** ±ε weight noise simultaneously?"*
//!
//! The abstract state is a [`ProductRegion`] — a noise box × a fault
//! box. Both factors over-approximate independently, so the product's
//! concretization (every noise grid point paired with every faulted
//! network of the lift) contains every pair the claim quantifies over;
//! verdicts of the screening tiers therefore transfer exactly as in the
//! single-factor domains (the independence argument of DESIGN.md §12).
//! Unlike [`crate::FaultChecker::check_with_noise`], which only ever
//! splits the *fault* factor and goes `Unknown` once the input box is
//! too wide for one-shot propagation, the joint search refines **both**
//! factors — always the one that is currently least resolved by
//! normalized width — which is what makes non-trivial (δ, ε) frontiers
//! decidable.

use fannet_nn::Network;
use fannet_numeric::{Interval, Rational};
use fannet_search::{
    BoxDecision, Cascade, Classifier, SearchDomain, SearchOutcome, SearchStats, TierKind,
    TierTimer, ToleranceSearch,
};
use fannet_verify::bab::ScreeningTier;
use fannet_verify::noise::NoiseVector;
use fannet_verify::region::NoiseRegion;
use serde::{Deserialize, Serialize};

use crate::checker::{lift_is_exact, probe_concrete, validate_query, FaultCheckerConfig};
use crate::model::FaultModel;
use crate::propagate::{
    classify_box, classify_box_float, classify_box_zonotope, enclose_input, enclose_input_float,
    BoxVerdict,
};
use crate::region::{FaultRegion, FaultedNetwork};

pub use fannet_search::ToleranceResult as JointTolerance;

/// A box of the joint search: every noise vector of `noise` paired with
/// every faulted network of `fault`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductRegion {
    /// The input-noise factor (integer-percent grid box).
    pub noise: NoiseRegion,
    /// The weight-fault factor (per-parameter interval box).
    pub fault: FaultRegion,
}

impl ProductRegion {
    /// Builds the product of the two factors.
    #[must_use]
    pub fn new(noise: NoiseRegion, fault: FaultRegion) -> Self {
        ProductRegion { noise, fault }
    }

    /// `true` when both factors are single points — propagation is then
    /// a concrete forward pass and the region cannot be split.
    #[must_use]
    pub fn is_point(&self) -> bool {
        self.noise.is_point() && self.fault.is_point()
    }

    /// Normalized width of the noise factor: the widest per-node range
    /// as a fraction of the nominal value (`(hi − lo) / 100`, since
    /// noise bounds are integer percents). Zero for point regions.
    #[must_use]
    pub fn noise_normalized_width(&self) -> Rational {
        self.noise
            .ranges()
            .iter()
            .map(|&(lo, hi)| Rational::new(i128::from(hi) - i128::from(lo), 100))
            .max()
            .unwrap_or(Rational::from_integer(0))
    }

    /// Splits the factor that is currently *least resolved*: the
    /// normalized widths of the two factors — widest noise range over
    /// the nominal 100 % vs. widest relative parameter interval
    /// ([`FaultRegion::normalized_width`]) — are compared directly, and
    /// the wider factor bisects (its own widest dimension, as in the
    /// single-factor domains). Ties prefer the noise factor, and a
    /// point factor falls back to the other, so the choice is a pure
    /// deterministic function of the region — the search stays
    /// scheduling-independent and cache-replayable (DESIGN.md §12).
    ///
    /// Returns `None` when both factors are points.
    #[must_use]
    pub fn split(&self) -> Option<(ProductRegion, ProductRegion)> {
        let split_noise = || {
            self.noise.split().map(|(a, b)| {
                (
                    ProductRegion::new(a, self.fault.clone()),
                    ProductRegion::new(b, self.fault.clone()),
                )
            })
        };
        let split_fault = || {
            self.fault.split().map(|(a, b)| {
                (
                    ProductRegion::new(self.noise.clone(), a),
                    ProductRegion::new(self.noise.clone(), b),
                )
            })
        };
        if self.noise_normalized_width() >= self.fault.normalized_width() {
            split_noise().or_else(split_fault)
        } else {
            split_fault().or_else(split_noise)
        }
    }

    /// Exact interval enclosure of every output over the whole product
    /// (the exact tier's transformer, exposed for enclosure tests).
    #[must_use]
    pub fn output_intervals(&self, x: &[Rational]) -> Vec<Interval> {
        self.fault.output_intervals(&enclose_input(x, &self.noise))
    }
}

/// A concrete, in-model joint misclassification witness: one noise grid
/// point plus one faulted network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JointWitness {
    /// The witnessing noise vector (integer percents).
    pub noise: NoiseVector,
    /// Human-readable description of the faulted assignment.
    pub description: String,
    /// Exact output activations of the faulted network on the noisy
    /// input.
    pub outputs: Vec<Rational>,
    /// The (wrong) label predicted.
    pub predicted: usize,
    /// The expected label.
    pub expected: usize,
}

/// Outcome of a joint check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JointOutcome {
    /// Proof: every (noise vector, faulted network) pair keeps the
    /// label.
    Robust,
    /// Proof by witness: a concrete in-model pair flips it.
    Vulnerable(JointWitness),
    /// The budgeted search could not decide (sound in both directions).
    Unknown,
}

impl JointOutcome {
    /// `true` for [`JointOutcome::Robust`].
    #[must_use]
    pub fn is_robust(&self) -> bool {
        matches!(self, JointOutcome::Robust)
    }

    /// The witness, if any.
    #[must_use]
    pub fn witness(&self) -> Option<&JointWitness> {
        match self {
            JointOutcome::Vulnerable(w) => Some(w),
            _ => None,
        }
    }

    /// The JSONL wire spelling of the verdict.
    #[must_use]
    pub fn wire_name(&self) -> &'static str {
        match self {
            JointOutcome::Robust => "robust",
            JointOutcome::Vulnerable(_) => "vulnerable",
            JointOutcome::Unknown => "unknown",
        }
    }
}

/// A resident joint checker for one trained network.
///
/// Reuses [`FaultCheckerConfig`]: the same screening tiers route each
/// product box, the same box/depth budgets bound the (continuous, hence
/// incomplete) search. Deterministic throughout, so `fannet-engine`
/// replays cached joint verdicts bit-identically.
#[derive(Debug, Clone)]
pub struct JointChecker {
    net: Network<Rational>,
    config: FaultCheckerConfig,
    /// Worker-thread count of the budgeted search (a host property —
    /// deliberately not part of the serialized config).
    threads: usize,
}

impl JointChecker {
    /// Builds the checker; admissibility is checked per query (see
    /// [`crate::FaultChecker::new`] for the rationale).
    #[must_use]
    pub fn new(net: Network<Rational>, config: FaultCheckerConfig) -> Self {
        JointChecker {
            net,
            config,
            threads: 1,
        }
    }

    /// Overrides the worker-thread count (`0` is clamped to 1): the
    /// budgeted search speculates in parallel and replays
    /// deterministically, so every joint verdict, witness and counter
    /// is bit-identical to the serial search at any thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The verified network.
    #[must_use]
    pub fn network(&self) -> &Network<Rational> {
        &self.net
    }

    /// The checker's configuration.
    #[must_use]
    pub fn config(&self) -> &FaultCheckerConfig {
        &self.config
    }

    /// Decides the joint claim: every noise vector of `noise` and every
    /// faulted network of `model` together keep `label`.
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch, out-of-range label, or an
    /// out-of-domain model.
    pub fn check(
        &self,
        x: &[Rational],
        label: usize,
        noise: &NoiseRegion,
        model: &FaultModel,
    ) -> Result<(JointOutcome, SearchStats), String> {
        self.check_timed(x, label, noise, model, TierTimer::disabled())
    }

    /// [`JointChecker::check`] with an explicit [`TierTimer`]: an
    /// enabled timer additionally books per-tier nanoseconds into the
    /// returned stats (DESIGN.md §14); verdict, witness and counters
    /// are bit-identical to the untimed call.
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch, out-of-range label, or an
    /// out-of-domain model.
    pub fn check_timed(
        &self,
        x: &[Rational],
        label: usize,
        noise: &NoiseRegion,
        model: &FaultModel,
        timer: TierTimer,
    ) -> Result<(JointOutcome, SearchStats), String> {
        validate_query(&self.net, x, label, noise)?;
        let fault_root = FaultRegion::lift(&self.net, model)?;
        let mut stats = SearchStats::default();

        // Concrete probes at the zero-noise point (when it is part of
        // the claim): the fault probes of the single-factor checker,
        // lifted to joint witnesses.
        if noise.contains(&NoiseVector::zero(x.len())) {
            if let Some(w) = probe_concrete(&self.net, x, label, model, &fault_root, &mut stats)? {
                return Ok((
                    JointOutcome::Vulnerable(joint_witness(NoiseVector::zero(x.len()), w)),
                    stats,
                ));
            }
        }
        // Noise-corner probes: the all-lower / all-upper noise corners
        // against an in-model assignment (identity, or the stuck-at
        // region's only member) — cheap joint-vulnerability detection
        // when the input box alone already flips the label.
        if let Some(w) =
            self.probe_noise_corners(x, label, noise, model, &fault_root, &mut stats)?
        {
            return Ok((JointOutcome::Vulnerable(w), stats));
        }

        let tiers = JointTiers::new(x, label, self.config.screening);
        let domain = JointQuery {
            x,
            label,
            lift_is_exact: lift_is_exact(model),
            max_depth: self.config.max_depth,
            cascade: tiers.cascade().with_timer(timer),
        };
        let root = ProductRegion::new(noise.clone(), fault_root);
        let (outcome, search_stats) = fannet_search::search_with_threads(
            &domain,
            root,
            self.threads,
            Some(self.config.max_boxes),
        );
        stats.merge(&search_stats);
        Ok((
            match outcome {
                SearchOutcome::Proven => JointOutcome::Robust,
                SearchOutcome::Witness(w) => JointOutcome::Vulnerable(w),
                SearchOutcome::Undecided => JointOutcome::Unknown,
            },
            stats,
        ))
    }

    /// Evaluates an in-model assignment at the noise box's lower and
    /// upper corner grid points.
    fn probe_noise_corners(
        &self,
        x: &[Rational],
        label: usize,
        noise: &NoiseRegion,
        model: &FaultModel,
        fault_root: &FaultRegion,
        stats: &mut SearchStats,
    ) -> Result<Option<JointWitness>, String> {
        // Stuck-at's lift has a single member (the region itself); the
        // other models all contain the fault-free identity network.
        let (assignment, description) = match model {
            FaultModel::StuckAt {
                layer,
                neuron,
                value,
            } => (
                fault_root.midpoint(),
                format!("neuron {neuron} of layer {layer} stuck at {value}"),
            ),
            _ => (
                FaultedNetwork::from_network(&self.net),
                "fault-free network".to_string(),
            ),
        };
        let corners = [
            NoiseVector::new(noise.ranges().iter().map(|&(lo, _)| lo).collect()),
            NoiseVector::new(noise.ranges().iter().map(|&(_, hi)| hi).collect()),
        ];
        for nv in corners {
            stats.concrete_evals += 1;
            let outputs = assignment.forward(&nv.apply(x))?;
            let predicted = fannet_tensor::vector::argmax(&outputs).expect("outputs non-empty");
            if predicted != label {
                return Ok(Some(JointWitness {
                    noise: nv,
                    description: description.clone(),
                    outputs,
                    predicted,
                    expected: label,
                }));
            }
        }
        Ok(None)
    }

    /// Joint tolerance at a fixed noise radius: the largest
    /// `ε = k/denom` the bisection **certifies** jointly robust with
    /// `±delta`% input noise. `Unknown` probes count as failures, so
    /// the result is a sound lower bound; at `delta = 0` this
    /// degenerates to the plain weight-noise fault tolerance.
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch or out-of-range label.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is outside `[0, 100]` or the grid is invalid.
    pub fn tolerance(
        &self,
        x: &[Rational],
        label: usize,
        delta: i64,
        search: &ToleranceSearch,
    ) -> Result<(JointTolerance, SearchStats), String> {
        self.tolerance_timed(x, label, delta, search, TierTimer::disabled())
    }

    /// [`JointChecker::tolerance`] with an explicit [`TierTimer`] (see
    /// [`JointChecker::check_timed`]); probe timings accumulate across
    /// the whole bisection.
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch or out-of-range label.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is outside `[0, 100]` or the grid is invalid.
    pub fn tolerance_timed(
        &self,
        x: &[Rational],
        label: usize,
        delta: i64,
        search: &ToleranceSearch,
        timer: TierTimer,
    ) -> Result<(JointTolerance, SearchStats), String> {
        let noise = NoiseRegion::symmetric(delta, x.len());
        let mut stats = SearchStats::default();
        let tolerance = fannet_search::tolerance_search(search, |eps| {
            let (outcome, probe_stats) = self.check_timed(
                x,
                label,
                &noise,
                &FaultModel::WeightNoise { rel_eps: eps },
                timer,
            )?;
            stats.merge(&probe_stats);
            Ok::<_, String>(outcome.is_robust())
        })?;
        Ok((tolerance, stats))
    }
}

/// Lifts a fault witness found at a concrete noise vector to a joint
/// witness.
fn joint_witness(noise: NoiseVector, w: crate::checker::FaultWitness) -> JointWitness {
    JointWitness {
        noise,
        description: w.description,
        outputs: w.outputs,
        predicted: w.predicted,
        expected: w.expected,
    }
}

// ---------------------------------------------------------------------------
// The product-domain search
// ---------------------------------------------------------------------------

/// Float-interval tier over product boxes: the noise factor changes per
/// box, so the input enclosure is recomputed per classification (unlike
/// the fixed-noise fault cascade).
struct JointIntervalScreen<'a> {
    x: &'a [Rational],
    label: usize,
}

impl Classifier<ProductRegion> for JointIntervalScreen<'_> {
    fn tier(&self) -> TierKind {
        TierKind::Interval
    }
    fn classify(&self, region: &ProductRegion) -> BoxVerdict {
        let enclosure = enclose_input_float(self.x, &region.noise);
        classify_box_float(&region.fault.float_outputs(&enclosure), self.label)
    }
}

/// Zonotope tier over product boxes: shared symbols per input node and
/// per faulted parameter, so correlations cancel in output differences
/// across *both* factors.
struct JointZonotopeScreen<'a> {
    x: &'a [Rational],
    label: usize,
}

impl Classifier<ProductRegion> for JointZonotopeScreen<'_> {
    fn tier(&self) -> TierKind {
        TierKind::Zonotope
    }
    fn classify(&self, region: &ProductRegion) -> BoxVerdict {
        classify_box_zonotope(
            &region.fault.zonotope_outputs(self.x, &region.noise),
            self.label,
        )
    }
}

/// Exact interval tier over product boxes — always last.
struct JointExactTier<'a> {
    x: &'a [Rational],
    label: usize,
}

impl Classifier<ProductRegion> for JointExactTier<'_> {
    fn tier(&self) -> TierKind {
        TierKind::Exact
    }
    fn classify(&self, region: &ProductRegion) -> BoxVerdict {
        classify_box(&region.output_intervals(self.x), self.label)
    }
}

/// Per-query owners of the joint cascade's tiers.
struct JointTiers<'a> {
    interval: Option<JointIntervalScreen<'a>>,
    zonotope: Option<JointZonotopeScreen<'a>>,
    exact: JointExactTier<'a>,
}

impl<'a> JointTiers<'a> {
    fn new(x: &'a [Rational], label: usize, screening: ScreeningTier) -> Self {
        JointTiers {
            interval: screening
                .uses_interval()
                .then_some(JointIntervalScreen { x, label }),
            zonotope: screening
                .uses_zonotope()
                .then_some(JointZonotopeScreen { x, label }),
            exact: JointExactTier { x, label },
        }
    }

    fn cascade(&self) -> Cascade<'_, ProductRegion> {
        let mut tiers: Vec<&dyn Classifier<ProductRegion>> = Vec::new();
        if let Some(screen) = &self.interval {
            tiers.push(screen);
        }
        if let Some(screen) = &self.zonotope {
            tiers.push(screen);
        }
        tiers.push(&self.exact);
        Cascade::new(tiers)
    }
}

/// The product-domain instantiation of [`SearchDomain`].
struct JointQuery<'a> {
    x: &'a [Rational],
    label: usize,
    lift_is_exact: bool,
    max_depth: u32,
    cascade: Cascade<'a, ProductRegion>,
}

impl SearchDomain for JointQuery<'_> {
    type Region = ProductRegion;
    type Witness = JointWitness;
    type Prepared = ();
    type Scratch = ();

    fn decide(
        &self,
        region: &ProductRegion,
        depth: u32,
        _scratch: &mut (),
        stats: &mut SearchStats,
    ) -> BoxDecision<ProductRegion, JointWitness> {
        match self.cascade.classify(region, stats) {
            BoxVerdict::AlwaysCorrect => {
                stats.pruned_correct += 1;
                BoxDecision::Pruned
            }
            BoxVerdict::AlwaysWrong => {
                if self.lift_is_exact || region.fault.is_point() {
                    stats.proved_wrong += 1;
                    // Any (grid point, in-model assignment) pair of the
                    // box witnesses; take the canonically-first noise
                    // grid point with the fault midpoint (legal — the
                    // fault box is entirely in-model here).
                    let faulted = region.fault.midpoint();
                    let nv = region
                        .noise
                        .iter_points()
                        .next()
                        .expect("noise regions are non-empty");
                    stats.concrete_evals += 1;
                    let outputs = faulted
                        .forward(&nv.apply(self.x))
                        .expect("widths validated at query entry");
                    let predicted =
                        fannet_tensor::vector::argmax(&outputs).expect("outputs non-empty");
                    assert_ne!(
                        predicted, self.label,
                        "interval proof of misclassification is sound"
                    );
                    return BoxDecision::UniformWitness(JointWitness {
                        noise: nv,
                        description: "joint box proven uniformly misclassifying \
                                      (midpoint assignment)"
                            .to_string(),
                        outputs,
                        predicted,
                        expected: self.label,
                    });
                }
                // Combinatorial lift: a uniformly-wrong box proves
                // nothing (it may contain no legal assignment) — the
                // outcome is pinned Unknown, as in the fault domain.
                BoxDecision::AbandonAll
            }
            BoxVerdict::Unknown => {
                if depth >= self.max_depth {
                    return if self.lift_is_exact {
                        BoxDecision::Abandon
                    } else {
                        BoxDecision::AbandonAll
                    };
                }
                match region.split() {
                    Some((a, b)) => {
                        stats.splits += 1;
                        BoxDecision::Split(a, b)
                    }
                    // Both factors are points: the exact tier computes
                    // point intervals and always decides, so this is
                    // unreachable in practice; abandon defensively.
                    None => BoxDecision::Abandon,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{FaultChecker, FaultOutcome};
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn rq(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// label 0 iff x0 ≥ x1.
    fn comparator() -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    fn checker() -> JointChecker {
        JointChecker::new(comparator(), FaultCheckerConfig::default())
    }

    /// Closed form for the comparator under joint noise: label 0 of
    /// `(x0, x1)` survives ±δ input noise and ±ε weight noise iff
    /// `x0·(1−δ/100)·(1−ε) ≥ x1·(1+δ/100)·(1+ε)` (worst corners).
    fn jointly_robust(x0: i128, x1: i128, delta: i64, eps: Rational) -> bool {
        let d = Rational::new(i128::from(delta), 100);
        let lo = r(x0) * (r(1) - d) * (r(1) - eps);
        let hi = r(x1) * (r(1) + d) * (r(1) + eps);
        lo >= hi
    }

    #[test]
    fn joint_verdicts_match_the_analytic_corner_condition() {
        let c = checker();
        let x = [r(100), r(82)];
        for delta in [0i64, 2, 5, 8] {
            for eps_numer in [0i128, 2, 5, 8, 12] {
                let eps = rq(eps_numer, 100);
                let noise = NoiseRegion::symmetric(delta, 2);
                let (out, stats) = c
                    .check(&x, 0, &noise, &FaultModel::WeightNoise { rel_eps: eps })
                    .unwrap();
                let expected = jointly_robust(100, 82, delta, eps);
                // The budgeted search may honestly answer Unknown on
                // razor-thin margins; it must decide comfortable ones —
                // robust with slack, or vulnerable already at the
                // zero-noise probe corners.
                let comfortably_robust = jointly_robust(100, 82, delta + 4, eps + rq(4, 100));
                let vulnerable_at_zero_noise = !jointly_robust(100, 82, 0, eps);
                match &out {
                    JointOutcome::Robust => {
                        assert!(expected, "claimed Robust at δ={delta} ε={eps}: {stats:?}")
                    }
                    JointOutcome::Vulnerable(w) => {
                        assert!(!expected, "claimed Vulnerable at δ={delta} ε={eps}");
                        assert_eq!(w.expected, 0);
                        assert_ne!(w.predicted, 0);
                        assert!(noise.contains(&w.noise), "witness noise inside the box");
                    }
                    JointOutcome::Unknown => {
                        assert!(
                            !comfortably_robust && !vulnerable_at_zero_noise,
                            "comfortable joint query must decide at δ={delta} ε={eps}: {stats:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn threaded_joint_checks_are_bit_identical_to_serial() {
        let x = [r(100), r(82)];
        for screening in [ScreeningTier::None, ScreeningTier::Cascade] {
            let config = FaultCheckerConfig::default().with_screening(screening);
            let serial = JointChecker::new(comparator(), config.clone());
            for delta in [0i64, 3, 6] {
                for eps_numer in [2i128, 8, 12] {
                    let noise = NoiseRegion::symmetric(delta, 2);
                    let model = FaultModel::WeightNoise {
                        rel_eps: rq(eps_numer, 100),
                    };
                    let (want, want_stats) = serial.check(&x, 0, &noise, &model).unwrap();
                    for threads in [2usize, 4] {
                        let threaded =
                            JointChecker::new(comparator(), config.clone()).with_threads(threads);
                        let (got, got_stats) = threaded.check(&x, 0, &noise, &model).unwrap();
                        assert_eq!(
                            got, want,
                            "verdict at δ={delta} ε={eps_numer}/100 threads={threads}"
                        );
                        assert_eq!(
                            got_stats, want_stats,
                            "stats at δ={delta} ε={eps_numer}/100 threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_delta_matches_the_plain_fault_checker() {
        let joint = checker();
        let fault = FaultChecker::new(comparator(), FaultCheckerConfig::default());
        let x = [r(100), r(82)];
        let zero = NoiseRegion::symmetric(0, 2);
        for eps_numer in [0i128, 3, 9, 11, 20] {
            let model = FaultModel::WeightNoise {
                rel_eps: rq(eps_numer, 100),
            };
            let (joint_out, _) = joint.check(&x, 0, &zero, &model).unwrap();
            let (fault_out, _) = fault.check(&x, 0, &model).unwrap();
            match (&joint_out, &fault_out) {
                (JointOutcome::Robust, FaultOutcome::Robust)
                | (JointOutcome::Vulnerable(_), FaultOutcome::Vulnerable(_))
                | (JointOutcome::Unknown, FaultOutcome::Unknown) => {}
                other => panic!("δ=0 joint/fault verdicts diverge at ε={eps_numer}/100: {other:?}"),
            }
        }
    }

    /// Both outputs read the same hidden neuron (`out0 = h + 5`,
    /// `out1 = h`), so the claim is trivially robust in truth — but
    /// interval propagation decorrelates `h`, and once the input box is
    /// wide the *fault* checker cannot recover: it only ever splits the
    /// fault factor ([`FaultChecker::check_with_noise`]), which never
    /// shrinks the input-induced width. The joint search splits the
    /// noise factor too and proves the same query.
    #[test]
    fn joint_search_decides_where_single_factor_splitting_cannot() {
        let shared = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(3), r(1)]]).unwrap(),
            vec![r(0)],
            Activation::Identity,
        )
        .unwrap();
        let split = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(1)], vec![r(1)]]).unwrap(),
            vec![r(5), r(0)],
            Activation::Identity,
        )
        .unwrap();
        let net = Network::new(vec![shared, split], Readout::MaxPool).unwrap();
        let x = [r(10), r(10)];
        let noise = NoiseRegion::symmetric(10, 2);
        let model = FaultModel::WeightNoise {
            rel_eps: rq(1, 200),
        };
        // Screening off isolates the split policies (the zonotope tier
        // would decide both queries at the root).
        let config = FaultCheckerConfig::default().with_screening(ScreeningTier::None);
        let fault = FaultChecker::new(net.clone(), config.clone());
        let (single, _) = fault.check_with_noise(&x, 0, &noise, &model).unwrap();
        assert_eq!(
            single,
            FaultOutcome::Unknown,
            "fault-factor-only splitting must fail on an input-wide box"
        );
        let joint = JointChecker::new(net, config);
        let (out, stats) = joint.check(&x, 0, &noise, &model).unwrap();
        assert_eq!(out, JointOutcome::Robust, "{stats:?}");
        assert!(
            stats.splits > 0,
            "the proof must need refinement: {stats:?}"
        );
    }

    #[test]
    fn product_split_refines_the_least_resolved_factor() {
        let net = comparator();
        // fw = 2·(1/10) = 1/5 per unit weight; nw = 8/100 — the fault
        // factor is less resolved, so it splits and the noise is shared.
        let fault =
            FaultRegion::lift(&net, &FaultModel::WeightNoise { rel_eps: rq(1, 10) }).unwrap();
        let root = ProductRegion::new(NoiseRegion::symmetric(4, 2), fault.clone());
        assert!(root.noise_normalized_width() < root.fault.normalized_width());
        let (a, b) = root.split().expect("root splits");
        assert_eq!(a.noise, root.noise);
        assert_eq!(b.noise, root.noise);
        assert_ne!(a.fault, root.fault);
        // nw = 40/100 ≫ 1/5 — the noise factor splits, the fault box is
        // shared, and the split partitions the noise grid.
        let wide = ProductRegion::new(NoiseRegion::symmetric(20, 2), fault.clone());
        let (c, d) = wide.split().expect("root splits");
        assert_eq!(c.fault, wide.fault);
        assert_eq!(d.fault, wide.fault);
        assert_ne!(c.noise, wide.noise);
        assert_eq!(
            c.noise.point_count() + d.noise.point_count(),
            wide.noise.point_count()
        );
        // Exact tie (nw = fw = 1/5): the noise factor wins — the
        // documented deterministic tie-break.
        let tied = ProductRegion::new(NoiseRegion::symmetric(10, 2), fault.clone());
        assert_eq!(tied.noise_normalized_width(), tied.fault.normalized_width());
        let (e, f) = tied.split().expect("root splits");
        assert_eq!(e.fault, tied.fault);
        assert_eq!(f.fault, tied.fault);
        assert_ne!(e.noise, tied.noise);
        // A point noise factor falls back to the fault factor.
        let point = ProductRegion::new(NoiseRegion::symmetric(0, 2), fault);
        let (g, _) = point.split().expect("fault factor still splits");
        assert_eq!(g.noise, point.noise);
        assert_ne!(g.fault, point.fault);
        assert!(!point.is_point());
        // Both factors point: no split.
        let frozen = ProductRegion::new(
            NoiseRegion::symmetric(0, 2),
            FaultRegion::lift(
                &net,
                &FaultModel::WeightNoise {
                    rel_eps: Rational::ZERO,
                },
            )
            .unwrap(),
        );
        assert!(frozen.is_point());
        assert!(frozen.split().is_none());
    }

    #[test]
    fn product_split_choice_is_a_pure_function_of_the_region() {
        // Down an entire refinement cascade the chosen factor must (a)
        // be reproducible call-to-call and (b) always be the one with
        // the maximal normalized width (modulo point fallback) — the
        // invariance that keeps budgeted replay deterministic.
        let net = comparator();
        let fault =
            FaultRegion::lift(&net, &FaultModel::WeightNoise { rel_eps: rq(1, 10) }).unwrap();
        let mut frontier = vec![ProductRegion::new(NoiseRegion::symmetric(6, 2), fault)];
        for _ in 0..5 {
            let mut next = Vec::new();
            for region in &frontier {
                let Some((a, b)) = region.split() else {
                    continue;
                };
                assert_eq!(
                    region.split(),
                    Some((a.clone(), b.clone())),
                    "split must be reproducible"
                );
                let split_noise = a.fault == region.fault;
                let nw = region.noise_normalized_width();
                let fw = region.fault.normalized_width();
                if split_noise {
                    assert!(nw >= fw || region.fault.is_point());
                } else {
                    assert!(fw > nw || region.noise.is_point());
                }
                next.push(a);
                next.push(b);
            }
            frontier = next;
        }
        assert!(!frontier.is_empty());
    }

    #[test]
    fn enclosure_covers_sampled_noise_fault_pairs_through_splits() {
        // The product enclosure must cover every (grid point, corner /
        // midpoint assignment) pair, at the root and down a few splits.
        let net = comparator();
        let x = [r(100), r(82)];
        let fault =
            FaultRegion::lift(&net, &FaultModel::WeightNoise { rel_eps: rq(1, 20) }).unwrap();
        let mut frontier = vec![ProductRegion::new(NoiseRegion::symmetric(3, 2), fault)];
        for depth in 0..4u32 {
            let mut next = Vec::new();
            for region in &frontier {
                let enclosure = region.output_intervals(&x);
                for nv in region.noise.iter_points() {
                    let noisy = nv.apply(&x);
                    for assignment in [
                        region.fault.corner_lo(),
                        region.fault.corner_hi(),
                        region.fault.midpoint(),
                    ] {
                        let out = assignment.forward(&noisy).unwrap();
                        for (iv, v) in enclosure.iter().zip(&out) {
                            assert!(
                                iv.contains(*v),
                                "output {v} of noise {nv} escapes {iv} at depth {depth}"
                            );
                        }
                    }
                }
                if let Some((a, b)) = region.split() {
                    next.push(a);
                    next.push(b);
                }
            }
            if !next.is_empty() {
                frontier = next;
            }
        }
    }

    #[test]
    fn joint_tolerance_shrinks_as_delta_grows() {
        let c = checker();
        let x = [r(100), r(82)];
        let search = ToleranceSearch::new(100, 25);
        let mut last = None;
        for delta in [0i64, 2, 5, 8] {
            let (tol, _) = c.tolerance(&x, 0, delta, &search).unwrap();
            let eps = tol.robust_eps.expect("correctly classified input");
            // Certified: the reported ε really is jointly robust.
            assert!(
                jointly_robust(100, 82, delta, eps),
                "certified ε={eps} at δ={delta} violates the corner condition"
            );
            if let Some(prev) = last {
                assert!(eps <= prev, "frontier must be monotone: δ={delta}");
            }
            last = Some(eps);
        }
        // δ = 0 reproduces the plain fault tolerance.
        let fault = FaultChecker::new(comparator(), FaultCheckerConfig::default());
        let (plain, _) = fault.tolerance(&x, 0, &search).unwrap();
        let (joint0, _) = c.tolerance(&x, 0, 0, &search).unwrap();
        assert_eq!(joint0.robust_eps, plain.robust_eps);
    }

    #[test]
    fn misclassified_input_fails_at_zero() {
        let c = checker();
        let (out, _) = c
            .check(
                &[r(82), r(100)],
                0,
                &NoiseRegion::symmetric(2, 2),
                &FaultModel::WeightNoise { rel_eps: rq(1, 50) },
            )
            .unwrap();
        let w = out.witness().expect("identity member already flips");
        assert!(w.description.contains("fault-free"), "{w:?}");
        assert_eq!(w.noise, NoiseVector::zero(2));
    }

    #[test]
    fn screening_tiers_agree_on_joint_verdicts() {
        let x = [r(100), r(82)];
        let noise = NoiseRegion::symmetric(3, 2);
        for eps in [rq(1, 100), rq(4, 100), rq(8, 100), rq(15, 100)] {
            let model = FaultModel::WeightNoise { rel_eps: eps };
            let mut verdicts = Vec::new();
            for tier in ScreeningTier::ALL {
                let c = JointChecker::new(
                    comparator(),
                    FaultCheckerConfig::default().with_screening(tier),
                );
                let (out, _) = c.check(&x, 0, &noise, &model).unwrap();
                verdicts.push((tier, out.wire_name()));
            }
            // The incomplete search may answer Unknown under a weaker
            // tier, but decided verdicts must never contradict.
            let decided: Vec<_> = verdicts.iter().filter(|(_, v)| *v != "unknown").collect();
            for window in decided.windows(2) {
                assert_eq!(
                    window[0].1, window[1].1,
                    "contradictory proofs across tiers at ε={eps}: {verdicts:?}"
                );
            }
        }
    }

    #[test]
    fn validation_and_sigmoid_errors_are_contained() {
        let c = checker();
        let model = FaultModel::WeightNoise { rel_eps: rq(1, 50) };
        assert!(c
            .check(&[r(1)], 0, &NoiseRegion::symmetric(1, 1), &model)
            .is_err());
        assert!(c
            .check(&[r(1), r(2)], 7, &NoiseRegion::symmetric(1, 2), &model)
            .is_err());
        let sigmoid = Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Sigmoid,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap();
        let c = JointChecker::new(sigmoid, FaultCheckerConfig::default());
        let err = c
            .check(&[r(1), r(2)], 0, &NoiseRegion::symmetric(1, 2), &model)
            .unwrap_err();
        assert!(err.contains("piecewise-linear"), "{err}");
    }
}
