//! Interval-weight propagation: pushing a (point or boxed) input through
//! a [`FaultRegion`] (DESIGN.md §11).
//!
//! Three tiers mirror the input-noise cascade of `fannet-verify`,
//! cheapest first:
//!
//! 1. **float** ([`FaultRegion::float_outputs`]) — outward-rounded
//!    [`FloatInterval`] weights via the audited
//!    [`FloatInterval::mul_interval`]; every stored interval encloses the
//!    exact one, every transformer is outward-rounded, so verdicts are
//!    sound proofs exactly as in the input-noise float tier.
//! 2. **zonotope** ([`FaultRegion::zonotope_outputs`]) — every *faulted*
//!    parameter carries **its own shared noise symbol**: the exact
//!    deviation `δ = ŵ − center` is encoded as `radius·ε_w` plus an error
//!    residue `|δ|·(deviation of the activation from its center)`. The
//!    same `ε_w` valuation witnesses the weight everywhere its effect
//!    flows, so correlated fault contributions **cancel** in the pairwise
//!    output differences [`classify_box_zonotope`] decides on — the
//!    fault-space analogue of PR 3's input-correlation cancellation.
//! 3. **exact** ([`FaultRegion::output_intervals`]) — exact rational
//!    interval arithmetic with [`Interval::mul_interval`] per weight
//!    (weights are now intervals, not constants, so the `scale` fast path
//!    of the input-noise propagator no longer applies).
//!
//! Soundness of every tier: for any [`FaultedNetwork`] drawn from the
//! region and any noise vector in the input box, each neuron's concrete
//! value lies inside the propagated enclosure (interval transformers are
//! inclusion-monotone; the zonotope transformer is witnessed per the
//! [`AffineForm`] contract). Cross-validated by sampling in
//! `tests/fault_cross_validation.rs`.

use fannet_numeric::affine::{enclose_rational, ulp_gap};
use fannet_numeric::{AffineForm, FloatInterval, Interval, Rational};
use fannet_verify::propagate::float_factor;
use fannet_verify::region::NoiseRegion;
use fannet_verify::zonotope::{input_form, relu_form};

use crate::region::{FaultRegion, FaultedNetwork};

// Re-exported classification entry points: the fault tiers reuse the
// input-noise tie-break semantics verbatim.
pub use fannet_verify::propagate::{classify_box, classify_box_float, BoxVerdict};
pub use fannet_verify::zonotope::classify_box_zonotope;

/// Exact interval enclosure of input `x` under every noise vector of
/// `noise` — `Xₖ = xₖ · (100 + [loₖ, hiₖ])/100`; a zero-noise region
/// yields point intervals.
///
/// # Panics
///
/// Panics if widths disagree.
#[must_use]
pub fn enclose_input(x: &[Rational], noise: &NoiseRegion) -> Vec<Interval> {
    assert_eq!(x.len(), noise.nodes(), "input/noise width mismatch");
    x.iter()
        .enumerate()
        .map(|(k, &xk)| Interval::point(xk).mul_interval(&noise.factor_interval(k)))
        .collect()
}

/// Outward-rounded float enclosure of the same input box.
///
/// # Panics
///
/// Panics if widths disagree.
#[must_use]
pub fn enclose_input_float(x: &[Rational], noise: &NoiseRegion) -> Vec<FloatInterval> {
    assert_eq!(x.len(), noise.nodes(), "input/noise width mismatch");
    x.iter()
        .zip(noise.ranges())
        .map(|(&xk, &(lo, hi))| {
            FloatInterval::from_rational_point(xk).mul_interval(&float_factor(lo, hi))
        })
        .collect()
}

impl FaultRegion {
    /// Exact interval-weight propagation: output enclosures covering
    /// every faulted network in the region on every input of the box.
    ///
    /// # Panics
    ///
    /// Panics if `x_enclosure` does not match the input width.
    #[must_use]
    pub fn output_intervals(&self, x_enclosure: &[Interval]) -> Vec<Interval> {
        assert_eq!(x_enclosure.len(), self.inputs, "input width mismatch");
        let mut acts = x_enclosure.to_vec();
        for layer in &self.layers {
            let mut next = Vec::with_capacity(layer.rows);
            for r in 0..layer.rows {
                let row = &layer.weights[r * layer.cols..(r + 1) * layer.cols];
                let mut z = layer.biases[r];
                for (w, a) in row.iter().zip(&acts) {
                    z = z + w.mul_interval(a);
                }
                next.push(apply_exact(layer.activation, z));
            }
            for &(neuron, value) in &layer.stuck {
                next[neuron] = Interval::point(value);
            }
            acts = next;
        }
        acts
    }

    /// Float-tier propagation (the cheap screen): same enclosure
    /// guarantee as [`FaultRegion::output_intervals`], computed entirely
    /// in outward-rounded `f64` interval arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `x_enclosure` does not match the input width.
    #[must_use]
    pub fn float_outputs(&self, x_enclosure: &[FloatInterval]) -> Vec<FloatInterval> {
        assert_eq!(x_enclosure.len(), self.inputs, "input width mismatch");
        let mut acts = x_enclosure.to_vec();
        for layer in &self.layers {
            let mut next = Vec::with_capacity(layer.rows);
            for r in 0..layer.rows {
                let row = &layer.weights[r * layer.cols..(r + 1) * layer.cols];
                let mut z = float_iv(&layer.biases[r]);
                for (w, a) in row.iter().zip(&acts) {
                    z = z.add(&float_iv(w).mul_interval(a));
                }
                next.push(apply_float(layer.activation, z));
            }
            for &(neuron, value) in &layer.stuck {
                next[neuron] = FloatInterval::from_rational_point(value);
            }
            acts = next;
        }
        acts
    }

    /// Zonotope-tier propagation: one shared noise symbol per faulted
    /// parameter (allocated in propagation order — per neuron its bias,
    /// then its weights — after the input symbols `0..inputs`), fresh
    /// symbols for unstable `ReLU` neurons after all fault symbols.
    ///
    /// # Panics
    ///
    /// Panics if widths disagree.
    #[must_use]
    pub fn zonotope_outputs(&self, x: &[Rational], noise: &NoiseRegion) -> Vec<AffineForm> {
        assert_eq!(x.len(), self.inputs, "input width mismatch");
        assert_eq!(noise.nodes(), self.inputs, "noise width mismatch");

        let mut acts: Vec<AffineForm> = x
            .iter()
            .zip(noise.ranges())
            .enumerate()
            .map(|(k, (&xk, &(lo, hi)))| {
                let (xc, xs) = enclose_rational(xk);
                input_form(xc, xs, lo, hi, k)
            })
            .collect();

        // Fault symbols precede every ReLU symbol so their ids are stable
        // across refinement splits of the same region shape.
        let mut fault_symbol = self.inputs;
        let mut fresh_symbol = self.inputs + self.faulted_params();

        for layer in &self.layers {
            let mut next = Vec::with_capacity(layer.rows);
            for r in 0..layer.rows {
                let row = &layer.weights[r * layer.cols..(r + 1) * layer.cols];
                let mut z = uncertain_constant(&layer.biases[r], &mut fault_symbol);
                for (w, a) in row.iter().zip(&acts) {
                    let term = if w.is_point() {
                        let (wc, ws) = enclose_rational(w.lo());
                        a.scale(wc, ws)
                    } else {
                        let (wc, wr) = center_radius(w);
                        let sym = fault_symbol;
                        fault_symbol += 1;
                        mul_uncertain(a, wc, wr, sym)
                    };
                    z = z.add(&term);
                }
                let out = match layer.activation {
                    fannet_nn::Activation::Identity => z,
                    fannet_nn::Activation::ReLU => relu_form(&z, &mut fresh_symbol),
                    fannet_nn::Activation::Sigmoid => {
                        unreachable!("lift rejects non-piecewise-linear networks")
                    }
                };
                next.push(out);
            }
            for &(neuron, value) in &layer.stuck {
                next[neuron] = AffineForm::from_rational(value);
            }
            acts = next;
        }
        acts
    }
}

/// Exact activation transformer (tight for the piecewise-linear set the
/// lift admits).
fn apply_exact(activation: fannet_nn::Activation, z: Interval) -> Interval {
    match activation {
        fannet_nn::Activation::Identity => z,
        fannet_nn::Activation::ReLU => z.relu(),
        fannet_nn::Activation::Sigmoid => unreachable!("lift rejects non-piecewise-linear"),
    }
}

/// Float activation transformer.
fn apply_float(activation: fannet_nn::Activation, z: FloatInterval) -> FloatInterval {
    match activation {
        fannet_nn::Activation::Identity => z,
        fannet_nn::Activation::ReLU => z.relu(),
        fannet_nn::Activation::Sigmoid => unreachable!("lift rejects non-piecewise-linear"),
    }
}

/// Outward float enclosure of an exact rational interval.
fn float_iv(iv: &Interval) -> FloatInterval {
    FloatInterval::from_rationals(iv.lo(), iv.hi())
}

/// A `(center, radius)` float cover of an exact interval:
/// `[center − radius, center + radius] ⊇ [lo, hi]`, every rounded step
/// charged upward.
fn center_radius(iv: &Interval) -> (f64, f64) {
    let (lc, ls) = enclose_rational(iv.lo());
    let (hc, hs) = enclose_rational(iv.hi());
    let sum = lc + hc;
    let center = sum * 0.5; // ×0.5 is exact; only `sum` rounded
    let diff = hc - lc;
    let mut radius = (diff * 0.5).abs();
    // Cover the rounding of `diff`, the conversion slacks of both
    // endpoints, and the rounding of `sum` (which displaces the center).
    radius = (radius + ulp_gap(diff)).next_up();
    radius = (radius + ls.max(hs)).next_up();
    radius = (radius + ulp_gap(sum)).next_up();
    (center, radius)
}

/// A constant whose exact value lies in `iv`: point intervals become
/// `center ± slack` (slack in the error term), faulted intervals carry
/// their own shared symbol.
fn uncertain_constant(iv: &Interval, fault_symbol: &mut usize) -> AffineForm {
    if iv.is_point() {
        let (c, s) = enclose_rational(iv.lo());
        let mut form = AffineForm::constant(c);
        form.add_err(s);
        form
    } else {
        let (c, r) = center_radius(iv);
        let mut form = AffineForm::constant(c);
        form.set_coeff(*fault_symbol, r);
        *fault_symbol += 1;
        form
    }
}

/// `ŵ · a` for an uncertain multiplier `ŵ ∈ [wc − wr, wc + wr]` carrying
/// the shared fault symbol `symbol`.
///
/// Soundness: write the exact multiplier as `ŵ = wc + δ` with
/// `|δ| ≤ wr`, and let `v = a(ε, e)` be the exact multiplicand under the
/// shared valuation. Then
///
/// ```text
/// ŵ·v = wc·v + δ·center(a) + δ·(v − center(a))
/// ```
///
/// — the first term is [`AffineForm::scale`] (rounding charged there),
/// the second is `(wr·center(a))·ε_w` with `ε_w = δ/wr ∈ [−1, 1]` a
/// **single shared valuation** (each parameter is multiplied exactly
/// once per propagation, so one `ε_w` witnesses every occurrence of its
/// effect downstream), and the third is bounded by `wr·radius(a)`,
/// absorbed into the error term. Each rounded operation charges its
/// [`ulp_gap`]; upward rounding keeps the charges sound.
fn mul_uncertain(a: &AffineForm, wc: f64, wr: f64, symbol: usize) -> AffineForm {
    let mut out = a.scale(wc, 0.0);
    if wr > 0.0 {
        let t = wr * a.center();
        out.set_coeff(symbol, t);
        out.add_err(ulp_gap(t));
        let rad = a.radius();
        if rad > 0.0 {
            out.add_err((wr * rad).next_up());
        }
    }
    out
}

/// `true` if every output of `faulted` on `x` lies inside the matching
/// enclosure — the sampling oracle of the cross-validation tests.
///
/// # Panics
///
/// Panics on width mismatches.
#[must_use]
pub fn encloses_faulted_outputs(
    enclosure: &[Interval],
    faulted: &FaultedNetwork,
    x: &[Rational],
) -> bool {
    let out = faulted.forward(x).expect("widths validated by caller");
    assert_eq!(out.len(), enclosure.len(), "output width mismatch");
    enclosure.iter().zip(&out).all(|(iv, &v)| iv.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FaultModel;
    use fannet_nn::{Activation, DenseLayer, Network, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn rq(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// 2-3-2 ReLU network with mixed-sign weights.
    fn net() -> Network<Rational> {
        let hidden = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(2), r(-1)], vec![r(-1), r(2)], vec![r(1), r(1)]])
                .unwrap(),
            vec![r(-10), r(-10), r(0)],
            Activation::ReLU,
        )
        .unwrap();
        let output = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(1), r(0), r(1)], vec![r(0), r(1), r(1)]]).unwrap(),
            vec![r(0), r(0)],
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![hidden, output], Readout::MaxPool).unwrap()
    }

    fn weight_noise(eps_num: i128, eps_den: i128) -> FaultModel {
        FaultModel::WeightNoise {
            rel_eps: rq(eps_num, eps_den),
        }
    }

    #[test]
    fn zero_fault_propagation_is_the_exact_forward_pass() {
        let n = net();
        let region = FaultRegion::lift(&n, &weight_noise(0, 1)).unwrap();
        let x = [r(12), r(5)];
        let enclosure = region.output_intervals(&enclose_input(&x, &NoiseRegion::symmetric(0, 2)));
        let exact = n.forward(&x).unwrap();
        for (iv, &v) in enclosure.iter().zip(&exact) {
            assert!(iv.is_point(), "zero-fault interval must be a point");
            assert_eq!(iv.lo(), v);
        }
    }

    #[test]
    fn exact_enclosure_covers_corner_and_midpoint_assignments() {
        let n = net();
        for model in [
            weight_noise(1, 10),
            FaultModel::Quantization { denom_bits: 4 },
            FaultModel::BitFlips { budget: 2 },
        ] {
            let region = FaultRegion::lift(&n, &model).unwrap();
            let x = [r(12), r(5)];
            let enclosure =
                region.output_intervals(&enclose_input(&x, &NoiseRegion::symmetric(0, 2)));
            for faulted in [region.corner_lo(), region.corner_hi(), region.midpoint()] {
                assert!(
                    encloses_faulted_outputs(&enclosure, &faulted, &x),
                    "assignment escapes enclosure under {model}"
                );
            }
        }
    }

    #[test]
    fn float_tier_encloses_exact_tier() {
        let n = net();
        let region = FaultRegion::lift(&n, &weight_noise(1, 8)).unwrap();
        let x = [r(12), r(5)];
        for delta in [0, 2, 5] {
            let noise = NoiseRegion::symmetric(delta, 2);
            let exact = region.output_intervals(&enclose_input(&x, &noise));
            let float = region.float_outputs(&enclose_input_float(&x, &noise));
            for (fi, iv) in float.iter().zip(&exact) {
                assert!(
                    fi.contains_rational(iv.lo()) && fi.contains_rational(iv.hi()),
                    "float {fi:?} must enclose exact {iv:?} at ±{delta}%"
                );
            }
        }
    }

    #[test]
    fn zonotope_tier_encloses_sampled_assignments() {
        let n = net();
        let region = FaultRegion::lift(&n, &weight_noise(1, 10)).unwrap();
        let x = [r(12), r(5)];
        let forms = region.zonotope_outputs(&x, &NoiseRegion::symmetric(0, 2));
        for faulted in [region.corner_lo(), region.corner_hi(), region.midpoint()] {
            let out = faulted.forward(&x).unwrap();
            for (form, &v) in forms.iter().zip(&out) {
                let (lo, hi) = form.range();
                let vf = v.to_f64();
                assert!(
                    lo <= vf.next_up() && vf.next_down() <= hi,
                    "output {v} escapes zonotope [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn zonotope_differences_are_tighter_than_intervals_on_correlated_faults() {
        // Both outputs read the *same* faulted hidden neuron through
        // equal weights: in out0 − out1 the hidden neuron's fault symbols
        // cancel (the difference depends only on the small last-layer
        // perturbations and the bias), while plain intervals decorrelate
        // the shared hidden value into a wide overlap.
        let shared = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(3), r(1)]]).unwrap(),
            vec![r(0)],
            Activation::Identity,
        )
        .unwrap();
        let split = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(1)], vec![r(1)]]).unwrap(),
            vec![r(5), r(0)],
            Activation::Identity,
        )
        .unwrap();
        let n = Network::new(vec![shared, split], Readout::MaxPool).unwrap();
        let x = [r(10), r(10)];
        let noise = NoiseRegion::symmetric(0, 2);

        // ε = 1/20: hidden ∈ [38, 42], out0 ∈ [40.85, 49.35],
        // out1 ∈ [36.1, 44.1] — interval view overlaps and stays Unknown.
        let region = FaultRegion::lift(&n, &weight_noise(1, 20)).unwrap();
        let exact = region.output_intervals(&enclose_input(&x, &noise));
        assert!(
            exact[0].intersects(&exact[1]),
            "test needs interval overlap to be meaningful: {exact:?}"
        );
        assert_eq!(
            classify_box(&exact, 0),
            BoxVerdict::Unknown,
            "interval tier must fail on the correlated pair"
        );
        // The difference out0 − out1 keeps the hidden symbols shared:
        // its zonotope radius ≈ 2·ε·40 + ε·rad(h) + bias slack ≈ 4.5 < 5.
        let forms = region.zonotope_outputs(&x, &noise);
        assert_eq!(
            classify_box_zonotope(&forms, 0),
            BoxVerdict::AlwaysCorrect,
            "shared fault symbols must cancel in the output difference"
        );
    }

    #[test]
    fn stuck_at_overrides_every_tier() {
        let n = net();
        let model = FaultModel::StuckAt {
            layer: 0,
            neuron: 2,
            value: r(100),
        };
        let region = FaultRegion::lift(&n, &model).unwrap();
        let x = [r(12), r(5)];
        let noise = NoiseRegion::symmetric(0, 2);
        let exact = region.output_intervals(&enclose_input(&x, &noise));
        let concrete = region.midpoint().forward(&x).unwrap();
        for (iv, &v) in exact.iter().zip(&concrete) {
            assert!(iv.is_point() && iv.lo() == v);
        }
        let float = region.float_outputs(&enclose_input_float(&x, &noise));
        for (fi, &v) in float.iter().zip(&concrete) {
            assert!(fi.contains_rational(v));
        }
        let forms = region.zonotope_outputs(&x, &noise);
        for (form, &v) in forms.iter().zip(&concrete) {
            let (lo, hi) = form.range();
            let vf = v.to_f64();
            assert!(lo <= vf.next_up() && vf.next_down() <= hi);
        }
    }

    #[test]
    fn boxed_input_composes_with_fault_intervals() {
        let n = net();
        let region = FaultRegion::lift(&n, &weight_noise(1, 20)).unwrap();
        let x = [r(12), r(5)];
        let noise = NoiseRegion::symmetric(4, 2);
        let enclosure = region.output_intervals(&enclose_input(&x, &noise));
        // Every (noise vector, corner assignment) pair stays enclosed.
        for nv in noise.iter_points().step_by(11) {
            let noisy = nv.apply(&x);
            for faulted in [region.corner_lo(), region.corner_hi(), region.midpoint()] {
                assert!(
                    encloses_faulted_outputs(&enclosure, &faulted, &noisy),
                    "noise {nv} × fault corner escapes the joint enclosure"
                );
            }
        }
    }

    #[test]
    fn center_radius_covers_both_endpoints() {
        for (lo, hi) in [
            (rq(1, 3), rq(2, 3)),
            (rq(-7, 11), rq(22, 7)),
            (rq(-5, 2), rq(-1, 2)),
            (rq(1, 1_000_003), rq(1, 1_000_000)),
        ] {
            let (c, r) = center_radius(&Interval::new(lo, hi));
            let lo_f = lo.to_f64();
            let hi_f = hi.to_f64();
            assert!(
                c - r <= lo_f.next_up() && hi_f.next_down() <= c + r,
                "[{c} ± {r}] must cover [{lo}, {hi}]"
            );
        }
    }
}
