//! The fault space as a box of per-parameter intervals, plus concrete
//! faulted-network assignments drawn from it (DESIGN.md §11).
//!
//! A [`FaultRegion`] is the abstract state of the fault-space
//! branch-and-bound: one exact [`Interval`] per weight and bias, with the
//! unfaulted parameters kept as point intervals, plus any stuck-at
//! overrides. [`FaultRegion::lift`] gives each [`FaultModel`] its
//! interval-weight **over-approximation**:
//!
//! * the continuous models (`WeightNoise`, `Quantization`) are boxes by
//!   definition — the lift is exact;
//! * `BitFlips { budget ≥ 1 }` has a *correlated* discrete fault set
//!   (at most `budget` parameters deviate simultaneously); the lift
//!   replaces it with the independent product of per-parameter hulls
//!   `[−|w|, 2|w|] ⊇ {w, −w, 2w, w/2}`. Independence can only **add**
//!   assignments — every legal faulted network picks its parameters
//!   inside the per-parameter hulls, so the product box contains it —
//!   hence verdicts of the form "every assignment in the box is correct"
//!   transfer to the correlated set (the soundness lemma of DESIGN.md
//!   §11). The converse direction does not transfer, which is why the
//!   checker derives `Vulnerable` only from *concrete* in-budget
//!   assignments for this model.
//!
//! Splitting ([`FaultRegion::split`]) bisects the widest parameter
//! interval at its midpoint — the fault-space analogue of the noise-box
//! split, refining the dependency-problem losses of interval-weight
//! propagation.

use fannet_nn::{Activation, Network};
use fannet_numeric::{Interval, Rational};
use fannet_tensor::vector;

use crate::model::FaultModel;

/// A box of faulted parameter assignments: per-parameter exact intervals
/// plus stuck-at output overrides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRegion {
    pub(crate) layers: Vec<FaultLayer>,
    pub(crate) inputs: usize,
}

/// One dense layer of the lifted network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FaultLayer {
    /// `rows × cols` weight intervals, row-major.
    pub(crate) weights: Vec<Interval>,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) biases: Vec<Interval>,
    pub(crate) activation: Activation,
    /// Post-activation overrides `(neuron, value)` — applied after the
    /// activation function, before the next layer.
    pub(crate) stuck: Vec<(usize, Rational)>,
}

/// Which parameter a split or witness refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParamRef {
    Weight { layer: usize, index: usize },
    Bias { layer: usize, index: usize },
}

impl FaultRegion {
    /// Lifts a network into the interval-weight box of `model` (see the
    /// module doc for per-model semantics).
    ///
    /// # Errors
    ///
    /// Returns the message of [`FaultModel::validate`] on an
    /// out-of-domain model, or a message for a non-piecewise-linear
    /// network (the same admissibility condition as the input-noise
    /// propagators — an error rather than a panic so resident servers
    /// can contain it per request).
    pub fn lift(net: &Network<Rational>, model: &FaultModel) -> Result<FaultRegion, String> {
        if !net.is_piecewise_linear() {
            return Err("fault verification requires piecewise-linear activations".to_string());
        }
        model.validate(net)?;
        let lift_param = |w: Rational| -> Interval {
            match model {
                FaultModel::WeightNoise { rel_eps } => {
                    let radius = *rel_eps * w.abs();
                    Interval::new(w - radius, w + radius)
                }
                FaultModel::StuckAt { .. } => Interval::point(w),
                FaultModel::BitFlips { budget } => {
                    if *budget == 0 || w.is_zero() {
                        // Flips of zero are zero (sign and exponent bits
                        // of a zero significand do not change the value).
                        Interval::point(w)
                    } else {
                        // hull{w, −w, 2w, w/2}: [−w, 2w] for positive w,
                        // [2w, −w] for negative.
                        let candidates = [w, -w, w + w, w * Rational::new(1, 2)];
                        let lo = candidates.iter().copied().reduce(Rational::min).expect("4");
                        let hi = candidates.iter().copied().reduce(Rational::max).expect("4");
                        Interval::new(lo, hi)
                    }
                }
                FaultModel::Quantization { denom_bits } => {
                    let e = FaultModel::quantization_error_bound(*denom_bits);
                    Interval::new(w - e, w + e)
                }
            }
        };
        let layers = net
            .layers()
            .iter()
            .enumerate()
            .map(|(l, layer)| {
                let w = layer.weights();
                let stuck = match model {
                    FaultModel::StuckAt {
                        layer: sl,
                        neuron,
                        value,
                    } if *sl == l => vec![(*neuron, *value)],
                    _ => Vec::new(),
                };
                FaultLayer {
                    weights: w.as_slice().iter().map(|&v| lift_param(v)).collect(),
                    rows: w.rows(),
                    cols: w.cols(),
                    biases: layer.biases().iter().map(|&v| lift_param(v)).collect(),
                    activation: layer.activation(),
                    stuck,
                }
            })
            .collect();
        Ok(FaultRegion {
            layers,
            inputs: net.inputs(),
        })
    }

    /// Number of input features of the lifted network.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output nodes of the lifted network.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.layers.last().expect("networks have ≥1 layer").rows
    }

    /// Number of parameters whose interval is not a single point.
    #[must_use]
    pub fn faulted_params(&self) -> usize {
        self.params().filter(|(_, iv)| !iv.is_point()).count()
    }

    /// `true` when every parameter interval is a point — propagation is
    /// then a concrete forward pass and the region cannot be split.
    #[must_use]
    pub fn is_point(&self) -> bool {
        self.params().all(|(_, iv)| iv.is_point())
    }

    /// All parameter intervals in the canonical order (per layer: weights
    /// row-major, then biases) — the tie-break order of the split policy.
    /// (The zonotope tier allocates its fault symbols in *propagation*
    /// order — per neuron its bias, then its weights — which only needs
    /// to be distinct and deterministic, not canonical.)
    fn params(&self) -> impl Iterator<Item = (ParamRef, &Interval)> {
        self.layers.iter().enumerate().flat_map(|(l, layer)| {
            layer
                .weights
                .iter()
                .enumerate()
                .map(move |(i, iv)| (ParamRef::Weight { layer: l, index: i }, iv))
                .chain(
                    layer
                        .biases
                        .iter()
                        .enumerate()
                        .map(move |(i, iv)| (ParamRef::Bias { layer: l, index: i }, iv)),
                )
        })
    }

    fn param_mut(&mut self, p: ParamRef) -> &mut Interval {
        match p {
            ParamRef::Weight { layer, index } => &mut self.layers[layer].weights[index],
            ParamRef::Bias { layer, index } => &mut self.layers[layer].biases[index],
        }
    }

    /// Bisects the widest parameter interval at its midpoint — the split
    /// policy of the fault-space branch-and-bound (DESIGN.md §11): the
    /// widest absolute interval is where the dependency problem loses the
    /// most, ties break toward the canonical parameter order so the
    /// search is deterministic.
    ///
    /// Returns `None` for point regions.
    #[must_use]
    pub fn split(&self) -> Option<(FaultRegion, FaultRegion)> {
        let (widest, _) =
            self.params()
                .filter(|(_, iv)| !iv.is_point())
                .max_by(|(pa, a), (pb, b)| {
                    // Strictly-wider wins; on ties the *earlier* parameter
                    // wins, so reverse the positional order under max_by.
                    a.width()
                        .cmp(&b.width())
                        .then_with(|| position_key(*pb).cmp(&position_key(*pa)))
                })?;
        let iv = match widest {
            ParamRef::Weight { layer, index } => self.layers[layer].weights[index],
            ParamRef::Bias { layer, index } => self.layers[layer].biases[index],
        };
        let (lo_half, hi_half) = iv.bisect();
        let mut a = self.clone();
        *a.param_mut(widest) = lo_half;
        let mut b = self.clone();
        *b.param_mut(widest) = hi_half;
        Some((a, b))
    }

    /// Largest *relative* parameter width — `width / max(|midpoint|, 1)`
    /// over all parameters. Dividing by the midpoint magnitude makes
    /// widths of large and small weights commensurable, and clamping
    /// the denominator at 1 keeps near-zero parameters from dominating;
    /// the adaptive joint split policy (DESIGN.md §12) compares this
    /// against the noise factor's normalized width. Zero for point
    /// regions.
    #[must_use]
    pub fn normalized_width(&self) -> Rational {
        let one = Rational::from_integer(1);
        self.params()
            .map(|(_, iv)| iv.width() / iv.midpoint().abs().max(one))
            .max()
            .unwrap_or(Rational::from_integer(0))
    }

    /// The concrete network with every parameter at its interval
    /// midpoint — a legal assignment for the continuous fault models
    /// (any sub-box of their lift is entirely in-model).
    #[must_use]
    pub fn midpoint(&self) -> FaultedNetwork {
        self.assignment(Interval::midpoint)
    }

    /// The concrete network with every parameter at its lower bound.
    #[must_use]
    pub fn corner_lo(&self) -> FaultedNetwork {
        self.assignment(|iv| iv.lo())
    }

    /// The concrete network with every parameter at its upper bound.
    #[must_use]
    pub fn corner_hi(&self) -> FaultedNetwork {
        self.assignment(|iv| iv.hi())
    }

    /// A concrete assignment with `pick` choosing one value per interval.
    fn assignment(&self, pick: impl Fn(&Interval) -> Rational) -> FaultedNetwork {
        FaultedNetwork {
            layers: self
                .layers
                .iter()
                .map(|layer| FaultedLayerConcrete {
                    weights: layer.weights.iter().map(&pick).collect(),
                    rows: layer.rows,
                    cols: layer.cols,
                    biases: layer.biases.iter().map(&pick).collect(),
                    activation: layer.activation,
                    stuck: layer.stuck.clone(),
                })
                .collect(),
            inputs: self.inputs,
        }
    }
}

/// Canonical position of a parameter, for deterministic tie-breaks.
fn position_key(p: ParamRef) -> (usize, usize, usize) {
    match p {
        ParamRef::Weight { layer, index } => (layer, 0, index),
        ParamRef::Bias { layer, index } => (layer, 1, index),
    }
}

/// A concrete faulted network: exact parameter values plus stuck-at
/// output overrides — the object sampled by cross-validation tests and
/// evaluated for counterexample witnesses.
///
/// This is *not* a [`Network`] because stuck-at overrides change the
/// layer semantics (a forced post-activation output has no weight-space
/// encoding in general).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultedNetwork {
    layers: Vec<FaultedLayerConcrete>,
    inputs: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultedLayerConcrete {
    weights: Vec<Rational>,
    rows: usize,
    cols: usize,
    biases: Vec<Rational>,
    activation: Activation,
    stuck: Vec<(usize, Rational)>,
}

impl FaultedNetwork {
    /// The unfaulted copy of `net` (identity assignment) — the starting
    /// point for explicit single-fault enumeration.
    #[must_use]
    pub fn from_network(net: &Network<Rational>) -> Self {
        FaultedNetwork {
            layers: net
                .layers()
                .iter()
                .map(|layer| FaultedLayerConcrete {
                    weights: layer.weights().as_slice().to_vec(),
                    rows: layer.weights().rows(),
                    cols: layer.weights().cols(),
                    biases: layer.biases().to_vec(),
                    activation: layer.activation(),
                    stuck: Vec::new(),
                })
                .collect(),
            inputs: net.inputs(),
        }
    }

    /// Number of input features.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Overwrites one weight (`layer`, row-major `index`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn set_weight(&mut self, layer: usize, index: usize, value: Rational) {
        self.layers[layer].weights[index] = value;
    }

    /// Reads one weight (`layer`, row-major `index`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn weight(&self, layer: usize, index: usize) -> Rational {
        self.layers[layer].weights[index]
    }

    /// Overwrites one bias.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn set_bias(&mut self, layer: usize, index: usize, value: Rational) {
        self.layers[layer].biases[index] = value;
    }

    /// Reads one bias.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn bias(&self, layer: usize, index: usize) -> Rational {
        self.layers[layer].biases[index]
    }

    /// Per-layer `(weights, biases)` parameter counts, in layer order.
    #[must_use]
    pub fn layer_shapes(&self) -> Vec<(usize, usize)> {
        self.layers
            .iter()
            .map(|l| (l.weights.len(), l.biases.len()))
            .collect()
    }

    /// Forces neuron `neuron` of `layer` to post-activation `value`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn set_stuck(&mut self, layer: usize, neuron: usize, value: Rational) {
        assert!(neuron < self.layers[layer].rows, "stuck neuron in range");
        self.layers[layer].stuck.push((neuron, value));
    }

    /// Exact forward pass with stuck-at overrides applied after each
    /// layer's activation.
    ///
    /// # Errors
    ///
    /// Returns a message if `x.len()` does not match the input width.
    pub fn forward(&self, x: &[Rational]) -> Result<Vec<Rational>, String> {
        if x.len() != self.inputs {
            return Err(format!(
                "input of width {} against network with {} inputs",
                x.len(),
                self.inputs
            ));
        }
        let mut acts = x.to_vec();
        for layer in &self.layers {
            let mut next = Vec::with_capacity(layer.rows);
            for r in 0..layer.rows {
                let row = &layer.weights[r * layer.cols..(r + 1) * layer.cols];
                let mut z = layer.biases[r];
                for (w, a) in row.iter().zip(&acts) {
                    z += *w * *a;
                }
                next.push(layer.activation.apply(z));
            }
            for &(neuron, value) in &layer.stuck {
                next[neuron] = value;
            }
            acts = next;
        }
        Ok(acts)
    }

    /// Classifies with the maxpool readout (lower-index tie-break, the
    /// paper's `L0 ≥ L1 → L0` rule — identical to
    /// [`fannet_nn::Readout::MaxPool`]).
    ///
    /// # Errors
    ///
    /// Returns a message if `x.len()` does not match the input width.
    pub fn classify(&self, x: &[Rational]) -> Result<usize, String> {
        let out = self.forward(x)?;
        Ok(vector::argmax(&out).expect("networks have ≥1 output"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    /// 2-3-2 ReLU network with mixed-sign weights.
    fn net() -> Network<Rational> {
        let hidden = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(2), r(-1)], vec![r(-1), r(2)], vec![r(1), r(1)]])
                .unwrap(),
            vec![r(-10), r(-10), r(0)],
            Activation::ReLU,
        )
        .unwrap();
        let output = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(1), r(0), r(1)], vec![r(0), r(1), r(1)]]).unwrap(),
            vec![r(0), r(0)],
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![hidden, output], Readout::MaxPool).unwrap()
    }

    #[test]
    fn weight_noise_lift_brackets_every_parameter() {
        let n = net();
        let eps = Rational::new(1, 10);
        let region = FaultRegion::lift(&n, &FaultModel::WeightNoise { rel_eps: eps }).unwrap();
        assert_eq!(region.inputs(), 2);
        assert_eq!(region.outputs(), 2);
        for (layer, lifted) in n.layers().iter().zip(&region.layers) {
            for (&w, iv) in layer.weights().as_slice().iter().zip(&lifted.weights) {
                assert!(iv.contains(w));
                assert_eq!(iv.width(), Rational::new(2, 10) * w.abs());
            }
            for (&b, iv) in layer.biases().iter().zip(&lifted.biases) {
                assert!(iv.contains(b));
            }
        }
        // Zero-eps lift is the point network.
        let exact = FaultRegion::lift(
            &n,
            &FaultModel::WeightNoise {
                rel_eps: Rational::ZERO,
            },
        )
        .unwrap();
        assert!(exact.is_point());
        assert_eq!(exact.faulted_params(), 0);
    }

    #[test]
    fn bit_flip_lift_hulls_all_flip_values() {
        let n = net();
        let region = FaultRegion::lift(&n, &FaultModel::BitFlips { budget: 1 }).unwrap();
        for (layer, lifted) in n.layers().iter().zip(&region.layers) {
            for (&w, iv) in layer.weights().as_slice().iter().zip(&lifted.weights) {
                for flipped in [w, -w, w + w, w * Rational::new(1, 2)] {
                    assert!(iv.contains(flipped), "{iv:?} must contain flip {flipped}");
                }
            }
        }
        assert!(FaultRegion::lift(&n, &FaultModel::BitFlips { budget: 0 })
            .unwrap()
            .is_point());
    }

    #[test]
    fn quantization_lift_uses_half_ulp_bound() {
        let n = net();
        let region = FaultRegion::lift(&n, &FaultModel::Quantization { denom_bits: 8 }).unwrap();
        let e = Rational::new(1, 512);
        let w = n.layers()[0].weights()[(0, 0)];
        let iv = region.layers[0].weights[0];
        assert_eq!(iv, Interval::new(w - e, w + e));
    }

    #[test]
    fn stuck_at_lift_is_point_with_override() {
        let n = net();
        let region = FaultRegion::lift(
            &n,
            &FaultModel::StuckAt {
                layer: 0,
                neuron: 1,
                value: r(7),
            },
        )
        .unwrap();
        assert!(region.is_point());
        assert_eq!(region.layers[0].stuck, vec![(1, r(7))]);
        assert!(region.layers[1].stuck.is_empty());
        // The midpoint assignment carries the override into evaluation.
        let faulted = region.midpoint();
        let x = [r(10), r(10)];
        let plain = FaultedNetwork::from_network(&n);
        assert_ne!(faulted.forward(&x).unwrap(), plain.forward(&x).unwrap());
    }

    #[test]
    fn split_bisects_widest_parameter_deterministically() {
        let n = net();
        let region = FaultRegion::lift(
            &n,
            &FaultModel::WeightNoise {
                rel_eps: Rational::new(1, 4),
            },
        )
        .unwrap();
        let (a, b) = region.split().expect("non-point region splits");
        // Exactly one parameter interval changed in each half, the same
        // one — the widest is the first |−10| bias of layer 0 (width 5,
        // beating every |w| ≤ 2 weight), tie-broken toward the earlier
        // index — and their union is the original.
        let widest = region.layers[0].biases[0];
        assert_eq!(widest.width(), Rational::new(5, 1));
        assert_eq!(a.layers[0].biases[0].hull(&b.layers[0].biases[0]), widest);
        assert_eq!(a.layers[0].biases[0].hi(), b.layers[0].biases[0].lo());
        assert_eq!(a.layers[0].weights, b.layers[0].weights);
        // Determinism: splitting twice yields identical halves.
        let (a2, b2) = region.split().unwrap();
        assert_eq!((a.clone(), b.clone()), (a2, b2));
        // Point regions cannot split.
        assert!(FaultRegion::lift(&n, &FaultModel::BitFlips { budget: 0 })
            .unwrap()
            .split()
            .is_none());
    }

    #[test]
    fn faulted_network_matches_plain_forward_when_unfaulted() {
        let n = net();
        let plain = FaultedNetwork::from_network(&n);
        for x in [[r(12), r(5)], [r(-3), r(4)], [r(9), r(8)]] {
            assert_eq!(plain.forward(&x).unwrap(), n.forward(&x).unwrap());
            assert_eq!(plain.classify(&x).unwrap(), n.classify(&x).unwrap());
        }
        assert!(plain.forward(&[r(1)]).is_err());
    }

    #[test]
    fn corner_assignments_stay_inside_the_region() {
        let n = net();
        let region = FaultRegion::lift(
            &n,
            &FaultModel::WeightNoise {
                rel_eps: Rational::new(1, 10),
            },
        )
        .unwrap();
        let lo = region.corner_lo();
        let hi = region.corner_hi();
        let mid = region.midpoint();
        for (l, lifted) in region.layers.iter().enumerate() {
            for (i, iv) in lifted.weights.iter().enumerate() {
                for candidate in [lo.weight(l, i), hi.weight(l, i), mid.weight(l, i)] {
                    assert!(iv.contains(candidate));
                }
            }
        }
    }

    #[test]
    fn setters_round_trip() {
        let n = net();
        let mut f = FaultedNetwork::from_network(&n);
        f.set_weight(0, 1, r(42));
        assert_eq!(f.weight(0, 1), r(42));
        f.set_bias(1, 0, r(-5));
        assert_eq!(f.bias(1, 0), r(-5));
        assert_eq!(f.layer_shapes(), vec![(6, 3), (6, 2)]);
    }
}
