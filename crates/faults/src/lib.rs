//! # fannet-faults
//!
//! Weight-fault and quantization robustness verification (DESIGN.md §11)
//! — FANNet asks whether a verdict survives perturbation of the *inputs*;
//! this crate asks the same question about the network's *parameters*:
//! hardware faults, quantization error and weight drift ("Fault Tolerance
//! of Neural Networks in Adversarial Settings", Duddu et al.;
//! "Adversarial Examples as an Input-Fault Tolerance Problem", Galloway
//! et al.).
//!
//! * [`model`] — the [`FaultModel`] taxonomy: relative weight noise,
//!   stuck-at neurons, bit flips, quantization error.
//! * [`region`] — the fault space as a box of per-parameter
//!   [`Interval`](fannet_numeric::Interval)s ([`FaultRegion`]), plus
//!   concrete [`FaultedNetwork`] assignments drawn from it.
//! * [`propagate`] — the interval-weight propagators: exact rational
//!   intervals, an outward-rounded [`FloatInterval`](fannet_numeric::FloatInterval)
//!   fast screen, and a zonotope tier that gives every faulted weight its
//!   own shared noise symbol so correlated faults cancel in output
//!   differences — the fault-space mirror of the input-noise cascade.
//! * [`checker`] — the [`FaultChecker`]: screening-tier cascade plus
//!   branch-and-bound over the *fault space* (splitting weight
//!   intervals, not input boxes), and the fault-tolerance binary search
//!   (largest ε whose weight-noise ball provably keeps the label) —
//!   instantiating the generic `fannet-search` core (DESIGN.md §12).
//! * [`joint`] — the joint input×weight product domain
//!   ([`ProductRegion`], [`JointChecker`]): "robust to ±δ input noise
//!   *and* ±ε weight noise simultaneously", with both factors refined
//!   by the same generic search.
//!
//! Verdict semantics differ from the input-noise checker in one
//! fundamental way: the fault space is continuous (or combinatorially
//! huge, for bit flips), so the procedure is **sound but not complete**
//! — [`FaultOutcome::Robust`] and [`FaultOutcome::Vulnerable`] are
//! proofs, [`FaultOutcome::Unknown`] is an honest "the budgeted search
//! could not decide".
//!
//! ## Example
//!
//! ```
//! use fannet_faults::{FaultChecker, FaultCheckerConfig, FaultModel, FaultOutcome};
//! use fannet_nn::{Activation, DenseLayer, Network, Readout};
//! use fannet_numeric::Rational;
//! use fannet_tensor::Matrix;
//!
//! // label 0 iff x0 ≥ x1.
//! let r = |n: i128| Rational::from_integer(n);
//! let net = Network::new(vec![DenseLayer::new(
//!     Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]])?,
//!     vec![r(0), r(0)],
//!     Activation::Identity,
//! )?], Readout::MaxPool)?;
//!
//! let checker = FaultChecker::new(net, FaultCheckerConfig::default());
//! let x = [r(100), r(82)];
//! // ±5% relative weight noise cannot close an 18% margin…
//! let eps = Rational::new(5, 100);
//! let (outcome, _) = checker.check(&x, 0, &FaultModel::WeightNoise { rel_eps: eps })?;
//! assert_eq!(outcome, FaultOutcome::Robust);
//! // …but ±20% can: the checker finds a concrete faulted network.
//! let eps = Rational::new(20, 100);
//! let (outcome, _) = checker.check(&x, 0, &FaultModel::WeightNoise { rel_eps: eps })?;
//! assert!(matches!(outcome, FaultOutcome::Vulnerable(_)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod checker;
pub mod joint;
pub mod model;
pub mod propagate;
pub mod region;

pub use checker::{
    tolerance_search, FaultChecker, FaultCheckerConfig, FaultOutcome, FaultStats, FaultTolerance,
    FaultWitness, ToleranceSearch,
};
pub use joint::{JointChecker, JointOutcome, JointTolerance, JointWitness, ProductRegion};
pub use model::FaultModel;
pub use region::{FaultRegion, FaultedNetwork};
