//! The fault checker: screening cascade, concrete fault probes, and the
//! fault-space instantiation of the generic `fannet-search`
//! branch-and-bound (DESIGN.md §11/§12), plus the fault-tolerance
//! binary search.
//!
//! ## Verdict semantics
//!
//! [`FaultChecker::check`] decides the property *"every faulted network
//! of the model classifies `x` (under every noise vector of the input
//! box) as `label`"*:
//!
//! * [`FaultOutcome::Robust`] — a proof: the interval-weight enclosure
//!   (possibly after fault-space splitting) certifies every assignment
//!   in the model's lift, which over-approximates the model
//!   ([`FaultRegion::lift`]).
//! * [`FaultOutcome::Vulnerable`] — a proof by witness: a **concrete,
//!   in-model** faulted network misclassifies (corner/midpoint probes,
//!   explicit single-bit-flip enumeration, or the midpoint of a box the
//!   enclosure proves uniformly wrong — legal for the continuous models,
//!   whose lift *is* the model set).
//! * [`FaultOutcome::Unknown`] — the box budget ran out, or the model is
//!   combinatorial (`BitFlips`) and neither direction could be certified.
//!   Unlike the input-noise checker there is no finite grid to fall back
//!   on: the fault space is continuous, so the procedure is sound but
//!   deliberately incomplete.
//!
//! ## Branch-and-bound over the fault space
//!
//! Boxes are [`FaultRegion`]s; an undecided box splits its **widest
//! parameter interval** at the midpoint ([`FaultRegion::split`]) — the
//! dependency problem loses the most where a weight interval is widest,
//! and halving it tightens every downstream product. The generic search
//! runs depth-first, serial and fully deterministic (canonical split
//! order, budgeted via [`fannet_search::search_serial`]), which is what
//! lets `fannet-engine` replay cached verdicts bit-identically.

use fannet_nn::Network;
use fannet_numeric::{FloatInterval, Interval, Rational};
use fannet_search::{
    BoxDecision, Cascade, Classifier, SearchDomain, SearchOutcome, TierKind, TierTimer,
};
use fannet_verify::bab::ScreeningTier;
use fannet_verify::noise::NoiseVector;
use fannet_verify::region::NoiseRegion;
use serde::{Deserialize, Serialize};

use crate::model::FaultModel;
use crate::propagate::{
    classify_box, classify_box_float, classify_box_zonotope, enclose_input, enclose_input_float,
    BoxVerdict,
};
use crate::region::{FaultRegion, FaultedNetwork};

/// Search counters of one fault check (merged across probes of a
/// tolerance search) — the unified [`fannet_search::SearchStats`] block.
pub use fannet_search::SearchStats as FaultStats;
/// Result of a fault-tolerance bisection — the shared
/// [`fannet_search::ToleranceResult`] since the core extraction.
pub use fannet_search::ToleranceResult as FaultTolerance;
pub use fannet_search::ToleranceSearch;

/// How a fault check runs: which screening tiers route each fault box,
/// and how many boxes the fault-space branch-and-bound may explore.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCheckerConfig {
    /// Screening tiers, cheapest first (the exact interval tier always
    /// runs last on boxes no screen decides — there is no grid-point
    /// fallback below it).
    pub screening: ScreeningTier,
    /// Box budget of the fault-space search; when it runs out the check
    /// returns [`FaultOutcome::Unknown`] with `budget_exhausted` set.
    pub max_boxes: u64,
    /// Maximum split depth per box chain. The fault space is continuous
    /// — without a grid floor a straddling decision boundary would be
    /// bisected forever, and every split adds one bit to the split
    /// parameter's denominator (exact midpoints halve), so unbounded
    /// depth also walks the `i128` rationals into overflow. Boxes at the
    /// limit are abandoned as undecided.
    pub max_depth: u32,
}

impl FaultCheckerConfig {
    /// Overrides the box budget (`0` is clamped to 1).
    #[must_use]
    pub fn with_max_boxes(mut self, max_boxes: u64) -> Self {
        self.max_boxes = max_boxes.max(1);
        self
    }

    /// Overrides the screening tiers.
    #[must_use]
    pub fn with_screening(mut self, tier: ScreeningTier) -> Self {
        self.screening = tier;
        self
    }

    /// Overrides the split-depth limit.
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: u32) -> Self {
        self.max_depth = max_depth;
        self
    }
}

impl Default for FaultCheckerConfig {
    /// Cascade screening, 512-box fault-space budget, 16-deep splits.
    fn default() -> Self {
        FaultCheckerConfig {
            screening: ScreeningTier::Cascade,
            max_boxes: 512,
            max_depth: 16,
        }
    }
}

/// A concrete, in-model misclassification witness.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultWitness {
    /// Human-readable description of the faulted assignment (full
    /// parameter vectors are not serialized; the checker is
    /// deterministic, so re-running the query reproduces them).
    pub description: String,
    /// Exact output activations of the faulted network.
    pub outputs: Vec<Rational>,
    /// The (wrong) label the faulted network predicted.
    pub predicted: usize,
    /// The expected label.
    pub expected: usize,
}

/// Outcome of a fault check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Proof: every faulted network of the model keeps the label.
    Robust,
    /// Proof by witness: a concrete in-model faulted network flips it.
    Vulnerable(FaultWitness),
    /// The budgeted search could not decide (sound in both directions).
    Unknown,
}

impl FaultOutcome {
    /// `true` for [`FaultOutcome::Robust`].
    #[must_use]
    pub fn is_robust(&self) -> bool {
        matches!(self, FaultOutcome::Robust)
    }

    /// The witness, if any.
    #[must_use]
    pub fn witness(&self) -> Option<&FaultWitness> {
        match self {
            FaultOutcome::Vulnerable(w) => Some(w),
            _ => None,
        }
    }

    /// The JSONL wire spelling of the verdict.
    #[must_use]
    pub fn wire_name(&self) -> &'static str {
        match self {
            FaultOutcome::Robust => "robust",
            FaultOutcome::Vulnerable(_) => "vulnerable",
            FaultOutcome::Unknown => "unknown",
        }
    }
}

/// A resident fault checker for one trained network.
#[derive(Debug, Clone)]
pub struct FaultChecker {
    net: Network<Rational>,
    config: FaultCheckerConfig,
    /// Worker-thread count of the budgeted search (not part of
    /// [`FaultCheckerConfig`], which is serialized — threading is a
    /// host property, not a query property).
    threads: usize,
}

impl FaultChecker {
    /// Builds the checker. Admissibility (piecewise-linear activations)
    /// is checked per query rather than here, so resident owners (the
    /// engine, `fannet serve`) can hold a checker for any loadable model
    /// and surface the error on the first fault query instead of
    /// crashing at startup.
    #[must_use]
    pub fn new(net: Network<Rational>, config: FaultCheckerConfig) -> Self {
        FaultChecker {
            net,
            config,
            threads: 1,
        }
    }

    /// Overrides the worker-thread count (`0` is clamped to 1). With
    /// more than one thread the budgeted search speculates in parallel
    /// and replays deterministically, so verdicts, witnesses **and
    /// stats** are bit-identical to the serial search at any count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The verified network.
    #[must_use]
    pub fn network(&self) -> &Network<Rational> {
        &self.net
    }

    /// The checker's configuration.
    #[must_use]
    pub fn config(&self) -> &FaultCheckerConfig {
        &self.config
    }

    /// Checks classification robustness of `x` under `model` with a
    /// point input (no input noise).
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch, out-of-range label, or an
    /// out-of-domain model.
    pub fn check(
        &self,
        x: &[Rational],
        label: usize,
        model: &FaultModel,
    ) -> Result<(FaultOutcome, FaultStats), String> {
        self.check_with_noise(x, label, &NoiseRegion::symmetric(0, x.len()), model)
    }

    /// [`FaultChecker::check`] with an explicit [`TierTimer`]: an
    /// enabled timer additionally books per-tier nanoseconds into the
    /// returned stats (DESIGN.md §14); verdict, witness and counters
    /// are bit-identical to the untimed call.
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch, out-of-range label, or an
    /// out-of-domain model.
    pub fn check_timed(
        &self,
        x: &[Rational],
        label: usize,
        model: &FaultModel,
        timer: TierTimer,
    ) -> Result<(FaultOutcome, FaultStats), String> {
        self.check_with_noise_timed(x, label, &NoiseRegion::symmetric(0, x.len()), model, timer)
    }

    /// [`FaultChecker::check`] over a boxed input: the property
    /// quantifies over every noise vector of `noise` **and** every
    /// faulted network of `model` simultaneously. (The noise box itself
    /// is never split here — see `crate::joint` for the product-domain
    /// search that refines both factors.)
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch, out-of-range label, or an
    /// out-of-domain model.
    pub fn check_with_noise(
        &self,
        x: &[Rational],
        label: usize,
        noise: &NoiseRegion,
        model: &FaultModel,
    ) -> Result<(FaultOutcome, FaultStats), String> {
        self.check_with_noise_timed(x, label, noise, model, TierTimer::disabled())
    }

    /// [`FaultChecker::check_with_noise`] with an explicit
    /// [`TierTimer`] (see [`FaultChecker::check_timed`]).
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch, out-of-range label, or an
    /// out-of-domain model.
    pub fn check_with_noise_timed(
        &self,
        x: &[Rational],
        label: usize,
        noise: &NoiseRegion,
        model: &FaultModel,
        timer: TierTimer,
    ) -> Result<(FaultOutcome, FaultStats), String> {
        validate_query(&self.net, x, label, noise)?;
        let root = FaultRegion::lift(&self.net, model)?;
        let mut stats = FaultStats::default();

        // Concrete probes: cheap Vulnerable detection with in-model
        // assignments. Probes evaluate at the plain input, so they apply
        // only when the zero-noise vector is part of the claim.
        if noise.contains(&NoiseVector::zero(x.len())) {
            if let Some(witness) = probe_concrete(&self.net, x, label, model, &root, &mut stats)? {
                return Ok((FaultOutcome::Vulnerable(witness), stats));
            }
        }

        // `BitFlips { budget: 1 }` on a point input box is decided
        // completely by the probe enumeration above: every legal faulted
        // network was evaluated.
        if let FaultModel::BitFlips { budget: 1 } = model {
            if noise.is_point() && noise.contains(&NoiseVector::zero(x.len())) {
                return Ok((FaultOutcome::Robust, stats));
            }
        }

        let tiers = FaultTiers::new(&self.net, x, label, noise, self.config.screening);
        let domain = FaultQuery {
            x,
            label,
            noise,
            lift_is_exact: lift_is_exact(model),
            max_depth: self.config.max_depth,
            cascade: tiers.cascade().with_timer(timer),
        };
        let (outcome, search_stats) = fannet_search::search_with_threads(
            &domain,
            root,
            self.threads,
            Some(self.config.max_boxes),
        );
        stats.merge(&search_stats);
        Ok((fault_outcome(outcome), stats))
    }

    /// Fault tolerance of one input under relative weight noise: the
    /// largest `ε = k/denom` (with `k ∈ [0, max_numer]`) the bisection
    /// **certifies** robust — every reported value is backed by a
    /// [`FaultOutcome::Robust`] proof, `Unknown` probes count as
    /// failures, so the result is a sound lower bound on the true
    /// tolerance.
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch or out-of-range label.
    ///
    /// # Panics
    ///
    /// Panics if the search grid is empty (`denom <= 0` or
    /// `max_numer < 0`).
    pub fn tolerance(
        &self,
        x: &[Rational],
        label: usize,
        search: &ToleranceSearch,
    ) -> Result<(FaultTolerance, FaultStats), String> {
        self.tolerance_timed(x, label, search, TierTimer::disabled())
    }

    /// [`FaultChecker::tolerance`] with an explicit [`TierTimer`] (see
    /// [`FaultChecker::check_timed`]); probe timings accumulate across
    /// the whole bisection.
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch or out-of-range label.
    ///
    /// # Panics
    ///
    /// Panics if the search grid is empty (`denom <= 0` or
    /// `max_numer < 0`).
    pub fn tolerance_timed(
        &self,
        x: &[Rational],
        label: usize,
        search: &ToleranceSearch,
        timer: TierTimer,
    ) -> Result<(FaultTolerance, FaultStats), String> {
        let mut stats = FaultStats::default();
        let tolerance = tolerance_search(search, |eps| {
            let (outcome, probe_stats) =
                self.check_timed(x, label, &FaultModel::WeightNoise { rel_eps: eps }, timer)?;
            stats.merge(&probe_stats);
            Ok::<_, String>(outcome)
        })?;
        Ok((tolerance, stats))
    }
}

/// Maps a generic search outcome to the fault verdict.
pub(crate) fn fault_outcome(outcome: SearchOutcome<FaultWitness>) -> FaultOutcome {
    match outcome {
        SearchOutcome::Proven => FaultOutcome::Robust,
        SearchOutcome::Witness(w) => FaultOutcome::Vulnerable(w),
        SearchOutcome::Undecided => FaultOutcome::Unknown,
    }
}

/// `true` when the interval lift contains exactly the model's fault set,
/// so any point of any sub-box is a legal faulted network.
pub(crate) fn lift_is_exact(model: &FaultModel) -> bool {
    matches!(
        model,
        FaultModel::WeightNoise { .. } | FaultModel::Quantization { .. }
    )
}

/// Shared query validation (width/label), also used by the joint checker.
pub(crate) fn validate_query(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    noise: &NoiseRegion,
) -> Result<(), String> {
    if x.len() != net.inputs() {
        return Err(format!(
            "input of width {} against network with {} inputs",
            x.len(),
            net.inputs()
        ));
    }
    if noise.nodes() != net.inputs() {
        return Err(format!(
            "noise region over {} nodes against network with {} inputs",
            noise.nodes(),
            net.inputs()
        ));
    }
    if label >= net.outputs() {
        return Err(format!(
            "label {label} out of range for {} outputs",
            net.outputs()
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Concrete probes (shared with the joint checker)
// ---------------------------------------------------------------------------

/// Deterministic concrete probes, in order: the fault-free identity
/// assignment, the box corners/midpoint (continuous models and stuck-at,
/// whose lifts are exactly the model set), and the explicit single-flip
/// enumeration for `BitFlips`. Evaluates at the plain (zero-noise)
/// input, so callers gate on the zero vector being part of the claim.
pub(crate) fn probe_concrete(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    model: &FaultModel,
    root: &FaultRegion,
    stats: &mut FaultStats,
) -> Result<Option<FaultWitness>, String> {
    let probe = |faulted: &FaultedNetwork,
                 description: &dyn Fn() -> String,
                 stats: &mut FaultStats|
     -> Result<Option<FaultWitness>, String> {
        stats.concrete_evals += 1;
        let outputs = faulted.forward(x)?;
        let predicted = fannet_tensor::vector::argmax(&outputs).expect("outputs non-empty");
        if predicted == label {
            Ok(None)
        } else {
            Ok(Some(FaultWitness {
                description: description(),
                outputs,
                predicted,
                expected: label,
            }))
        }
    };

    // Identity first: a misclassified input makes every model
    // vulnerable through its zero-fault member.
    let identity = FaultedNetwork::from_network(net);
    let id_witness = match model {
        // Stuck-at has no identity member; its single assignment is
        // the region itself.
        FaultModel::StuckAt { .. } => None,
        _ => probe(
            &identity,
            &|| "fault-free network already misclassifies".to_string(),
            stats,
        )?,
    };
    if let Some(w) = id_witness {
        return Ok(Some(w));
    }

    match model {
        FaultModel::WeightNoise { .. } | FaultModel::Quantization { .. } => {
            for (faulted, name) in [
                (root.corner_lo(), "lower"),
                (root.corner_hi(), "upper"),
                (root.midpoint(), "midpoint"),
            ] {
                if let Some(w) = probe(
                    &faulted,
                    &|| format!("all parameters at their {name} fault bound"),
                    stats,
                )? {
                    return Ok(Some(w));
                }
            }
            // Targeted corners: push the label's output row down and a
            // rival's up — the strongest single legal assignment
            // against each rival (uniform corners cancel out on
            // comparator-like output layers).
            for rival in 0..net.outputs() {
                if rival == label {
                    continue;
                }
                if let Some(w) = probe(
                    &adversarial_corner(root, label, rival),
                    &|| {
                        format!(
                            "last-layer parameters at their adversarial fault \
                             bounds against rival {rival}"
                        )
                    },
                    stats,
                )? {
                    return Ok(Some(w));
                }
            }
        }
        FaultModel::StuckAt {
            layer,
            neuron,
            value,
        } => {
            if let Some(w) = probe(
                &root.midpoint(),
                &|| format!("neuron {neuron} of layer {layer} stuck at {value}"),
                stats,
            )? {
                return Ok(Some(w));
            }
        }
        FaultModel::BitFlips { budget } => {
            if *budget >= 1 {
                if let Some(w) = probe_single_flips(net, x, label, stats)? {
                    return Ok(Some(w));
                }
            }
        }
    }
    Ok(None)
}

/// Evaluates every single-parameter sign/exponent flip (a legal
/// fault for any `budget ≥ 1`), in canonical parameter order.
fn probe_single_flips(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    stats: &mut FaultStats,
) -> Result<Option<FaultWitness>, String> {
    let base = FaultedNetwork::from_network(net);
    let shapes = base.layer_shapes();
    let half = Rational::new(1, 2);
    for (layer, (weights, biases)) in shapes.iter().enumerate() {
        for kind in 0..2usize {
            let count = if kind == 0 { *weights } else { *biases };
            for index in 0..count {
                let original = if kind == 0 {
                    base.weight(layer, index)
                } else {
                    base.bias(layer, index)
                };
                if original.is_zero() {
                    continue; // flips of zero are zero
                }
                for (flip_name, flipped) in [
                    ("sign", -original),
                    ("exponent+1", original + original),
                    ("exponent-1", original * half),
                ] {
                    let mut faulted = base.clone();
                    if kind == 0 {
                        faulted.set_weight(layer, index, flipped);
                    } else {
                        faulted.set_bias(layer, index, flipped);
                    }
                    stats.concrete_evals += 1;
                    let outputs = faulted.forward(x)?;
                    let predicted =
                        fannet_tensor::vector::argmax(&outputs).expect("outputs non-empty");
                    if predicted != label {
                        let kind_name = if kind == 0 { "weight" } else { "bias" };
                        return Ok(Some(FaultWitness {
                            description: format!(
                                "{flip_name} flip of layer {layer} {kind_name} [{index}]: \
                                 {original} -> {flipped}"
                            ),
                            outputs,
                            predicted,
                            expected: label,
                        }));
                    }
                }
            }
        }
    }
    Ok(None)
}

/// The in-model assignment that attacks `rival` hardest through the last
/// layer: hidden parameters at their midpoints, the label's output row at
/// its lower fault bounds, the rival's at its upper bounds. Legal for the
/// continuous models, whose lift is exactly the model set.
fn adversarial_corner(root: &FaultRegion, label: usize, rival: usize) -> FaultedNetwork {
    let mut faulted = root.midpoint();
    let last = root.layers.len() - 1;
    let layer = &root.layers[last];
    for c in 0..layer.cols {
        faulted.set_weight(
            last,
            label * layer.cols + c,
            layer.weights[label * layer.cols + c].lo(),
        );
        faulted.set_weight(
            last,
            rival * layer.cols + c,
            layer.weights[rival * layer.cols + c].hi(),
        );
    }
    faulted.set_bias(last, label, layer.biases[label].lo());
    faulted.set_bias(last, rival, layer.biases[rival].hi());
    faulted
}

// ---------------------------------------------------------------------------
// The fault-space search domain
// ---------------------------------------------------------------------------

/// The float-interval screening tier of one fault query.
pub(crate) struct FaultIntervalScreen {
    x: Vec<FloatInterval>,
    label: usize,
}

impl Classifier<FaultRegion> for FaultIntervalScreen {
    fn tier(&self) -> TierKind {
        TierKind::Interval
    }
    fn classify(&self, region: &FaultRegion) -> BoxVerdict {
        classify_box_float(&region.float_outputs(&self.x), self.label)
    }
}

/// The zonotope screening tier of one fault query (one shared symbol
/// per faulted parameter, so correlated faults cancel in output
/// differences).
pub(crate) struct FaultZonotopeScreen<'a> {
    x: &'a [Rational],
    noise: &'a NoiseRegion,
    label: usize,
}

impl Classifier<FaultRegion> for FaultZonotopeScreen<'_> {
    fn tier(&self) -> TierKind {
        TierKind::Zonotope
    }
    fn classify(&self, region: &FaultRegion) -> BoxVerdict {
        classify_box_zonotope(&region.zonotope_outputs(self.x, self.noise), self.label)
    }
}

/// The exact interval tier — always last; unlike the input-noise domain
/// there is no grid-point fallback below it.
pub(crate) struct FaultExactTier {
    x: Vec<Interval>,
    label: usize,
}

impl Classifier<FaultRegion> for FaultExactTier {
    fn tier(&self) -> TierKind {
        TierKind::Exact
    }
    fn classify(&self, region: &FaultRegion) -> BoxVerdict {
        classify_box(&region.output_intervals(&self.x), self.label)
    }
}

/// Per-query owners of the fault cascade's tiers; the interval and
/// exact tiers precompute their input enclosures once per query.
pub(crate) struct FaultTiers<'a> {
    interval: Option<FaultIntervalScreen>,
    zonotope: Option<FaultZonotopeScreen<'a>>,
    exact: FaultExactTier,
}

impl<'a> FaultTiers<'a> {
    pub(crate) fn new(
        net: &Network<Rational>,
        x: &'a [Rational],
        label: usize,
        noise: &'a NoiseRegion,
        screening: ScreeningTier,
    ) -> Self {
        debug_assert_eq!(net.inputs(), x.len());
        FaultTiers {
            interval: screening.uses_interval().then(|| FaultIntervalScreen {
                x: enclose_input_float(x, noise),
                label,
            }),
            zonotope: screening
                .uses_zonotope()
                .then_some(FaultZonotopeScreen { x, noise, label }),
            exact: FaultExactTier {
                x: enclose_input(x, noise),
                label,
            },
        }
    }

    pub(crate) fn cascade(&self) -> Cascade<'_, FaultRegion> {
        let mut tiers: Vec<&dyn Classifier<FaultRegion>> = Vec::new();
        if let Some(screen) = &self.interval {
            tiers.push(screen);
        }
        if let Some(screen) = &self.zonotope {
            tiers.push(screen);
        }
        tiers.push(&self.exact);
        Cascade::new(tiers)
    }
}

/// The fault-space instantiation of [`SearchDomain`].
struct FaultQuery<'a> {
    x: &'a [Rational],
    label: usize,
    noise: &'a NoiseRegion,
    /// The lift equals the model set for the continuous models, so any
    /// point of any sub-box is a legal faulted network.
    lift_is_exact: bool,
    max_depth: u32,
    cascade: Cascade<'a, FaultRegion>,
}

impl SearchDomain for FaultQuery<'_> {
    type Region = FaultRegion;
    type Witness = FaultWitness;
    type Prepared = ();
    type Scratch = ();

    fn decide(
        &self,
        region: &FaultRegion,
        depth: u32,
        _scratch: &mut (),
        stats: &mut FaultStats,
    ) -> BoxDecision<FaultRegion, FaultWitness> {
        match self.cascade.classify(region, stats) {
            BoxVerdict::AlwaysCorrect => {
                stats.pruned_correct += 1;
                BoxDecision::Pruned
            }
            BoxVerdict::AlwaysWrong => {
                if self.lift_is_exact || region.is_point() {
                    stats.proved_wrong += 1;
                    // Every assignment of the box misclassifies under
                    // every noise vector; the midpoint (legal — the
                    // box is entirely in-model) evaluated at the
                    // region's first grid point is a concrete witness.
                    let faulted = region.midpoint();
                    let nv = self
                        .noise
                        .iter_points()
                        .next()
                        .expect("noise regions are non-empty");
                    stats.concrete_evals += 1;
                    let outputs = faulted
                        .forward(&nv.apply(self.x))
                        .expect("widths validated at query entry");
                    let predicted =
                        fannet_tensor::vector::argmax(&outputs).expect("outputs non-empty");
                    assert_ne!(
                        predicted, self.label,
                        "interval proof of misclassification is sound"
                    );
                    return BoxDecision::UniformWitness(FaultWitness {
                        description: format!(
                            "fault-space box proven uniformly misclassifying \
                             (midpoint assignment, noise {nv})"
                        ),
                        outputs,
                        predicted,
                        expected: self.label,
                    });
                }
                // Combinatorial lift (`BitFlips`): the box may contain
                // no legal assignment, so a uniformly-wrong box proves
                // nothing and refining it cannot help — Robust is off
                // the table, Vulnerable needs a concrete witness the
                // probes did not find. The outcome is pinned to
                // Unknown; stop instead of burning the box budget.
                BoxDecision::AbandonAll
            }
            BoxVerdict::Unknown => {
                if depth >= self.max_depth {
                    // Abandon, don't refine: the boundary may be
                    // bisected forever (continuous fault space). For
                    // a combinatorial lift nothing can rescue the
                    // outcome (no box ever yields Vulnerable), so
                    // stop; continuous models keep exploring — a
                    // sibling box may still prove AlwaysWrong.
                    return if self.lift_is_exact {
                        BoxDecision::Abandon
                    } else {
                        BoxDecision::AbandonAll
                    };
                }
                match region.split() {
                    Some((a, b)) => {
                        stats.splits += 1;
                        BoxDecision::Split(a, b)
                    }
                    // A point fault box undecided by the exact tier:
                    // the input box is too wide for interval
                    // propagation and there is no fault interval left
                    // to refine.
                    None => BoxDecision::Abandon,
                }
            }
        }
    }
}

/// The fault-tolerance bisection with the historical probe signature
/// (verdict-valued), delegating to the generic
/// [`fannet_search::tolerance_search`]: `Unknown` probes count as
/// failures, so the result is a certified lower bound.
///
/// # Errors
///
/// Propagates the first probe error.
///
/// # Panics
///
/// Panics if the search grid is invalid (`denom <= 0`, `max_numer < 0`).
pub fn tolerance_search<E>(
    search: &ToleranceSearch,
    mut probe: impl FnMut(Rational) -> Result<FaultOutcome, E>,
) -> Result<FaultTolerance, E> {
    fannet_search::tolerance_search(search, |eps| Ok(probe(eps)?.is_robust()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn rq(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// label 0 iff x0 ≥ x1.
    fn comparator() -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    fn checker() -> FaultChecker {
        FaultChecker::new(comparator(), FaultCheckerConfig::default())
    }

    /// Closed form for the comparator: weight noise flips label 0 of
    /// `(x0, x1)` iff `x0·(1−ε) < x1·(1+ε)`, i.e. ε > (x0−x1)/(x0+x1).
    fn analytic_flip_eps(x0: i128, x1: i128) -> Rational {
        Rational::new(x0 - x1, x0 + x1)
    }

    #[test]
    fn weight_noise_robust_below_the_analytic_threshold() {
        let c = checker();
        let x = [r(100), r(82)];
        let threshold = analytic_flip_eps(100, 82); // 18/182 ≈ 0.0989
        let (out, stats) = c
            .check(
                &x,
                0,
                &FaultModel::WeightNoise {
                    rel_eps: rq(9, 100),
                },
            )
            .unwrap();
        assert_eq!(out, FaultOutcome::Robust, "{stats:?}");
        let (out, _) = c
            .check(&x, 0, &FaultModel::WeightNoise { rel_eps: threshold })
            .unwrap();
        // At exactly the threshold the corner assignment ties; the
        // lower-index tie-break keeps label 0, so it is still robust.
        assert_eq!(out, FaultOutcome::Robust);
        let (out, _) = c
            .check(
                &x,
                0,
                &FaultModel::WeightNoise {
                    rel_eps: rq(11, 100),
                },
            )
            .unwrap();
        let witness = out.witness().expect("above threshold must flip");
        assert_eq!(witness.expected, 0);
        assert_eq!(witness.predicted, 1);
        assert!(witness.description.contains("fault bound"));
    }

    #[test]
    fn threaded_fault_checks_are_bit_identical_to_serial() {
        let x = [r(100), r(82)];
        for screening in [ScreeningTier::None, ScreeningTier::Cascade] {
            let config = FaultCheckerConfig::default().with_screening(screening);
            let serial = FaultChecker::new(comparator(), config.clone());
            for eps_numer in [2i128, 9, 11, 20] {
                let model = FaultModel::WeightNoise {
                    rel_eps: rq(eps_numer, 100),
                };
                let (want, want_stats) = serial.check(&x, 0, &model).unwrap();
                for threads in [2usize, 4] {
                    let threaded =
                        FaultChecker::new(comparator(), config.clone()).with_threads(threads);
                    let (got, got_stats) = threaded.check(&x, 0, &model).unwrap();
                    assert_eq!(got, want, "verdict at ε={eps_numer}/100 threads={threads}");
                    assert_eq!(
                        got_stats, want_stats,
                        "stats at ε={eps_numer}/100 threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_eps_reduces_to_plain_classification() {
        let c = checker();
        let model = FaultModel::WeightNoise {
            rel_eps: Rational::ZERO,
        };
        let (out, _) = c.check(&[r(100), r(82)], 0, &model).unwrap();
        assert_eq!(out, FaultOutcome::Robust);
        let (out, _) = c.check(&[r(100), r(82)], 1, &model).unwrap();
        let w = out.witness().expect("wrong label flips at zero fault");
        assert!(w.description.contains("fault-free"));
    }

    #[test]
    fn stuck_at_is_decided_completely() {
        let c = checker();
        let x = [r(100), r(82)];
        // Sticking output 0 to 0 hands the argmax to output 1.
        let (out, _) = c
            .check(
                &x,
                0,
                &FaultModel::StuckAt {
                    layer: 0,
                    neuron: 0,
                    value: r(0),
                },
            )
            .unwrap();
        let w = out.witness().expect("dead target neuron must flip");
        assert!(w.description.contains("stuck at"));
        // Sticking the rival to a small value is harmless.
        let (out, _) = c
            .check(
                &x,
                0,
                &FaultModel::StuckAt {
                    layer: 0,
                    neuron: 1,
                    value: r(1),
                },
            )
            .unwrap();
        assert_eq!(out, FaultOutcome::Robust);
    }

    #[test]
    fn single_bit_flips_are_enumerated_completely() {
        let c = checker();
        let x = [r(100), r(82)];
        // A sign flip of weight (0,0) sends output 0 to −100 < 82.
        let (out, stats) = c.check(&x, 0, &FaultModel::BitFlips { budget: 1 }).unwrap();
        let w = out.witness().expect("sign flip must be found");
        assert!(w.description.contains("sign flip"), "{w:?}");
        assert!(stats.concrete_evals > 0);
        // Robust edge case: at x = (100, −100) every single flip ties at
        // worst (sign flip of w00 gives −100 = out1; sign flip of w11
        // gives out1 = 100 = out0) and the lower-index rule keeps L0 —
        // the complete enumeration proves it.
        let (out, _) = c
            .check(&[r(100), r(-100)], 0, &FaultModel::BitFlips { budget: 1 })
            .unwrap();
        assert_eq!(
            out,
            FaultOutcome::Robust,
            "complete enumeration proves budget-1 robustness"
        );
        // budget 0 is the fault-free network.
        let (out, _) = c
            .check(&[r(100), r(82)], 0, &FaultModel::BitFlips { budget: 0 })
            .unwrap();
        assert_eq!(out, FaultOutcome::Robust);
    }

    #[test]
    fn multi_flip_budget_is_sound_not_complete() {
        let c = checker();
        // Single-flip witnesses are within any budget ≥ 1, so the
        // enumeration still decides vulnerable margins.
        let (out, _) = c
            .check(&[r(100), r(82)], 0, &FaultModel::BitFlips { budget: 2 })
            .unwrap();
        assert!(
            out.witness().is_some(),
            "the single-flip witness is legal within budget 2: {out:?}"
        );
        // Budget-1-robust input that a *pair* of flips breaks (both sign
        // flips swap the outputs): the checker must not claim Robust —
        // the honest answer under the independent-interval lift is
        // Unknown.
        let (out, _) = c
            .check(&[r(100), r(-100)], 0, &FaultModel::BitFlips { budget: 2 })
            .unwrap();
        assert_eq!(out, FaultOutcome::Unknown);
        // A degenerate-but-provable case: the label's row is all zeros
        // (flips of zero are zero) and the rival's only path reads a
        // zero input — every flip leaves the 0-vs-0 tie in place and the
        // interval proof closes at the root for any budget.
        let tie_net = Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(0), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap();
        let c = FaultChecker::new(tie_net, FaultCheckerConfig::default());
        let (out, _) = c
            .check(&[r(7), r(0)], 0, &FaultModel::BitFlips { budget: 3 })
            .unwrap();
        assert_eq!(out, FaultOutcome::Robust);
    }

    #[test]
    fn quantization_model_tracks_precision() {
        // Weights quantized to 2^-bits: a 2-bit datapath has error ≤ 1/8,
        // enough to flip a tight margin; a 20-bit one is safe.
        let c = FaultChecker::new(
            Network::new(
                vec![DenseLayer::new(
                    Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                    vec![r(0), r(0)],
                    Activation::Identity,
                )
                .unwrap()],
                Readout::MaxPool,
            )
            .unwrap(),
            FaultCheckerConfig::default(),
        );
        let x = [r(100), r(99)];
        let (out, _) = c
            .check(&x, 0, &FaultModel::Quantization { denom_bits: 2 })
            .unwrap();
        assert!(
            out.witness().is_some(),
            "±1/8 per weight flips a 1% margin: {out:?}"
        );
        let (out, _) = c
            .check(&x, 0, &FaultModel::Quantization { denom_bits: 20 })
            .unwrap();
        assert_eq!(out, FaultOutcome::Robust);
    }

    #[test]
    fn fault_space_splitting_refines_unknown_roots() {
        // One faulted parameter dominating the verdict: the root interval
        // straddles the boundary, but splitting isolates the decidable
        // halves. Screening off forces the exact tier + splits to do it.
        let c = FaultChecker::new(
            comparator(),
            FaultCheckerConfig::default()
                .with_screening(ScreeningTier::None)
                .with_max_boxes(64),
        );
        let x = [r(100), r(82)];
        let (out, stats) = c
            .check(
                &x,
                0,
                &FaultModel::WeightNoise {
                    rel_eps: rq(5, 100),
                },
            )
            .unwrap();
        assert_eq!(out, FaultOutcome::Robust);
        assert!(stats.boxes_visited >= 1);
    }

    #[test]
    fn budget_exhaustion_reports_unknown_not_a_guess() {
        // Both outputs read the same faulted hidden neuron, so plain
        // intervals decorrelate at the root (the dependency problem); a
        // 1-box budget with screening off cannot refine and must say so.
        let shared = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(3), r(1)]]).unwrap(),
            vec![r(0)],
            Activation::Identity,
        )
        .unwrap();
        let split = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(1)], vec![r(1)]]).unwrap(),
            vec![r(5), r(0)],
            Activation::Identity,
        )
        .unwrap();
        let net = Network::new(vec![shared, split], Readout::MaxPool).unwrap();
        let c = FaultChecker::new(
            net,
            FaultCheckerConfig::default()
                .with_screening(ScreeningTier::None)
                .with_max_boxes(1),
        );
        let (out, stats) = c
            .check(
                &[r(10), r(10)],
                0,
                &FaultModel::WeightNoise { rel_eps: rq(1, 20) },
            )
            .unwrap();
        assert_eq!(out, FaultOutcome::Unknown, "{stats:?}");
        assert!(stats.budget_exhausted);
        // The cascade's zonotope tier decides the same query at the root
        // (shared fault symbols cancel in the output difference).
        let net = c.network().clone();
        let c = FaultChecker::new(net, FaultCheckerConfig::default().with_max_boxes(1));
        let (out, stats) = c
            .check(
                &[r(10), r(10)],
                0,
                &FaultModel::WeightNoise { rel_eps: rq(1, 20) },
            )
            .unwrap();
        assert_eq!(out, FaultOutcome::Robust, "{stats:?}");
        assert!(stats.zonotope_hits >= 1, "{stats:?}");
    }

    #[test]
    fn tolerance_bisection_matches_the_analytic_threshold() {
        let c = checker();
        for (x0, x1) in [(100i128, 82i128), (100, 95), (100, 50)] {
            let x = [r(x0), r(x1)];
            let search = ToleranceSearch::new(1000, 400);
            let (tol, _) = c.tolerance(&x, 0, &search).unwrap();
            let robust = tol.robust_eps.expect("correctly classified input");
            let threshold = analytic_flip_eps(x0, x1);
            // The certified value is the largest grid point ≤ threshold
            // (the tie itself stays robust via the lower-index rule).
            assert!(robust <= threshold, "({x0},{x1}): {robust} > {threshold}");
            let next = robust + rq(1, 1000);
            assert!(
                next > threshold || tol.first_failure == Some(next),
                "({x0},{x1}): grid neighbour {next} must cross or fail"
            );
            assert!(tol.probes >= 2);
        }
    }

    #[test]
    fn tolerance_handles_degenerate_grids_and_misclassified_inputs() {
        let c = checker();
        // Misclassified input: no ε is robust.
        let (tol, _) = c
            .tolerance(&[r(82), r(100)], 0, &ToleranceSearch::default())
            .unwrap();
        assert_eq!(tol.robust_eps, None);
        assert_eq!(tol.first_failure, Some(Rational::ZERO));
        // Single-point grid.
        let (tol, _) = c
            .tolerance(&[r(100), r(82)], 0, &ToleranceSearch::new(1000, 0))
            .unwrap();
        assert_eq!(tol.robust_eps, Some(Rational::ZERO));
        assert_eq!(tol.first_failure, None);
        // Fully robust through the grid.
        let (tol, _) = c
            .tolerance(&[r(100), r(10)], 0, &ToleranceSearch::new(100, 20))
            .unwrap();
        assert_eq!(tol.robust_eps, Some(rq(20, 100)));
        assert_eq!(tol.first_failure, None);
    }

    #[test]
    fn screening_tiers_agree_on_verdicts() {
        let x = [r(100), r(82)];
        for eps in [rq(1, 100), rq(5, 100), rq(9, 100), rq(15, 100)] {
            let model = FaultModel::WeightNoise { rel_eps: eps };
            let mut verdicts = Vec::new();
            for tier in ScreeningTier::ALL {
                let c = FaultChecker::new(
                    comparator(),
                    FaultCheckerConfig::default().with_screening(tier),
                );
                let (out, _) = c.check(&x, 0, &model).unwrap();
                verdicts.push((tier, out));
            }
            let (_, first) = &verdicts[0];
            for (tier, out) in &verdicts {
                assert_eq!(out, first, "tier {tier} disagrees at eps {eps}");
            }
        }
    }

    #[test]
    fn width_and_label_validation() {
        let c = checker();
        let model = FaultModel::WeightNoise {
            rel_eps: rq(1, 100),
        };
        assert!(c.check(&[r(1)], 0, &model).unwrap_err().contains("width"));
        assert!(c
            .check(&[r(1), r(2)], 7, &model)
            .unwrap_err()
            .contains("out of range"));
        assert!(c
            .check_with_noise(&[r(1), r(2)], 0, &NoiseRegion::symmetric(1, 3), &model)
            .unwrap_err()
            .contains("3 nodes"));
    }

    #[test]
    fn boxed_input_composes_with_fault_verdicts() {
        let c = checker();
        let x = [r(100), r(82)];
        let model = FaultModel::WeightNoise {
            rel_eps: rq(2, 100),
        };
        // ±2% input noise and ±2% weight noise together stay far from
        // the ≈9.9% flip threshold.
        let (out, _) = c
            .check_with_noise(&x, 0, &NoiseRegion::symmetric(2, 2), &model)
            .unwrap();
        assert_eq!(out, FaultOutcome::Robust);
        // ±12% input noise alone already flips — the joint claim fails
        // with a witness or stays undecided, never Robust.
        let (out, _) = c
            .check_with_noise(&x, 0, &NoiseRegion::symmetric(12, 2), &model)
            .unwrap();
        assert!(!out.is_robust(), "{out:?}");
    }

    #[test]
    fn config_presets() {
        assert_eq!(
            FaultCheckerConfig::default().screening,
            ScreeningTier::Cascade
        );
        assert_eq!(FaultCheckerConfig::default().with_max_boxes(0).max_boxes, 1);
        assert_eq!(FaultCheckerConfig::default().with_max_depth(4).max_depth, 4);
        assert_eq!(
            FaultCheckerConfig::default()
                .with_screening(ScreeningTier::Interval)
                .screening,
            ScreeningTier::Interval
        );
        assert_eq!(ToleranceSearch::default().denom, 1000);
        assert_eq!(ToleranceSearch::new(100, 25).max_eps(), rq(25, 100));
    }

    #[test]
    #[should_panic(expected = "denominator must be positive")]
    fn zero_denominator_grid_rejected() {
        let _ = ToleranceSearch::new(0, 10);
    }

    #[test]
    fn verdict_probe_tolerance_search_counts_unknown_as_failure() {
        // The historical wrapper: probes return verdicts, Unknown is a
        // failure — the certified value stops below the Unknown band.
        let result = tolerance_search(&ToleranceSearch::new(100, 10), |eps| {
            Ok::<_, String>(if eps <= rq(4, 100) {
                FaultOutcome::Robust
            } else {
                FaultOutcome::Unknown
            })
        })
        .unwrap();
        assert_eq!(result.robust_eps, Some(rq(4, 100)));
        assert_eq!(result.first_failure, Some(rq(5, 100)));
    }

    #[test]
    fn sigmoid_networks_error_instead_of_panicking() {
        // Resident owners hold a checker for any loadable model; the
        // admissibility failure must surface as a per-query error.
        let net = Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Sigmoid,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap();
        let c = FaultChecker::new(net, FaultCheckerConfig::default());
        let err = c
            .check(
                &[r(1), r(2)],
                0,
                &FaultModel::WeightNoise {
                    rel_eps: rq(1, 100),
                },
            )
            .unwrap_err();
        assert!(err.contains("piecewise-linear"), "{err}");
    }
}
