//! The engine's load-bearing correctness argument: answers served
//! through the verdict cache are **bit-identical** to fresh
//! `check_region` runs — same verdict, same deterministic DFS-first
//! witness — across every cache path (exact hit, subsumption hit, miss),
//! on random networks and randomly nested region chains.
//!
//! This is what licenses DESIGN.md §8's subsumption rules: `Robust`
//! monotonicity answers nested regions canonically, counterexample
//! containment answers verdict-level probes, and everything else misses
//! into the solver.

use fannet_engine::{Engine, EngineConfig};
use fannet_numeric::Rational;
use fannet_verify::bab::{check_region, CheckerConfig};
use fannet_verify::noise::ExclusionSet;
use fannet_verify::region::NoiseRegion;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_exact_net(seed: u64) -> fannet_nn::Network<Rational> {
    use fannet_nn::{init, quantize, Activation};
    let mut rng = StdRng::seed_from_u64(seed);
    let net = init::fresh_network(
        &mut rng,
        &[2, 3, 2],
        Activation::ReLU,
        init::Init::Uniform(1.5),
    );
    quantize::to_rational(&net, 8)
}

/// A random region with per-node bounds in `[-6, 6]`.
fn random_region(rng: &mut StdRng) -> NoiseRegion {
    let ranges = (0..2)
        .map(|_| {
            let lo = rng.gen_range(-6i64..=0);
            let hi = rng.gen_range(0i64..=6);
            (lo, hi)
        })
        .collect();
    NoiseRegion::new(ranges)
}

/// A random sub-box of `outer` (possibly `outer` itself).
fn random_subregion(rng: &mut StdRng, outer: &NoiseRegion) -> NoiseRegion {
    let ranges = outer
        .ranges()
        .iter()
        .map(|&(lo, hi)| {
            let new_lo = rng.gen_range(lo..=hi);
            let new_hi = rng.gen_range(new_lo..=hi);
            (new_lo, new_hi)
        })
        .collect();
    NoiseRegion::new(ranges)
}

fn serving_engine(net: &fannet_nn::Network<Rational>) -> Engine {
    Engine::new(
        net.clone(),
        EngineConfig {
            // Cascade (interval → zonotope → exact) is the strictest
            // cross-check here: every cached answer must still be
            // bit-identical to the *serial-exact* cold baseline below,
            // whichever screening tier decided each box.
            checker: CheckerConfig::cascade(),
            cache_capacity: 64,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Every engine answer over a randomly nested/repeated region chain
    /// equals the cold serial-exact checker's answer bit for bit — the
    /// cache may change *who* answers, never *what* is answered.
    #[test]
    fn engine_checks_are_bit_identical_to_cold_checks(
        seed in 0u64..400,
        x0 in -30i64..30,
        x1 in -30i64..30,
        qseed in 0u64..1000,
    ) {
        let net = random_exact_net(seed);
        let engine = serving_engine(&net);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let label = net.classify(&x).expect("width");

        let mut rng = StdRng::seed_from_u64(qseed);
        let mut history: Vec<NoiseRegion> = Vec::new();
        for step in 0..10 {
            // Mix the three access shapes the cache distinguishes:
            // fresh regions (misses), sub-regions of earlier queries
            // (subsumption candidates), and literal repeats (exact hits).
            let region = match (step, rng.gen_range(0u8..4)) {
                (0, _) | (_, 0) => random_region(&mut rng),
                (_, 1) => {
                    let base = &history[rng.gen_range(0..history.len())];
                    random_subregion(&mut rng, base)
                }
                _ => history[rng.gen_range(0..history.len())].clone(),
            };

            let reply = engine.check(&x, label, &region).expect("widths");
            let (cold, _) =
                check_region(&net, &x, label, &region, &ExclusionSet::new()).expect("widths");
            prop_assert_eq!(
                &reply.outcome, &cold,
                "witness-bearing answer differs from cold solver via {:?}", reply.source
            );

            // The verdict-level path (counterexample containment allowed)
            // must agree on robustness.
            let (robust, _) = engine.check_verdict(&x, label, &region).expect("widths");
            prop_assert_eq!(robust, cold.is_robust());

            history.push(region);
        }
        // Accounting: one counted lookup per check/check_verdict call.
        prop_assert_eq!(engine.stats().lookups(), 20);
    }

    /// The incremental tolerance search returns exactly the cold binary
    /// search's radius, cold and from a warm cache, with arbitrary check
    /// traffic interleaved.
    #[test]
    fn engine_tolerance_equals_cold_radius(
        seed in 0u64..400,
        x0 in -30i64..30,
        x1 in -30i64..30,
        max_delta in 1i64..12,
    ) {
        let net = random_exact_net(seed);
        let engine = serving_engine(&net);
        let x = [
            Rational::from_integer(i128::from(x0)),
            Rational::from_integer(i128::from(x1)),
        ];
        let label = net.classify(&x).expect("width");

        // Cold oracle: the smallest flipping δ by direct probing (the
        // region grid here is small enough for a linear scan, which is
        // also the most obviously correct spelling).
        let has_ce = |delta: i64| {
            let region = NoiseRegion::symmetric(delta, 2);
            let (out, _) =
                check_region(&net, &x, label, &region, &ExclusionSet::new()).expect("widths");
            !out.is_robust()
        };
        let oracle = (1..=max_delta).find(|&d| has_ce(d));

        prop_assert_eq!(engine.tolerance(&x, label, max_delta).expect("widths"), oracle);
        // Interleave check traffic, then re-search warm: same radius.
        let _ = engine.check(&x, label, &NoiseRegion::symmetric(max_delta.min(3), 2));
        prop_assert_eq!(engine.tolerance(&x, label, max_delta).expect("widths"), oracle);
    }
}

/// Deterministic companion: a nested chain must traverse all three cache
/// paths, and the subsumed answers must still be canonical.
#[test]
fn nested_chain_exercises_every_cache_path() {
    // A comparator is robust at small deltas for a separated input, so
    // nested queries after a wide robust proof are subsumption hits.
    let r = |n: i128| Rational::from_integer(n);
    let net = {
        use fannet_nn::{Activation, DenseLayer, Network, Readout};
        use fannet_tensor::Matrix;
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    };
    let engine = serving_engine(&net);
    let x = [r(100), r(82)];
    for delta in [9, 6, 3, 9, 1] {
        let region = NoiseRegion::symmetric(delta, 2);
        let reply = engine.check(&x, 0, &region).expect("widths");
        let (cold, _) = check_region(&net, &x, 0, &region, &ExclusionSet::new()).expect("widths");
        assert_eq!(reply.outcome, cold, "±{delta}");
    }
    let s = engine.stats();
    assert_eq!(s.misses, 1, "only ±9 should reach the solver: {s:?}");
    assert_eq!(s.exact_hits, 1, "the ±9 repeat: {s:?}");
    assert_eq!(s.subsumption_hits, 3, "±6/±3/±1 nested under ±9: {s:?}");
}
