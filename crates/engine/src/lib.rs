//! # fannet-engine
//!
//! The persistent verification query engine (DESIGN.md §8): everything
//! the FANNet analyses need to stop paying for cold starts.
//!
//! PR 1 made a single P2 query fast; this crate makes *workloads* fast.
//! The paper's headline analyses — noise-tolerance sweeps, per-node
//! sensitivity, bias flows — decompose into thousands of region queries
//! against the *same* trained network, and those queries are heavily
//! related: a region proven robust proves every nested region, a found
//! counterexample decides every region containing it. A resident
//! [`Engine`] exploits that structure:
//!
//! * [`engine`] — owns the network, its content [`fingerprint`]
//!   namespace, the float shadow and the checker configuration; answers
//!   witness-exact checks, verdict-level probes, incremental tolerance
//!   searches and P3 extractions.
//! * [`cache`] — the subsumption-aware LRU verdict cache with
//!   [`EngineStats`] accounting.
//! * [`batch`] — order-preserving parallel dispatch of independent
//!   requests against one engine.
//! * [`protocol`] — the JSONL request/response wire format of
//!   `fannet serve`.
//!
//! Soundness is inherited, never traded: every cache rule is a theorem
//! about the checker's semantics (DESIGN.md §8), and every answer the
//! engine returns for a witness-bearing query is bit-identical to a cold
//! `check_region` run — enforced by `tests/engine_equivalence.rs`.
//!
//! ## Example
//!
//! ```
//! use fannet_engine::{Engine, EngineConfig};
//! use fannet_nn::{Activation, DenseLayer, Network, Readout};
//! use fannet_numeric::Rational;
//! use fannet_tensor::Matrix;
//! use fannet_verify::region::NoiseRegion;
//!
//! let r = |n: i128| Rational::from_integer(n);
//! let net = Network::new(vec![DenseLayer::new(
//!     Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]])?,
//!     vec![r(0), r(0)],
//!     Activation::Identity,
//! )?], Readout::MaxPool)?;
//!
//! let engine = Engine::new(net, EngineConfig::serving());
//! let x = [r(100), r(82)];
//! // First answer runs the solver; the repeat is an exact cache hit.
//! let cold = engine.check(&x, 0, &NoiseRegion::symmetric(5, 2))?;
//! let warm = engine.check(&x, 0, &NoiseRegion::symmetric(5, 2))?;
//! assert_eq!(cold.outcome, warm.outcome);
//! assert_eq!(engine.stats().exact_hits, 1);
//! // The robust proof at ±5 also answers any nested region.
//! let nested = engine.check(&x, 0, &NoiseRegion::symmetric(2, 2))?;
//! assert!(nested.outcome.is_robust());
//! assert_eq!(engine.stats().subsumption_hits, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod batch;
pub mod cache;
pub mod engine;
pub mod protocol;
pub mod stats;

pub use engine::{AnswerSource, CheckReply, Engine, EngineConfig, FaultReply, JointReply};
pub use fannet_nn::fingerprint;
pub use stats::{
    ConnectionInfo, EngineStats, LatencyStats, OpCounts, OpLatency, OpWindow, PhaseLatencyStats,
    ServerStats, WindowStats, CONNECTION_TABLE_ROWS,
};
