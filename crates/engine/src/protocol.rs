//! The JSONL request/response protocol of `fannet serve` (DESIGN.md §8).
//!
//! One request per line, one response per line, `i`-th response
//! answering the `i`-th request — over stdin/stdout (`fannet serve`) or
//! a TCP connection (`fannet listen`, DESIGN.md §13). The operations:
//!
//! ```text
//! {"op":"check","id":1,"input":["100","82"],"label":0,"delta":5}
//! {"op":"check","input":["100","82"],"label":0,"region":[[-5,5],[0,3]]}
//! {"op":"tolerance","input":["100","82"],"label":0,"max_delta":50}
//! {"op":"sensitivity","input":["100","99"],"label":0,"delta":3,"cap":10}
//! {"op":"fault_check","input":["100","82"],"label":0,"model":"weight-noise","eps":"1/50"}
//! {"op":"fault_check","input":["100","82"],"label":0,"model":"stuck-at","layer":0,"neuron":1,"value":"0"}
//! {"op":"fault_check","input":["100","82"],"label":0,"model":"bit-flips","budget":1}
//! {"op":"fault_check","input":["100","82"],"label":0,"model":"quantization","denom_bits":8}
//! {"op":"fault_tolerance","input":["100","82"],"label":0,"denom":1000,"max_numer":200}
//! {"op":"joint_check","input":["100","82"],"label":0,"delta":3,"model":"weight-noise","eps":"1/50"}
//! {"op":"joint_tolerance","input":["100","82"],"label":0,"delta":3,"denom":100,"max_numer":25}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! ```
//!
//! Inputs are exact rationals: strings (`"82"`, `"3/4"`, `"-1.25"`) or
//! bare JSON integers. `delta` is shorthand for the symmetric region
//! `±delta` over every input node; `region` gives explicit per-node
//! `[lo, hi]` percent bounds. `id` is an optional client tag echoed back
//! verbatim; `max_delta` defaults to 50 and `cap` to 100. Fault queries
//! (DESIGN.md §11) name a [`FaultModel`] by its kind plus flat model
//! parameters; `fault_tolerance` bisects relative weight noise on the
//! grid `{0, 1/denom, …, max_numer/denom}` (defaults 1000 and 200).
//! Joint queries (DESIGN.md §12) combine an input-noise region with a
//! fault model — `joint_check` decides the product claim, and
//! `joint_tolerance` bisects ε at a fixed ±`delta` (default 0, which
//! degenerates to `fault_tolerance`).
//!
//! Every solver-backed op additionally accepts `"trace":true` to attach
//! a per-query cost trace ([`QueryTrace`]: wall nanoseconds, cache
//! outcome, per-tier time and counters) to its response — verdicts and
//! witnesses stay bit-identical (DESIGN.md §14). `metrics` renders the
//! process-wide latency histograms as Prometheus text exposition.
//!
//! Responses are flat JSON objects tagged with the same `op` (or
//! `"error"`), e.g.:
//!
//! ```text
//! {"op":"check","id":1,"verdict":"robust","source":"solver","stats":{…},"search":{…}}
//! {"op":"check","verdict":"counterexample","source":"exact_hit",
//!  "noise":[-12,4],"predicted":1,"expected":0,
//!  "noisy_input":["88/1","…"],"outputs":["…"],"stats":{…},"search":{…}}
//! {"op":"tolerance","radius":12}            // null ⇔ robust through ±max_delta
//! {"op":"joint_check","verdict":"vulnerable","noise":[-3,3],"fault":"…","source":"solver","stats":{…}}
//! {"op":"sensitivity","count":4,"exhausted":true,"nodes":[{"node":0,…}]}
//! {"op":"stats","fingerprint":"…","exact_hits":…,"cache_len":…,"solver":{…},"server":{…}}
//! {"op":"shutdown","ok":true}
//! {"op":"error","id":7,"message":"label 3 out of range for 2 outputs"}
//! ```
//!
//! When a serving front end answers a `stats` request it adds a
//! `server` object (uptime, qps, queue gauges, per-op dispatch counts —
//! [`crate::stats::ServerStats`]) after the legacy keys; a bare
//! [`handle`] call leaves it out. `shutdown` asks the front end to
//! drain and exit: in-flight requests finish and their responses are
//! delivered, then the session closes (DESIGN.md §13).
//!
//! Since the `fannet-search` extraction, solver counters ride in **two**
//! forms: the historical per-domain shape under the legacy keys
//! (`stats`, `solver`, `fault_solver` — byte-compatible with pre-unification
//! clients) and the unified [`FaultStats`]/`SearchStats` block under
//! `search` (respectively `solver_search`/`fault_solver_search`; the
//! new joint ops carry only the unified form).
//!
//! The wire impls are written by hand against the serde shim's `Value`
//! data model: the derive shim has no field attributes, and a protocol
//! wants lowercase tags, optional fields and flat objects.

use std::panic::{catch_unwind, AssertUnwindSafe};

use fannet_faults::{
    FaultModel, FaultOutcome, FaultStats, FaultTolerance, JointOutcome, JointTolerance,
    ToleranceSearch,
};
use fannet_numeric::Rational;
use fannet_search::TierTimer;
use fannet_verify::bab::{BabStats, RegionOutcome};
use fannet_verify::exact::Counterexample;
use fannet_verify::region::NoiseRegion;
use serde::de::{take_entry, DeserializeOwned};
use serde::{Deserialize, Serialize, Serializer, Value};

use crate::engine::{AnswerSource, Engine};
use crate::stats::EngineStats;

/// Default `max_delta` of a `tolerance` request.
pub const DEFAULT_MAX_DELTA: i64 = 50;
/// Default counterexample cap of a `sensitivity` request.
pub const DEFAULT_CAP: usize = 100;

/// One decoded request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Witness-exact P2 check over a region.
    Check {
        /// Client tag echoed in the response.
        id: Option<u64>,
        /// Exact input vector.
        input: Vec<Rational>,
        /// Expected label `Sx`.
        label: usize,
        /// Region to certify.
        region: NoiseRegion,
        /// `true` to attach a per-query cost trace to the response
        /// (DESIGN.md §14). Never changes the verdict or witness.
        trace: bool,
    },
    /// Exact robustness radius by incremental binary search.
    Tolerance {
        /// Client tag echoed in the response.
        id: Option<u64>,
        /// Exact input vector.
        input: Vec<Rational>,
        /// Expected label `Sx`.
        label: usize,
        /// Largest radius probed.
        max_delta: i64,
        /// `true` to attach a per-query cost trace to the response.
        trace: bool,
    },
    /// Per-node noise-sign statistics over extracted counterexamples.
    Sensitivity {
        /// Client tag echoed in the response.
        id: Option<u64>,
        /// Exact input vector.
        input: Vec<Rational>,
        /// Expected label `Sx`.
        label: usize,
        /// Region to extract from.
        region: NoiseRegion,
        /// Maximum counterexamples to extract.
        cap: usize,
    },
    /// Weight-fault robustness check (DESIGN.md §11).
    FaultCheck {
        /// Client tag echoed in the response.
        id: Option<u64>,
        /// Exact input vector.
        input: Vec<Rational>,
        /// Expected label `Sx`.
        label: usize,
        /// The fault model to verify against.
        model: FaultModel,
        /// `true` to attach a per-query cost trace to the response.
        trace: bool,
    },
    /// Weight-noise fault-tolerance bisection.
    FaultTolerance {
        /// Client tag echoed in the response.
        id: Option<u64>,
        /// Exact input vector.
        input: Vec<Rational>,
        /// Expected label `Sx`.
        label: usize,
        /// The ε grid searched.
        search: ToleranceSearch,
        /// `true` to attach a per-query cost trace to the response.
        trace: bool,
    },
    /// Joint input-noise × weight-fault robustness check (DESIGN.md §12).
    JointCheck {
        /// Client tag echoed in the response.
        id: Option<u64>,
        /// Exact input vector.
        input: Vec<Rational>,
        /// Expected label `Sx`.
        label: usize,
        /// The input-noise factor of the product claim.
        region: NoiseRegion,
        /// The weight-fault factor of the product claim.
        model: FaultModel,
        /// `true` to attach a per-query cost trace to the response.
        trace: bool,
    },
    /// Joint weight-noise tolerance at a fixed input-noise radius.
    JointTolerance {
        /// Client tag echoed in the response.
        id: Option<u64>,
        /// Exact input vector.
        input: Vec<Rational>,
        /// Expected label `Sx`.
        label: usize,
        /// Symmetric input-noise radius (±δ%).
        delta: i64,
        /// The ε grid searched.
        search: ToleranceSearch,
        /// `true` to attach a per-query cost trace to the response.
        trace: bool,
    },
    /// Engine/cache/solver counters.
    Stats {
        /// Client tag echoed in the response.
        id: Option<u64>,
    },
    /// Prometheus-style text exposition of latency histograms
    /// (DESIGN.md §14): per-tier solver time from the process-global
    /// span registry, plus per-op request latency when a serving front
    /// end enriches the reply.
    Metrics {
        /// Client tag echoed in the response.
        id: Option<u64>,
    },
    /// Graceful drain: the front end acknowledges, finishes in-flight
    /// requests and exits (DESIGN.md §13). The engine itself is
    /// untouched — this op exists so a TCP server, which never sees a
    /// stdin EOF, has an in-band way to stop.
    Shutdown {
        /// Client tag echoed in the response.
        id: Option<u64>,
    },
}

/// Per-node sign statistics of a `sensitivity` reply (the serving-side
/// counterpart of `fannet_core::sensitivity::NodeSensitivity`, computed
/// here because the engine sits below `fannet-core` in the crate DAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSigns {
    /// Input node (0-based).
    pub node: usize,
    /// Extracted vectors with strictly positive noise here.
    pub positive: usize,
    /// Extracted vectors with strictly negative noise here.
    pub negative: usize,
    /// Extracted vectors with zero noise here.
    pub zero: usize,
    /// Largest positive percent observed.
    pub max_positive: i64,
    /// Most negative percent observed.
    pub min_negative: i64,
}

/// Per-query cost attribution (DESIGN.md §14): wall time, cache
/// outcome, and per-tier nanoseconds of one answered query. Attached to
/// a response only when the request asked (`"trace": true`); also
/// surfaced to the serving session for slow-query logging.
///
/// Serialized as:
///
/// ```text
/// "trace":{"wall_ns":…,"cache":"exact"|"subsumed"|"miss",
///          "tiers":{"interval":{"ns":…,"hits":…,"fallbacks":…},
///                   "zonotope":{…},
///                   "exact":{"ns":…,"decisions":…,"fallbacks":…,"evals":…}},
///          "boxes_visited":…,"depth_high_water":…[,"queue_ns":…]}
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTrace {
    /// Wall-clock nanoseconds of the whole engine call (cache lookups
    /// and witness handling included, framing excluded).
    pub wall_ns: u64,
    /// How the cache answered ([`AnswerSource`]); for tolerance
    /// bisections, the aggregate over every probe.
    pub cache: AnswerSource,
    /// Solver counters of the answer, timing fields populated (zero on
    /// cache hits — the cache did no tier work).
    pub stats: fannet_search::SearchStats,
    /// Nanoseconds the request waited in the serving queue before a
    /// worker dispatched it (DESIGN.md §15). The bare engine has no
    /// queue, so [`handle_traced`] leaves this `None` and the key is
    /// omitted; the serving session fills it before rendering.
    pub queue_ns: Option<u64>,
}

impl QueryTrace {
    /// The wire spelling of the cache outcome.
    #[must_use]
    pub fn cache_name(&self) -> &'static str {
        match self.cache {
            AnswerSource::ExactHit => "exact",
            AnswerSource::SubsumptionHit => "subsumed",
            AnswerSource::Solver => "miss",
        }
    }
}

impl Serialize for QueryTrace {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        struct Tiers<'a>(&'a fannet_search::SearchStats);
        struct Screen {
            ns: u64,
            hits: u64,
            fallbacks: u64,
        }
        struct Exact<'a>(&'a fannet_search::SearchStats);
        impl Serialize for Screen {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                use serde::ser::SerializeStruct as _;
                let mut st = serializer.serialize_struct("Screen", 3)?;
                st.serialize_field("ns", &self.ns)?;
                st.serialize_field("hits", &self.hits)?;
                st.serialize_field("fallbacks", &self.fallbacks)?;
                st.end()
            }
        }
        impl Serialize for Exact<'_> {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                use serde::ser::SerializeStruct as _;
                let s = self.0;
                let mut st = serializer.serialize_struct("Exact", 4)?;
                st.serialize_field("ns", &s.exact_ns)?;
                st.serialize_field("decisions", &s.exact_decisions)?;
                st.serialize_field("fallbacks", &s.exact_fallbacks)?;
                st.serialize_field("evals", &s.exact_evals)?;
                st.end()
            }
        }
        impl Serialize for Tiers<'_> {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                use serde::ser::SerializeStruct as _;
                let s = self.0;
                let mut st = serializer.serialize_struct("Tiers", 3)?;
                st.serialize_field(
                    "interval",
                    &Screen {
                        ns: s.interval_ns,
                        hits: s.interval_hits,
                        fallbacks: s.interval_fallbacks,
                    },
                )?;
                st.serialize_field(
                    "zonotope",
                    &Screen {
                        ns: s.zonotope_ns,
                        hits: s.zonotope_hits,
                        fallbacks: s.zonotope_fallbacks,
                    },
                )?;
                st.serialize_field("exact", &Exact(s))?;
                st.end()
            }
        }
        let mut st = serializer.serialize_struct("QueryTrace", 6)?;
        st.serialize_field("wall_ns", &self.wall_ns)?;
        st.serialize_field("cache", self.cache_name())?;
        st.serialize_field("tiers", &Tiers(&self.stats))?;
        st.serialize_field("boxes_visited", &self.stats.boxes_visited)?;
        st.serialize_field("depth_high_water", &self.stats.depth_high_water)?;
        if let Some(queue_ns) = self.queue_ns {
            st.serialize_field("queue_ns", &queue_ns)?;
        }
        st.end()
    }
}

/// One request's lifecycle phase breakdown (DESIGN.md §15), kept by
/// the serving session in a bounded ring and surfaced through the
/// `metrics` op's `recent` field — the queryable twin of a
/// `--trace-out` timeline row.
///
/// Serialized as
/// `{"conn":…[,"id":…],"op":"…","queue_ns":…,"service_ns":…,
///   "sequence_ns":…,"write_ns":…,"wall_ns":…}` with `id` omitted for
/// untagged requests (matching every other response surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTimeline {
    /// The submitting connection's session-unique id.
    pub conn: u64,
    /// Echo of the request tag.
    pub id: Option<u64>,
    /// The request's operation name (`"invalid"` for undecodable lines).
    pub op: &'static str,
    /// Nanoseconds waited in the bounded queue.
    pub queue_ns: u64,
    /// Nanoseconds inside the engine call.
    pub service_ns: u64,
    /// Nanoseconds parked in the per-connection sequencer.
    pub sequence_ns: u64,
    /// Nanoseconds writing the response line.
    pub write_ns: u64,
    /// Nanoseconds from enqueue to the write's return; the four phases
    /// sum to at most this (the remainder is scheduling slack).
    pub wall_ns: u64,
}

impl Serialize for RequestTimeline {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("RequestTimeline", 8)?;
        st.serialize_field("conn", &self.conn)?;
        if let Some(id) = self.id {
            st.serialize_field("id", &id)?;
        }
        st.serialize_field("op", self.op)?;
        st.serialize_field("queue_ns", &self.queue_ns)?;
        st.serialize_field("service_ns", &self.service_ns)?;
        st.serialize_field("sequence_ns", &self.sequence_ns)?;
        st.serialize_field("write_ns", &self.write_ns)?;
        st.serialize_field("wall_ns", &self.wall_ns)?;
        st.end()
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
// One transient value per answered request; the size spread (the
// `Stats` reply carries three full counter blocks) costs nothing worth
// an indirection.
#[allow(clippy::large_enum_variant)]
pub enum Response {
    /// Answer to [`Request::Check`].
    Check {
        /// Echo of the request tag.
        id: Option<u64>,
        /// Canonical outcome (verdict and witness).
        outcome: RegionOutcome,
        /// Cache path that produced it.
        source: AnswerSource,
        /// Solver counters of this answer (zero on cache hits).
        stats: BabStats,
        /// Cost attribution, present iff the request set `"trace"`.
        trace: Option<QueryTrace>,
    },
    /// Answer to [`Request::Tolerance`].
    Tolerance {
        /// Echo of the request tag.
        id: Option<u64>,
        /// Smallest flipping `δ`, `None` if robust through `±max_delta`.
        radius: Option<i64>,
        /// The `max_delta` that bounded the search.
        max_delta: i64,
        /// Cost attribution, present iff the request set `"trace"`.
        trace: Option<QueryTrace>,
    },
    /// Answer to [`Request::FaultCheck`].
    FaultCheck {
        /// Echo of the request tag.
        id: Option<u64>,
        /// The verdict (with witness, when vulnerable).
        outcome: FaultOutcome,
        /// Cache path that produced it.
        source: AnswerSource,
        /// Fault-checker counters of this answer (zero on cache hits).
        stats: FaultStats,
        /// Cost attribution, present iff the request set `"trace"`.
        trace: Option<QueryTrace>,
    },
    /// Answer to [`Request::FaultTolerance`].
    FaultTolerance {
        /// Echo of the request tag.
        id: Option<u64>,
        /// The bisection result.
        tolerance: FaultTolerance,
        /// The grid that bounded the search.
        search: ToleranceSearch,
        /// Cost attribution, present iff the request set `"trace"`.
        trace: Option<QueryTrace>,
    },
    /// Answer to [`Request::JointCheck`].
    JointCheck {
        /// Echo of the request tag.
        id: Option<u64>,
        /// The verdict (with joint witness, when vulnerable).
        outcome: JointOutcome,
        /// Cache path that produced it.
        source: AnswerSource,
        /// Joint-checker counters of this answer (zero on cache hits).
        stats: FaultStats,
        /// Cost attribution, present iff the request set `"trace"`.
        trace: Option<QueryTrace>,
    },
    /// Answer to [`Request::JointTolerance`].
    JointTolerance {
        /// Echo of the request tag.
        id: Option<u64>,
        /// The bisection result.
        tolerance: JointTolerance,
        /// The input-noise radius that fixed the δ axis.
        delta: i64,
        /// The grid that bounded the ε search.
        search: ToleranceSearch,
        /// Cost attribution, present iff the request set `"trace"`.
        trace: Option<QueryTrace>,
    },
    /// Answer to [`Request::Sensitivity`].
    Sensitivity {
        /// Echo of the request tag.
        id: Option<u64>,
        /// Counterexamples extracted.
        count: usize,
        /// `true` iff the region was exhausted before the cap.
        exhausted: bool,
        /// Per-node sign statistics.
        nodes: Vec<NodeSigns>,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// Echo of the request tag.
        id: Option<u64>,
        /// The served network's content fingerprint (cache namespace).
        fingerprint: String,
        /// Cache counters.
        engine: EngineStats,
        /// Verdicts currently cached.
        cache_len: usize,
        /// Cumulative solver counters.
        solver: BabStats,
        /// Fault-cache counters.
        fault_cache: crate::cache::FaultCacheStats,
        /// Fault verdicts currently cached.
        fault_cache_len: usize,
        /// Cumulative fault-checker counters.
        fault_solver: FaultStats,
        /// Joint-cache counters.
        joint_cache: crate::cache::ExactCacheStats,
        /// Joint verdicts currently cached.
        joint_cache_len: usize,
        /// Cumulative joint-checker counters.
        joint_solver: FaultStats,
        /// Front-end metrics (uptime, qps, queue depth, per-op counts),
        /// filled by the serving session that owns the sockets; `None`
        /// when the request was answered outside a serving front end
        /// (e.g. a bare [`handle`] call).
        server: Option<crate::stats::ServerStats>,
    },
    /// Answer to [`Request::Metrics`]: Prometheus-style text exposition.
    Metrics {
        /// Echo of the request tag.
        id: Option<u64>,
        /// The exposition body (may be empty when nothing was recorded
        /// yet). A serving front end appends its per-op request-latency
        /// families before rendering.
        text: String,
        /// The last requests' phase timelines, oldest first, filled by
        /// the serving session's bounded ring; empty (and omitted from
        /// the wire) outside a serving front end.
        recent: Vec<RequestTimeline>,
    },
    /// Answer to [`Request::Shutdown`]: the drain is acknowledged before
    /// the front end stops reading.
    Shutdown {
        /// Echo of the request tag.
        id: Option<u64>,
    },
    /// Any failure: malformed line, bad query, or a solver panic.
    Error {
        /// Echo of the request tag, when one was decoded.
        id: Option<u64>,
        /// Human-readable cause.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Request decoding
// ---------------------------------------------------------------------------

fn field_error(msg: impl std::fmt::Display) -> String {
    msg.to_string()
}

fn rational_from_value(v: Value) -> Result<Rational, String> {
    match v {
        Value::Str(s) => s
            .parse::<Rational>()
            .map_err(|e| field_error(format!("bad input component: {e}"))),
        Value::Int(n) => Ok(Rational::from_integer(n)),
        other => Err(field_error(format!(
            "input components must be strings or integers, found {other:?}"
        ))),
    }
}

fn take_input(m: &mut Vec<(String, Value)>) -> Result<Vec<Rational>, String> {
    match take_entry(m, "input") {
        Some(Value::Seq(items)) => items.into_iter().map(rational_from_value).collect(),
        Some(other) => Err(format!("`input` must be an array, found {other:?}")),
        None => Err("missing field `input`".to_string()),
    }
}

fn take_parsed<T: DeserializeOwned>(
    m: &mut Vec<(String, Value)>,
    field: &str,
) -> Result<Option<T>, String> {
    match take_entry(m, field) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => serde::de::from_value(v)
            .map(Some)
            .map_err(|e| format!("bad `{field}`: {e}")),
    }
}

fn take_required<T: DeserializeOwned>(
    m: &mut Vec<(String, Value)>,
    field: &str,
) -> Result<T, String> {
    take_parsed(m, field)?.ok_or_else(|| format!("missing field `{field}`"))
}

/// Resolves the `delta` / `region` pair into a validated [`NoiseRegion`].
fn take_region(m: &mut Vec<(String, Value)>, nodes: usize) -> Result<NoiseRegion, String> {
    let delta: Option<i64> = take_parsed(m, "delta")?;
    let ranges: Option<Vec<(i64, i64)>> = take_parsed(m, "region")?;
    match (delta, ranges) {
        (Some(_), Some(_)) => Err("give either `delta` or `region`, not both".to_string()),
        (Some(d), None) => {
            if !(0..=100).contains(&d) {
                return Err(format!("delta {d} outside the model's [0, 100] range"));
            }
            Ok(NoiseRegion::symmetric(d, nodes))
        }
        (None, Some(r)) => NoiseRegion::try_new(r),
        (None, None) => Err("missing field `delta` (or `region`)".to_string()),
    }
}

/// Resolves the flat fault-model fields of a `fault_check` request.
fn take_fault_model(m: &mut Vec<(String, Value)>) -> Result<FaultModel, String> {
    let kind = match take_entry(m, "model") {
        Some(Value::Str(s)) => s,
        Some(other) => return Err(format!("`model` must be a string, found {other:?}")),
        None => return Err("missing field `model`".to_string()),
    };
    match kind.as_str() {
        "weight-noise" | "weight_noise" => {
            let rel_eps: Rational = take_required(m, "eps")?;
            if rel_eps.is_negative() {
                return Err(format!(
                    "weight-noise eps must be non-negative, got {rel_eps}"
                ));
            }
            Ok(FaultModel::WeightNoise { rel_eps })
        }
        "stuck-at" | "stuck_at" => Ok(FaultModel::StuckAt {
            layer: take_required(m, "layer")?,
            neuron: take_required(m, "neuron")?,
            value: take_required(m, "value")?,
        }),
        "bit-flips" | "bit_flips" => Ok(FaultModel::BitFlips {
            budget: take_required(m, "budget")?,
        }),
        "quantization" => {
            let bits: usize = take_required(m, "denom_bits")?;
            if bits >= 126 {
                return Err(format!("denom_bits {bits} overflows the exact domain"));
            }
            Ok(FaultModel::Quantization {
                denom_bits: bits as u32,
            })
        }
        other => Err(format!(
            "unknown fault model `{other}` (expected weight-noise/stuck-at/bit-flips/quantization)"
        )),
    }
}

/// Resolves the `denom` / `max_numer` pair of a tolerance-grid request.
fn take_tolerance_grid(m: &mut Vec<(String, Value)>) -> Result<ToleranceSearch, String> {
    let denom: i64 = take_parsed(m, "denom")?.unwrap_or(1000);
    let max_numer: i64 = take_parsed(m, "max_numer")?.unwrap_or(200);
    if denom <= 0 {
        return Err(format!("denom must be positive, got {denom}"));
    }
    if max_numer < 0 {
        return Err(format!("max_numer must be non-negative, got {max_numer}"));
    }
    Ok(ToleranceSearch::new(
        i128::from(denom),
        i128::from(max_numer),
    ))
}

/// Decodes one JSONL line into a [`Request`].
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, unknown ops,
/// missing fields or out-of-model regions. The caller wraps it into a
/// [`Response::Error`] so one bad line never kills a serving session.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value: Value = ValueDocument::parse(line)?;
    let Value::Map(mut m) = value else {
        return Err("request line must be a JSON object".to_string());
    };
    let op = match take_entry(&mut m, "op") {
        Some(Value::Str(s)) => s,
        Some(other) => return Err(format!("`op` must be a string, found {other:?}")),
        None => return Err("missing field `op`".to_string()),
    };
    let id: Option<u64> = take_parsed(&mut m, "id")?;
    let trace: bool = take_parsed(&mut m, "trace")?.unwrap_or(false);
    match op.as_str() {
        "check" => {
            let input = take_input(&mut m)?;
            let label = take_required(&mut m, "label")?;
            let region = take_region(&mut m, input.len())?;
            Ok(Request::Check {
                id,
                input,
                label,
                region,
                trace,
            })
        }
        "tolerance" => {
            let input = take_input(&mut m)?;
            let label = take_required(&mut m, "label")?;
            let max_delta = take_parsed(&mut m, "max_delta")?.unwrap_or(DEFAULT_MAX_DELTA);
            if !(1..=100).contains(&max_delta) {
                return Err(format!("max_delta {max_delta} outside [1, 100]"));
            }
            Ok(Request::Tolerance {
                id,
                input,
                label,
                max_delta,
                trace,
            })
        }
        "sensitivity" => {
            let input = take_input(&mut m)?;
            let label = take_required(&mut m, "label")?;
            let region = take_region(&mut m, input.len())?;
            let cap = take_parsed(&mut m, "cap")?.unwrap_or(DEFAULT_CAP);
            if cap == 0 {
                return Err("cap must be positive".to_string());
            }
            Ok(Request::Sensitivity {
                id,
                input,
                label,
                region,
                cap,
            })
        }
        "fault_check" => {
            let input = take_input(&mut m)?;
            let label = take_required(&mut m, "label")?;
            let model = take_fault_model(&mut m)?;
            Ok(Request::FaultCheck {
                id,
                input,
                label,
                model,
                trace,
            })
        }
        "fault_tolerance" => {
            let input = take_input(&mut m)?;
            let label = take_required(&mut m, "label")?;
            let search = take_tolerance_grid(&mut m)?;
            Ok(Request::FaultTolerance {
                id,
                input,
                label,
                search,
                trace,
            })
        }
        "joint_check" => {
            let input = take_input(&mut m)?;
            let label = take_required(&mut m, "label")?;
            let region = take_region(&mut m, input.len())?;
            let model = take_fault_model(&mut m)?;
            Ok(Request::JointCheck {
                id,
                input,
                label,
                region,
                model,
                trace,
            })
        }
        "joint_tolerance" => {
            let input = take_input(&mut m)?;
            let label = take_required(&mut m, "label")?;
            let delta: i64 = take_parsed(&mut m, "delta")?.unwrap_or(0);
            if !(0..=100).contains(&delta) {
                return Err(format!("delta {delta} outside the model's [0, 100] range"));
            }
            let search = take_tolerance_grid(&mut m)?;
            Ok(Request::JointTolerance {
                id,
                input,
                label,
                delta,
                search,
                trace,
            })
        }
        "stats" => Ok(Request::Stats { id }),
        "metrics" => Ok(Request::Metrics { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(format!(
            "unknown op `{other}` (expected check/tolerance/sensitivity/fault_check/\
             fault_tolerance/joint_check/joint_tolerance/stats/metrics/shutdown)"
        )),
    }
}

/// Adapter: the serde_json shim exposes typed `from_str` only, so parse
/// into the shim's raw `Value` through a thin `Deserialize` wrapper.
struct ValueDocument(Value);

impl<'de> Deserialize<'de> for ValueDocument {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        serde::Deserializer::take_value(d).map(ValueDocument)
    }
}

impl ValueDocument {
    fn parse(line: &str) -> Result<Value, String> {
        serde_json::from_str::<ValueDocument>(line)
            .map(|doc| doc.0)
            .map_err(|e| format!("malformed JSON: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------------

/// The pre-refactor `BabStats` field set, serialized under the legacy
/// keys — the `stats`/`solver` objects of `check`/`stats` responses
/// keep their historical shape (satellite of the `fannet-search`
/// extraction: clients parsing the old keys keep working), while the
/// full unified block rides alongside under `search`.
struct LegacyCheckStats<'a>(&'a BabStats);

impl Serialize for LegacyCheckStats<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let s = self.0;
        let mut st = serializer.serialize_struct("BabStats", 11)?;
        st.serialize_field("boxes_visited", &s.boxes_visited)?;
        st.serialize_field("pruned_correct", &s.pruned_correct)?;
        st.serialize_field("proved_wrong", &s.proved_wrong)?;
        st.serialize_field("exact_evals", &s.exact_evals)?;
        st.serialize_field("splits", &s.splits)?;
        st.serialize_field("screen_hits", &s.screen_hits)?;
        st.serialize_field("screen_fallbacks", &s.screen_fallbacks)?;
        st.serialize_field("interval_hits", &s.interval_hits)?;
        st.serialize_field("interval_fallbacks", &s.interval_fallbacks)?;
        st.serialize_field("zonotope_hits", &s.zonotope_hits)?;
        st.serialize_field("zonotope_fallbacks", &s.zonotope_fallbacks)?;
        st.end()
    }
}

/// The pre-refactor `FaultStats` field set under its legacy keys (see
/// [`LegacyCheckStats`]).
struct LegacyFaultStats<'a>(&'a FaultStats);

impl Serialize for LegacyFaultStats<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let s = self.0;
        let mut st = serializer.serialize_struct("FaultStats", 10)?;
        st.serialize_field("boxes_visited", &s.boxes_visited)?;
        st.serialize_field("splits", &s.splits)?;
        st.serialize_field("interval_hits", &s.interval_hits)?;
        st.serialize_field("interval_fallbacks", &s.interval_fallbacks)?;
        st.serialize_field("zonotope_hits", &s.zonotope_hits)?;
        st.serialize_field("zonotope_fallbacks", &s.zonotope_fallbacks)?;
        st.serialize_field("exact_decisions", &s.exact_decisions)?;
        st.serialize_field("exact_fallbacks", &s.exact_fallbacks)?;
        st.serialize_field("concrete_evals", &s.concrete_evals)?;
        st.serialize_field("budget_exhausted", &s.budget_exhausted)?;
        st.end()
    }
}

impl Serialize for Response {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("Response", 8)?;
        match self {
            Response::Check {
                id,
                outcome,
                source,
                stats,
                trace,
            } => {
                st.serialize_field("op", "check")?;
                if let Some(id) = id {
                    st.serialize_field("id", id)?;
                }
                match outcome {
                    RegionOutcome::Robust => st.serialize_field("verdict", "robust")?,
                    RegionOutcome::Counterexample(ce) => {
                        st.serialize_field("verdict", "counterexample")?;
                        st.serialize_field("noise", ce.noise.percents())?;
                        st.serialize_field("predicted", &ce.predicted)?;
                        st.serialize_field("expected", &ce.expected)?;
                        st.serialize_field("noisy_input", &ce.noisy_input)?;
                        st.serialize_field("outputs", &ce.outputs)?;
                    }
                }
                st.serialize_field("source", source.wire_name())?;
                st.serialize_field("stats", &LegacyCheckStats(stats))?;
                st.serialize_field("search", stats)?;
                if let Some(trace) = trace {
                    st.serialize_field("trace", trace)?;
                }
            }
            Response::Tolerance {
                id,
                radius,
                max_delta,
                trace,
            } => {
                st.serialize_field("op", "tolerance")?;
                if let Some(id) = id {
                    st.serialize_field("id", id)?;
                }
                st.serialize_field("radius", radius)?;
                st.serialize_field("max_delta", max_delta)?;
                if let Some(trace) = trace {
                    st.serialize_field("trace", trace)?;
                }
            }
            Response::FaultCheck {
                id,
                outcome,
                source,
                stats,
                trace,
            } => {
                st.serialize_field("op", "fault_check")?;
                if let Some(id) = id {
                    st.serialize_field("id", id)?;
                }
                st.serialize_field("verdict", outcome.wire_name())?;
                if let FaultOutcome::Vulnerable(witness) = outcome {
                    st.serialize_field("fault", &witness.description)?;
                    st.serialize_field("predicted", &witness.predicted)?;
                    st.serialize_field("expected", &witness.expected)?;
                    st.serialize_field("outputs", &witness.outputs)?;
                }
                st.serialize_field("source", source.wire_name())?;
                st.serialize_field("stats", &LegacyFaultStats(stats))?;
                st.serialize_field("search", stats)?;
                if let Some(trace) = trace {
                    st.serialize_field("trace", trace)?;
                }
            }
            Response::FaultTolerance {
                id,
                tolerance,
                search,
                trace,
            } => {
                st.serialize_field("op", "fault_tolerance")?;
                if let Some(id) = id {
                    st.serialize_field("id", id)?;
                }
                st.serialize_field("robust_eps", &tolerance.robust_eps)?;
                st.serialize_field("first_failure", &tolerance.first_failure)?;
                st.serialize_field("probes", &tolerance.probes)?;
                st.serialize_field("denom", &(search.denom as i64))?;
                st.serialize_field("max_numer", &(search.max_numer as i64))?;
                if let Some(trace) = trace {
                    st.serialize_field("trace", trace)?;
                }
            }
            Response::JointCheck {
                id,
                outcome,
                source,
                stats,
                trace,
            } => {
                st.serialize_field("op", "joint_check")?;
                if let Some(id) = id {
                    st.serialize_field("id", id)?;
                }
                st.serialize_field("verdict", outcome.wire_name())?;
                if let JointOutcome::Vulnerable(witness) = outcome {
                    st.serialize_field("noise", witness.noise.percents())?;
                    st.serialize_field("fault", &witness.description)?;
                    st.serialize_field("predicted", &witness.predicted)?;
                    st.serialize_field("expected", &witness.expected)?;
                    st.serialize_field("outputs", &witness.outputs)?;
                }
                st.serialize_field("source", source.wire_name())?;
                // A new op carries the unified stats block only.
                st.serialize_field("stats", stats)?;
                if let Some(trace) = trace {
                    st.serialize_field("trace", trace)?;
                }
            }
            Response::JointTolerance {
                id,
                tolerance,
                delta,
                search,
                trace,
            } => {
                st.serialize_field("op", "joint_tolerance")?;
                if let Some(id) = id {
                    st.serialize_field("id", id)?;
                }
                st.serialize_field("robust_eps", &tolerance.robust_eps)?;
                st.serialize_field("first_failure", &tolerance.first_failure)?;
                st.serialize_field("probes", &tolerance.probes)?;
                st.serialize_field("delta", delta)?;
                st.serialize_field("denom", &(search.denom as i64))?;
                st.serialize_field("max_numer", &(search.max_numer as i64))?;
                if let Some(trace) = trace {
                    st.serialize_field("trace", trace)?;
                }
            }
            Response::Sensitivity {
                id,
                count,
                exhausted,
                nodes,
            } => {
                st.serialize_field("op", "sensitivity")?;
                if let Some(id) = id {
                    st.serialize_field("id", id)?;
                }
                st.serialize_field("count", count)?;
                st.serialize_field("exhausted", exhausted)?;
                st.serialize_field("nodes", nodes)?;
            }
            Response::Stats {
                id,
                fingerprint,
                engine,
                cache_len,
                solver,
                fault_cache,
                fault_cache_len,
                fault_solver,
                joint_cache,
                joint_cache_len,
                joint_solver,
                server,
            } => {
                st.serialize_field("op", "stats")?;
                if let Some(id) = id {
                    st.serialize_field("id", id)?;
                }
                st.serialize_field("fingerprint", fingerprint)?;
                st.serialize_field("exact_hits", &engine.exact_hits)?;
                st.serialize_field("subsumption_hits", &engine.subsumption_hits)?;
                st.serialize_field("misses", &engine.misses)?;
                st.serialize_field("evictions", &engine.evictions)?;
                st.serialize_field("cache_len", cache_len)?;
                st.serialize_field("solver", &LegacyCheckStats(solver))?;
                st.serialize_field("solver_search", solver)?;
                st.serialize_field("fault_hits", &fault_cache.hits)?;
                st.serialize_field("fault_misses", &fault_cache.misses)?;
                st.serialize_field("fault_evictions", &fault_cache.evictions)?;
                st.serialize_field("fault_cache_len", fault_cache_len)?;
                st.serialize_field("fault_solver", &LegacyFaultStats(fault_solver))?;
                st.serialize_field("fault_solver_search", fault_solver)?;
                st.serialize_field("joint_hits", &joint_cache.hits)?;
                st.serialize_field("joint_misses", &joint_cache.misses)?;
                st.serialize_field("joint_evictions", &joint_cache.evictions)?;
                st.serialize_field("joint_cache_len", joint_cache_len)?;
                st.serialize_field("joint_solver", joint_solver)?;
                if let Some(server) = server {
                    st.serialize_field("server", server)?;
                }
            }
            Response::Metrics { id, text, recent } => {
                st.serialize_field("op", "metrics")?;
                if let Some(id) = id {
                    st.serialize_field("id", id)?;
                }
                // `recent` serializes after `text` so golden masks that
                // truncate at `"text":"` also hide these volatile
                // nanosecond fields; omitted entirely when empty so the
                // bare-dispatch wire shape is unchanged.
                st.serialize_field("text", text)?;
                if !recent.is_empty() {
                    st.serialize_field("recent", recent)?;
                }
            }
            Response::Shutdown { id } => {
                st.serialize_field("op", "shutdown")?;
                if let Some(id) = id {
                    st.serialize_field("id", id)?;
                }
                st.serialize_field("ok", &true)?;
            }
            Response::Error { id, message } => {
                st.serialize_field("op", "error")?;
                if let Some(id) = id {
                    st.serialize_field("id", id)?;
                }
                st.serialize_field("message", message)?;
            }
        }
        st.end()
    }
}

/// Renders a response as its compact single-line wire form.
///
/// # Panics
///
/// Panics if serialization fails (the response model is total).
#[must_use]
pub fn render_response(response: &Response) -> String {
    serde_json::to_string(response).expect("response serialization is total")
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Per-node sign statistics over extracted counterexample noise vectors.
#[must_use]
pub fn node_signs(width: usize, counterexamples: &[Counterexample]) -> Vec<NodeSigns> {
    let mut nodes: Vec<NodeSigns> = (0..width)
        .map(|node| NodeSigns {
            node,
            positive: 0,
            negative: 0,
            zero: 0,
            max_positive: 0,
            min_negative: 0,
        })
        .collect();
    for ce in counterexamples {
        for (node, &p) in ce.noise.percents().iter().enumerate() {
            let entry = &mut nodes[node];
            if p > 0 {
                entry.positive += 1;
                entry.max_positive = entry.max_positive.max(p);
            } else if p < 0 {
                entry.negative += 1;
                entry.min_negative = entry.min_negative.min(p);
            } else {
                entry.zero += 1;
            }
        }
    }
    nodes
}

/// Answers one request against a resident engine.
///
/// Never panics: query validation failures, shape errors and solver
/// panics (e.g. `i128` overflow on hostile inputs) all come back as
/// [`Response::Error`], so a serving session survives any single request.
#[must_use]
pub fn handle(engine: &Engine, request: &Request) -> Response {
    handle_traced(engine, request, false).0
}

/// [`handle`] with cost attribution: returns the response plus the
/// [`QueryTrace`] of the answered query when one was measured.
///
/// Timing runs when the request asked (`"trace": true`) **or** when
/// `force_timing` is set (a serving front end with a slow-query
/// threshold); the trace is embedded in the response only when the
/// request asked, so forced timing never changes the wire shape.
/// Verdicts and witnesses are bit-identical either way.
#[must_use]
pub fn handle_traced(
    engine: &Engine,
    request: &Request,
    force_timing: bool,
) -> (Response, Option<QueryTrace>) {
    let id = request_id(request);
    match catch_unwind(AssertUnwindSafe(|| dispatch(engine, request, force_timing))) {
        Ok(answered) => answered,
        Err(panic) => (
            Response::Error {
                id,
                message: format!("query aborted: {}", panic_message(&panic)),
            },
            None,
        ),
    }
}

/// The client tag of a request.
#[must_use]
pub fn request_id(request: &Request) -> Option<u64> {
    match request {
        Request::Check { id, .. }
        | Request::Tolerance { id, .. }
        | Request::Sensitivity { id, .. }
        | Request::FaultCheck { id, .. }
        | Request::FaultTolerance { id, .. }
        | Request::JointCheck { id, .. }
        | Request::JointTolerance { id, .. }
        | Request::Stats { id }
        | Request::Metrics { id }
        | Request::Shutdown { id } => *id,
    }
}

/// The wire op name of a request (per-op metrics keys).
#[must_use]
pub fn request_op(request: &Request) -> &'static str {
    match request {
        Request::Check { .. } => "check",
        Request::Tolerance { .. } => "tolerance",
        Request::Sensitivity { .. } => "sensitivity",
        Request::FaultCheck { .. } => "fault_check",
        Request::FaultTolerance { .. } => "fault_tolerance",
        Request::JointCheck { .. } => "joint_check",
        Request::JointTolerance { .. } => "joint_tolerance",
        Request::Stats { .. } => "stats",
        Request::Metrics { .. } => "metrics",
        Request::Shutdown { .. } => "shutdown",
    }
}

/// The embedded [`QueryTrace`] of a response, mutably, when the
/// request asked for one. The serving session uses this to fill
/// [`QueryTrace::queue_ns`] — queue wait is a front-end quantity the
/// engine cannot measure — before rendering the line.
#[must_use]
pub fn response_trace_mut(response: &mut Response) -> Option<&mut QueryTrace> {
    match response {
        Response::Check { trace, .. }
        | Response::Tolerance { trace, .. }
        | Response::FaultCheck { trace, .. }
        | Response::FaultTolerance { trace, .. }
        | Response::JointCheck { trace, .. }
        | Response::JointTolerance { trace, .. } => trace.as_mut(),
        Response::Sensitivity { .. }
        | Response::Stats { .. }
        | Response::Metrics { .. }
        | Response::Shutdown { .. }
        | Response::Error { .. } => None,
    }
}

/// Whether a request asked for an embedded trace object.
#[must_use]
pub fn request_trace(request: &Request) -> bool {
    match request {
        Request::Check { trace, .. }
        | Request::Tolerance { trace, .. }
        | Request::FaultCheck { trace, .. }
        | Request::FaultTolerance { trace, .. }
        | Request::JointCheck { trace, .. }
        | Request::JointTolerance { trace, .. } => *trace,
        Request::Sensitivity { .. }
        | Request::Stats { .. }
        | Request::Metrics { .. }
        | Request::Shutdown { .. } => false,
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "solver panicked".to_string()
    }
}

fn validate_label(engine: &Engine, label: usize) -> Result<(), String> {
    let outputs = engine.network().outputs();
    if label >= outputs {
        Err(format!("label {label} out of range for {outputs} outputs"))
    } else {
        Ok(())
    }
}

fn dispatch(
    engine: &Engine,
    request: &Request,
    force_timing: bool,
) -> (Response, Option<QueryTrace>) {
    let id = request_id(request);
    let error = |message: String| (Response::Error { id, message }, None);
    let embed = request_trace(request);
    let timed = embed || force_timing;
    let timer = if timed {
        TierTimer::enabled()
    } else {
        TierTimer::disabled()
    };
    let start = timed.then(std::time::Instant::now);
    // Wall time measured around the engine call only — parse/serialize
    // overhead is the front end's to attribute, not the query's.
    let qt = |cache: AnswerSource, stats: fannet_search::SearchStats| {
        start.map(|s| QueryTrace {
            wall_ns: u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX),
            cache,
            stats,
            queue_ns: None,
        })
    };
    match request {
        Request::Check {
            input,
            label,
            region,
            ..
        } => {
            if let Err(m) = validate_label(engine, *label) {
                return error(m);
            }
            match engine.check_traced(input, *label, region, timer) {
                Ok(reply) => {
                    let trace = qt(reply.source, reply.stats);
                    (
                        Response::Check {
                            id,
                            outcome: reply.outcome,
                            source: reply.source,
                            stats: reply.stats,
                            trace: trace.filter(|_| embed),
                        },
                        trace,
                    )
                }
                Err(e) => error(e.to_string()),
            }
        }
        Request::Tolerance {
            input,
            label,
            max_delta,
            ..
        } => {
            if let Err(m) = validate_label(engine, *label) {
                return error(m);
            }
            match engine.tolerance_traced(input, *label, *max_delta, timer) {
                Ok((radius, stats, source)) => {
                    let trace = qt(source, stats);
                    (
                        Response::Tolerance {
                            id,
                            radius,
                            max_delta: *max_delta,
                            trace: trace.filter(|_| embed),
                        },
                        trace,
                    )
                }
                Err(e) => error(e.to_string()),
            }
        }
        Request::Sensitivity {
            input,
            label,
            region,
            cap,
            ..
        } => {
            if let Err(m) = validate_label(engine, *label) {
                return error(m);
            }
            match engine.collect(input, *label, region, *cap) {
                Ok((ces, exhausted, _)) => (
                    Response::Sensitivity {
                        id,
                        count: ces.len(),
                        exhausted,
                        nodes: node_signs(input.len(), &ces),
                    },
                    None,
                ),
                Err(e) => error(e.to_string()),
            }
        }
        Request::FaultCheck {
            input,
            label,
            model,
            ..
        } => {
            if let Err(m) = validate_label(engine, *label) {
                return error(m);
            }
            match engine.fault_check_traced(input, *label, model, timer) {
                Ok(reply) => {
                    let trace = qt(reply.source, reply.stats);
                    (
                        Response::FaultCheck {
                            id,
                            outcome: reply.outcome,
                            source: reply.source,
                            stats: reply.stats,
                            trace: trace.filter(|_| embed),
                        },
                        trace,
                    )
                }
                Err(e) => error(e),
            }
        }
        Request::FaultTolerance {
            input,
            label,
            search,
            ..
        } => {
            if let Err(m) = validate_label(engine, *label) {
                return error(m);
            }
            match engine.fault_tolerance_traced(input, *label, search, timer) {
                Ok((tolerance, stats, source)) => {
                    let trace = qt(source, stats);
                    (
                        Response::FaultTolerance {
                            id,
                            tolerance,
                            search: *search,
                            trace: trace.filter(|_| embed),
                        },
                        trace,
                    )
                }
                Err(e) => error(e),
            }
        }
        Request::JointCheck {
            input,
            label,
            region,
            model,
            ..
        } => {
            if let Err(m) = validate_label(engine, *label) {
                return error(m);
            }
            match engine.joint_check_traced(input, *label, region, model, timer) {
                Ok(reply) => {
                    let trace = qt(reply.source, reply.stats);
                    (
                        Response::JointCheck {
                            id,
                            outcome: reply.outcome,
                            source: reply.source,
                            stats: reply.stats,
                            trace: trace.filter(|_| embed),
                        },
                        trace,
                    )
                }
                Err(e) => error(e),
            }
        }
        Request::JointTolerance {
            input,
            label,
            delta,
            search,
            ..
        } => {
            if let Err(m) = validate_label(engine, *label) {
                return error(m);
            }
            match engine.joint_tolerance_traced(input, *label, *delta, search, timer) {
                Ok((tolerance, stats, source)) => {
                    let trace = qt(source, stats);
                    (
                        Response::JointTolerance {
                            id,
                            tolerance,
                            delta: *delta,
                            search: *search,
                            trace: trace.filter(|_| embed),
                        },
                        trace,
                    )
                }
                Err(e) => error(e),
            }
        }
        Request::Stats { .. } => (
            Response::Stats {
                id,
                fingerprint: engine.fingerprint().to_hex(),
                engine: engine.stats(),
                cache_len: engine.cache_len(),
                solver: engine.solver_stats(),
                fault_cache: engine.fault_cache_stats(),
                fault_cache_len: engine.fault_cache_len(),
                fault_solver: engine.fault_solver_stats(),
                joint_cache: engine.joint_cache_stats(),
                joint_cache_len: engine.joint_cache_len(),
                joint_solver: engine.joint_solver_stats(),
                server: None,
            },
            None,
        ),
        // A bare (front-end-less) dispatch only knows the process-wide
        // span registry; a serving session prepends its own per-op
        // request-latency families before answering.
        Request::Metrics { .. } => {
            let series: Vec<(String, fannet_obs::Histogram)> = fannet_obs::global_registry()
                .snapshot()
                .into_iter()
                .map(|(name, hist)| (format!("span=\"{name}\""), hist))
                .collect();
            (
                Response::Metrics {
                    id,
                    text: fannet_obs::render_prometheus("fannet_span_ns", &series),
                    recent: Vec::new(),
                },
                None,
            )
        }
        // The engine has nothing to drain; the owning front end watches
        // for this reply and stops reading (DESIGN.md §13).
        Request::Shutdown { .. } => (Response::Shutdown { id }, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use fannet_nn::{Activation, DenseLayer, Network, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn engine() -> Engine {
        let net = Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap();
        Engine::new(net, EngineConfig::serving())
    }

    #[test]
    fn parses_every_op() {
        let req =
            parse_request(r#"{"op":"check","id":7,"input":["100","82"],"label":0,"delta":5}"#)
                .unwrap();
        assert_eq!(
            req,
            Request::Check {
                id: Some(7),
                input: vec![r(100), r(82)],
                label: 0,
                region: NoiseRegion::symmetric(5, 2),
                trace: false,
            }
        );
        let req =
            parse_request(r#"{"op":"check","input":[100,82],"label":0,"region":[[-5,5],[0,3]]}"#)
                .unwrap();
        assert_eq!(
            req,
            Request::Check {
                id: None,
                input: vec![r(100), r(82)],
                label: 0,
                region: NoiseRegion::new(vec![(-5, 5), (0, 3)]),
                trace: false,
            }
        );
        let req = parse_request(r#"{"op":"tolerance","input":["3/4","-1.25"],"label":1}"#).unwrap();
        assert_eq!(
            req,
            Request::Tolerance {
                id: None,
                input: vec![Rational::new(3, 4), Rational::new(-5, 4)],
                label: 1,
                max_delta: DEFAULT_MAX_DELTA,
                trace: false,
            }
        );
        let req = parse_request(
            r#"{"op":"sensitivity","input":["100","99"],"label":0,"delta":3,"cap":10}"#,
        )
        .unwrap();
        assert!(matches!(req, Request::Sensitivity { cap: 10, .. }));
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats { id: None }
        );
    }

    #[test]
    fn parses_fault_ops() {
        let req = parse_request(
            r#"{"op":"fault_check","id":2,"input":["100","82"],"label":0,"model":"weight-noise","eps":"1/50"}"#,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::FaultCheck {
                id: Some(2),
                input: vec![r(100), r(82)],
                label: 0,
                model: FaultModel::WeightNoise {
                    rel_eps: Rational::new(1, 50),
                },
                trace: false,
            }
        );
        let req = parse_request(
            r#"{"op":"fault_check","input":[1,2],"label":0,"model":"stuck-at","layer":0,"neuron":1,"value":"-3/2"}"#,
        )
        .unwrap();
        assert!(matches!(
            req,
            Request::FaultCheck {
                model: FaultModel::StuckAt {
                    layer: 0,
                    neuron: 1,
                    ..
                },
                ..
            }
        ));
        let req = parse_request(
            r#"{"op":"fault_check","input":[1,2],"label":0,"model":"bit_flips","budget":2}"#,
        )
        .unwrap();
        assert!(matches!(
            req,
            Request::FaultCheck {
                model: FaultModel::BitFlips { budget: 2 },
                ..
            }
        ));
        let req = parse_request(
            r#"{"op":"fault_check","input":[1,2],"label":0,"model":"quantization","denom_bits":8}"#,
        )
        .unwrap();
        assert!(matches!(
            req,
            Request::FaultCheck {
                model: FaultModel::Quantization { denom_bits: 8 },
                ..
            }
        ));
        // Tolerance defaults and explicit grids.
        let req =
            parse_request(r#"{"op":"fault_tolerance","input":["100","82"],"label":0}"#).unwrap();
        assert_eq!(
            req,
            Request::FaultTolerance {
                id: None,
                input: vec![r(100), r(82)],
                label: 0,
                search: ToleranceSearch::new(1000, 200),
                trace: false,
            }
        );
        let req = parse_request(
            r#"{"op":"fault_tolerance","input":["100","82"],"label":0,"denom":100,"max_numer":25}"#,
        )
        .unwrap();
        assert!(matches!(
            req,
            Request::FaultTolerance {
                search: ToleranceSearch {
                    denom: 100,
                    max_numer: 25,
                },
                ..
            }
        ));
    }

    #[test]
    fn parses_joint_ops() {
        let req = parse_request(
            r#"{"op":"joint_check","id":3,"input":["100","82"],"label":0,"delta":3,"model":"weight-noise","eps":"1/50"}"#,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::JointCheck {
                id: Some(3),
                input: vec![r(100), r(82)],
                label: 0,
                region: NoiseRegion::symmetric(3, 2),
                model: FaultModel::WeightNoise {
                    rel_eps: Rational::new(1, 50),
                },
                trace: false,
            }
        );
        // Explicit per-node region bounds work too.
        let req = parse_request(
            r#"{"op":"joint_check","input":[1,2],"label":0,"region":[[-2,2],[0,1]],"model":"bit-flips","budget":1}"#,
        )
        .unwrap();
        assert!(matches!(
            req,
            Request::JointCheck {
                model: FaultModel::BitFlips { budget: 1 },
                ..
            }
        ));
        // joint_tolerance defaults: δ = 0, grid 200/1000.
        let req =
            parse_request(r#"{"op":"joint_tolerance","input":["100","82"],"label":0}"#).unwrap();
        assert_eq!(
            req,
            Request::JointTolerance {
                id: None,
                input: vec![r(100), r(82)],
                label: 0,
                delta: 0,
                search: ToleranceSearch::new(1000, 200),
                trace: false,
            }
        );
        let req = parse_request(
            r#"{"op":"joint_tolerance","input":["100","82"],"label":0,"delta":5,"denom":100,"max_numer":25}"#,
        )
        .unwrap();
        assert!(matches!(
            req,
            Request::JointTolerance {
                delta: 5,
                search: ToleranceSearch {
                    denom: 100,
                    max_numer: 25,
                },
                ..
            }
        ));
        // Validation mirrors the underlying ops.
        assert!(
            parse_request(r#"{"op":"joint_check","input":[1,2],"label":0,"delta":3}"#)
                .unwrap_err()
                .contains("missing field `model`")
        );
        assert!(
            parse_request(r#"{"op":"joint_tolerance","input":[1,2],"label":0,"delta":101}"#)
                .unwrap_err()
                .contains("outside the model's")
        );
        assert!(
            parse_request(r#"{"op":"joint_tolerance","input":[1,2],"label":0,"denom":0}"#)
                .unwrap_err()
                .contains("denom must be positive")
        );
    }

    #[test]
    fn joint_round_trips_through_handle_and_render() {
        let e = engine();
        let req = parse_request(
            r#"{"op":"joint_check","id":7,"input":["100","82"],"label":0,"delta":2,"model":"weight-noise","eps":"1/50"}"#,
        )
        .unwrap();
        let line = render_response(&handle(&e, &req));
        assert!(
            line.starts_with(r#"{"op":"joint_check","id":7,"verdict":"robust""#),
            "{line}"
        );
        assert!(line.contains(r#""source":"solver""#), "{line}");
        // A vulnerable joint reply carries the witness noise vector.
        let req = parse_request(
            r#"{"op":"joint_check","input":["100","82"],"label":0,"delta":5,"model":"weight-noise","eps":"1/5"}"#,
        )
        .unwrap();
        let line = render_response(&handle(&e, &req));
        assert!(line.contains(r#""verdict":"vulnerable""#), "{line}");
        assert!(line.contains(r#""noise":["#), "{line}");
        assert!(line.contains(r#""fault":""#), "{line}");
        // Tolerance reports the certified grid point and echoes δ.
        let req = parse_request(
            r#"{"op":"joint_tolerance","id":8,"input":["100","82"],"label":0,"delta":2,"denom":100,"max_numer":50}"#,
        )
        .unwrap();
        let line = render_response(&handle(&e, &req));
        assert!(
            line.starts_with(r#"{"op":"joint_tolerance","id":8,"robust_eps":"7/100""#),
            "{line}"
        );
        assert!(line.contains(r#""delta":2"#), "{line}");
        // Label validation surfaces as an error response.
        let req = parse_request(
            r#"{"op":"joint_check","input":["100","82"],"label":7,"delta":1,"model":"bit-flips","budget":1}"#,
        )
        .unwrap();
        assert!(matches!(handle(&e, &req), Response::Error { .. }));
    }

    #[test]
    fn stats_objects_carry_legacy_and_unified_forms() {
        let e = engine();
        let req =
            parse_request(r#"{"op":"check","input":["100","82"],"label":0,"delta":5}"#).unwrap();
        let line = render_response(&handle(&e, &req));
        // Legacy shape: no budgeted-domain keys inside `stats`…
        let stats_obj = line
            .split(r#""stats":"#)
            .nth(1)
            .and_then(|s| s.split('}').next())
            .expect("stats object present");
        assert!(!stats_obj.contains("concrete_evals"), "{line}");
        // …while the unified `search` block has every counter.
        assert!(line.contains(r#""search":{"#), "{line}");
        assert!(line.contains(r#""concrete_evals":0"#), "{line}");
        let req = parse_request(
            r#"{"op":"fault_check","input":["100","82"],"label":0,"model":"weight-noise","eps":"1/50"}"#,
        )
        .unwrap();
        let line = render_response(&handle(&e, &req));
        let stats_obj = line
            .split(r#""stats":"#)
            .nth(1)
            .and_then(|s| s.split('}').next())
            .expect("stats object present");
        assert!(!stats_obj.contains("screen_hits"), "{line}");
        assert!(stats_obj.contains("concrete_evals"), "{line}");
        assert!(line.contains(r#""search":{"#), "{line}");
        // The cumulative stats op reports both plus the joint block.
        let line = render_response(&handle(&e, &parse_request(r#"{"op":"stats"}"#).unwrap()));
        assert!(line.contains(r#""solver":{"#), "{line}");
        assert!(line.contains(r#""solver_search":{"#), "{line}");
        assert!(line.contains(r#""fault_solver_search":{"#), "{line}");
        assert!(line.contains(r#""joint_hits":0"#), "{line}");
        assert!(line.contains(r#""joint_solver":{"#), "{line}");
    }

    #[test]
    fn rejects_malformed_fault_requests() {
        for (line, needle) in [
            (
                r#"{"op":"fault_check","input":[1,2],"label":0}"#,
                "missing field `model`",
            ),
            (
                r#"{"op":"fault_check","input":[1,2],"label":0,"model":"frobnicate"}"#,
                "unknown fault model",
            ),
            (
                r#"{"op":"fault_check","input":[1,2],"label":0,"model":"weight-noise"}"#,
                "missing field `eps`",
            ),
            (
                r#"{"op":"fault_check","input":[1,2],"label":0,"model":"weight-noise","eps":"-1/50"}"#,
                "non-negative",
            ),
            (
                r#"{"op":"fault_check","input":[1,2],"label":0,"model":"quantization","denom_bits":127}"#,
                "overflows",
            ),
            (
                r#"{"op":"fault_tolerance","input":[1,2],"label":0,"denom":0}"#,
                "denom must be positive",
            ),
            (
                r#"{"op":"fault_tolerance","input":[1,2],"label":0,"max_numer":-1}"#,
                "non-negative",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "`{line}` → `{err}` lacks `{needle}`");
        }
    }

    #[test]
    fn fault_round_trips_through_handle_and_render() {
        let e = engine();
        let req = parse_request(
            r#"{"op":"fault_check","id":5,"input":["100","82"],"label":0,"model":"weight-noise","eps":"1/50"}"#,
        )
        .unwrap();
        let line = render_response(&handle(&e, &req));
        assert!(
            line.starts_with(r#"{"op":"fault_check","id":5,"verdict":"robust""#),
            "{line}"
        );
        assert!(line.contains(r#""source":"solver""#), "{line}");
        // Vulnerable replies carry the witness fields.
        let req = parse_request(
            r#"{"op":"fault_check","input":["100","82"],"label":0,"model":"weight-noise","eps":"1/5"}"#,
        )
        .unwrap();
        let line = render_response(&handle(&e, &req));
        assert!(line.contains(r#""verdict":"vulnerable""#), "{line}");
        assert!(line.contains(r#""fault":""#), "{line}");
        assert!(line.contains(r#""predicted":1"#), "{line}");
        // Tolerance reports the certified grid point.
        let req = parse_request(
            r#"{"op":"fault_tolerance","id":6,"input":["100","82"],"label":0,"denom":100,"max_numer":50}"#,
        )
        .unwrap();
        let line = render_response(&handle(&e, &req));
        assert!(
            line.starts_with(r#"{"op":"fault_tolerance","id":6,"robust_eps":"9/100""#),
            "{line}"
        );
        assert!(line.contains(r#""first_failure":"1/10""#), "{line}");
        // Label validation surfaces as an error response.
        let req = parse_request(
            r#"{"op":"fault_check","input":["100","82"],"label":7,"model":"bit-flips","budget":1}"#,
        )
        .unwrap();
        assert!(matches!(handle(&e, &req), Response::Error { .. }));
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("not json", "malformed JSON"),
            ("[]", "must be a JSON object"),
            (r#"{"input":[],"label":0}"#, "missing field `op`"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (
                r#"{"op":"check","label":0,"delta":5}"#,
                "missing field `input`",
            ),
            (
                r#"{"op":"check","input":["1","2"],"label":0}"#,
                "missing field `delta`",
            ),
            (
                r#"{"op":"check","input":["1","2"],"label":0,"delta":5,"region":[[0,0],[0,0]]}"#,
                "not both",
            ),
            (
                r#"{"op":"check","input":["1","2"],"label":0,"delta":101}"#,
                "outside the model's",
            ),
            (
                r#"{"op":"check","input":["1","2"],"label":0,"region":[[5,-5],[0,0]]}"#,
                "inverted",
            ),
            (
                r#"{"op":"tolerance","input":["1","2"],"label":0,"max_delta":0}"#,
                "outside [1, 100]",
            ),
            (
                r#"{"op":"sensitivity","input":["1","2"],"label":0,"delta":1,"cap":0}"#,
                "cap must be positive",
            ),
            (
                r#"{"op":"check","input":[true],"label":0,"delta":1}"#,
                "strings or integers",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "`{line}` → `{err}` lacks `{needle}`");
        }
    }

    #[test]
    fn handles_and_renders_check_round() {
        let e = engine();
        let req =
            parse_request(r#"{"op":"check","id":1,"input":["100","82"],"label":0,"delta":5}"#)
                .unwrap();
        let resp = handle(&e, &req);
        let line = render_response(&resp);
        assert!(
            line.starts_with(r#"{"op":"check","id":1,"verdict":"robust""#),
            "{line}"
        );
        assert!(line.contains(r#""source":"solver""#), "{line}");

        let req =
            parse_request(r#"{"op":"check","input":["100","82"],"label":0,"delta":15}"#).unwrap();
        let line = render_response(&handle(&e, &req));
        assert!(line.contains(r#""verdict":"counterexample""#), "{line}");
        assert!(line.contains(r#""noise":["#), "{line}");
        assert!(line.contains(r#""predicted":1"#), "{line}");
    }

    /// Strips the trailing `"trace"` object off a traced response line.
    fn without_trace(line: &str) -> String {
        let idx = line
            .find(r#","trace":{"wall_ns""#)
            .unwrap_or_else(|| panic!("no trace object in {line}"));
        format!("{}}}", &line[..idx])
    }

    #[test]
    fn traced_responses_bit_identical_across_tiers() {
        use fannet_verify::bab::CheckerConfig;
        // Same op with and without `"trace":true`, answered by fresh
        // engines under every screening tier: the traced line must be
        // the untraced line plus a trailing trace object — verdicts,
        // witnesses and legacy stats byte-identical (DESIGN.md §14).
        let requests = [
            r#"{"op":"check","id":1,"input":["100","82"],"label":0,"delta":5}"#,
            r#"{"op":"check","id":2,"input":["100","82"],"label":0,"delta":15}"#,
            r#"{"op":"tolerance","id":3,"input":["100","82"],"label":0,"max_delta":30}"#,
            r#"{"op":"fault_check","id":4,"input":["100","82"],"label":0,"model":"weight-noise","eps":"1/50"}"#,
            r#"{"op":"fault_tolerance","id":5,"input":["100","82"],"label":0,"denom":100,"max_numer":25}"#,
            r#"{"op":"joint_check","id":6,"input":["100","82"],"label":0,"delta":3,"model":"weight-noise","eps":"1/100"}"#,
            r#"{"op":"joint_tolerance","id":7,"input":["100","82"],"label":0,"delta":2,"denom":100,"max_numer":10}"#,
        ];
        for (tier, checker) in [
            ("serial_exact", CheckerConfig::serial_exact()),
            ("screened", CheckerConfig::screened()),
            ("zonotope", CheckerConfig::zonotope()),
            ("cascade", CheckerConfig::cascade()),
        ] {
            let net = || {
                Network::new(
                    vec![DenseLayer::new(
                        Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                        vec![r(0), r(0)],
                        Activation::Identity,
                    )
                    .unwrap()],
                    Readout::MaxPool,
                )
                .unwrap()
            };
            let config = EngineConfig {
                checker,
                cache_capacity: 64,
            };
            let plain = Engine::new(net(), config.clone());
            let traced = Engine::new(net(), config);
            for request in requests {
                let req = parse_request(request).unwrap();
                let untraced_line = render_response(&handle(&plain, &req));
                let traced_req =
                    parse_request(&request.replace(r#"{"op""#, r#"{"trace":true,"op""#)).unwrap();
                assert!(request_trace(&traced_req), "{tier}: {request}");
                let traced_line = render_response(&handle(&traced, &traced_req));
                assert_eq!(
                    without_trace(&traced_line),
                    untraced_line,
                    "{tier}: {request}"
                );
                assert!(traced_line.contains(r#""cache":"miss""#), "{traced_line}");
                assert!(
                    traced_line.contains(r#""tiers":{"interval":{"ns":"#),
                    "{traced_line}"
                );
            }
            // Answered again from the warm cache: identical payload,
            // trace now reporting an exact hit with zero solver cost.
            let req = parse_request(requests[0]).unwrap();
            let untraced_line = render_response(&handle(&plain, &req));
            let traced_req =
                parse_request(&requests[0].replace(r#"{"op""#, r#"{"trace":true,"op""#)).unwrap();
            let traced_line = render_response(&handle(&traced, &traced_req));
            assert_eq!(
                without_trace(&traced_line),
                untraced_line,
                "{tier}: warm repeat"
            );
            assert!(traced_line.contains(r#""cache":"exact""#), "{traced_line}");
            assert!(
                traced_line.contains(r#""boxes_visited":0"#),
                "{traced_line}"
            );
        }
    }

    #[test]
    fn forced_timing_measures_without_changing_the_wire() {
        let e = engine();
        let req =
            parse_request(r#"{"op":"check","id":1,"input":["100","82"],"label":0,"delta":5}"#)
                .unwrap();
        let (resp, trace) = handle_traced(&e, &req, true);
        let trace = trace.expect("forced timing yields a trace");
        assert!(trace.wall_ns > 0);
        assert_eq!(trace.cache_name(), "miss");
        // The response itself carries no trace — the client never asked.
        assert!(!render_response(&resp).contains(r#""trace""#));
        // Stats ops produce no trace even under forced timing.
        let (_, trace) = handle_traced(&e, &parse_request(r#"{"op":"stats"}"#).unwrap(), true);
        assert!(trace.is_none());
    }

    #[test]
    fn metrics_op_renders_prometheus_text() {
        let e = engine();
        fannet_obs::global_registry().record("protocol_test_span", 1 << 12);
        let req = parse_request(r#"{"op":"metrics","id":9}"#).unwrap();
        assert_eq!(req, Request::Metrics { id: Some(9) });
        let resp = handle(&e, &req);
        let Response::Metrics {
            id: Some(9),
            text,
            recent,
        } = resp
        else {
            panic!("unexpected response {resp:?}");
        };
        // Bare dispatch has no request ring; the key stays off the wire.
        assert!(recent.is_empty());
        assert!(text.contains("# TYPE fannet_span_ns histogram"), "{text}");
        assert!(
            text.contains(r#"fannet_span_ns_count{span="protocol_test_span"}"#),
            "{text}"
        );
        assert!(text.contains("# TYPE fannet_span_ns_p99 gauge"), "{text}");
    }

    #[test]
    fn metrics_recent_serializes_after_text_when_filled() {
        let timeline = RequestTimeline {
            conn: 2,
            id: Some(41),
            op: "check",
            queue_ns: 100,
            service_ns: 2000,
            sequence_ns: 30,
            write_ns: 4,
            wall_ns: 2200,
        };
        let resp = Response::Metrics {
            id: Some(9),
            text: String::new(),
            recent: vec![timeline],
        };
        let line = render_response(&resp);
        assert_eq!(
            line,
            "{\"op\":\"metrics\",\"id\":9,\"text\":\"\",\"recent\":[\
             {\"conn\":2,\"id\":41,\"op\":\"check\",\"queue_ns\":100,\
             \"service_ns\":2000,\"sequence_ns\":30,\"write_ns\":4,\
             \"wall_ns\":2200}]}"
        );
        // Untagged requests omit `id` from their timeline row too.
        let untagged = RequestTimeline {
            id: None,
            ..timeline
        };
        let line = render_response(&Response::Metrics {
            id: None,
            text: String::new(),
            recent: vec![untagged],
        });
        assert!(
            line.contains("\"recent\":[{\"conn\":2,\"op\":\"check\""),
            "{line}"
        );
    }

    #[test]
    fn query_trace_queue_ns_is_off_the_wire_until_filled() {
        let e = engine();
        let req = parse_request(
            r#"{"op":"check","id":1,"input":["100","82"],"label":0,"delta":3,"trace":true}"#,
        )
        .unwrap();
        let mut resp = handle(&e, &req);
        let line = render_response(&resp);
        assert!(line.contains(r#""trace":{"wall_ns":"#), "{line}");
        assert!(!line.contains(r#""queue_ns":"#), "{line}");
        // A serving front end fills the slot; the key then serializes
        // after every engine-owned trace key.
        let trace = response_trace_mut(&mut resp).expect("trace embedded");
        trace.queue_ns = Some(777);
        let line = render_response(&resp);
        assert!(
            line.contains(r#""depth_high_water":0,"queue_ns":777}"#),
            "{line}"
        );
        // Traceless responses expose no slot at all.
        let mut stats = handle(&e, &parse_request(r#"{"op":"stats"}"#).unwrap());
        assert!(response_trace_mut(&mut stats).is_none());
    }

    #[test]
    fn bad_queries_become_error_responses_not_panics() {
        let e = engine();
        // Label out of range.
        let req = Request::Check {
            id: Some(9),
            input: vec![r(1), r(2)],
            label: 5,
            region: NoiseRegion::symmetric(1, 2),
            trace: false,
        };
        let resp = handle(&e, &req);
        assert!(
            matches!(&resp, Response::Error { id: Some(9), message } if message.contains("out of range")),
            "{resp:?}"
        );
        // Width mismatch.
        let req = Request::Tolerance {
            id: None,
            input: vec![r(1)],
            label: 0,
            max_delta: 10,
            trace: false,
        };
        assert!(matches!(handle(&e, &req), Response::Error { .. }));
    }

    #[test]
    fn solver_panic_is_contained() {
        use fannet_numeric::Rational;
        // Weights huge enough that exact propagation overflows i128.
        let huge = Rational::from_integer(i128::MAX / 4);
        let net = Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![huge, huge], vec![huge, -huge]]).unwrap(),
                vec![Rational::ZERO, Rational::ZERO],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap();
        let e = Engine::new(
            net,
            EngineConfig {
                checker: fannet_verify::bab::CheckerConfig::serial_exact(),
                cache_capacity: 16,
            },
        );
        let req = Request::Check {
            id: Some(3),
            input: vec![r(1 << 20), r(1 << 20)],
            label: 0,
            region: NoiseRegion::symmetric(8, 2),
            trace: false,
        };
        let resp = handle(&e, &req);
        assert!(
            matches!(&resp, Response::Error { id: Some(3), message } if message.contains("aborted")),
            "{resp:?}"
        );
    }

    #[test]
    fn stats_response_reports_cache_counters() {
        let e = engine();
        let check =
            parse_request(r#"{"op":"check","input":["100","82"],"label":0,"delta":5}"#).unwrap();
        let _ = handle(&e, &check);
        let _ = handle(&e, &check);
        let line = render_response(&handle(&e, &parse_request(r#"{"op":"stats"}"#).unwrap()));
        assert!(line.contains(r#""exact_hits":1"#), "{line}");
        assert!(line.contains(r#""misses":1"#), "{line}");
        assert!(line.contains(r#""cache_len":1"#), "{line}");
        assert!(line.contains(r#""fingerprint":""#), "{line}");
        assert!(line.contains(r#""solver":{"#), "{line}");
    }

    #[test]
    fn shutdown_round_trips_and_engine_is_untouched() {
        let e = engine();
        let req = parse_request(r#"{"op":"shutdown","id":9}"#).unwrap();
        assert_eq!(req, Request::Shutdown { id: Some(9) });
        let line = render_response(&handle(&e, &req));
        assert_eq!(line, r#"{"op":"shutdown","id":9,"ok":true}"#);
        // No engine state was consulted or mutated.
        assert_eq!(e.stats().lookups(), 0);
        // Untagged spelling.
        let line = render_response(&handle(&e, &parse_request(r#"{"op":"shutdown"}"#).unwrap()));
        assert_eq!(line, r#"{"op":"shutdown","ok":true}"#);
    }

    #[test]
    fn bare_handle_leaves_server_metrics_out_of_stats() {
        let e = engine();
        let line = render_response(&handle(&e, &parse_request(r#"{"op":"stats"}"#).unwrap()));
        assert!(!line.contains(r#""server":"#), "{line}");
        // A serving front end fills the slot; the key then serializes
        // after every legacy key (see fannet-server).
        let req = parse_request(r#"{"op":"stats"}"#).unwrap();
        let mut resp = handle(&e, &req);
        if let Response::Stats { server, .. } = &mut resp {
            *server = Some(crate::stats::ServerStats {
                uptime_ms: 1,
                requests_total: 1,
                requests_in_flight: 1,
                qps: 1.0,
                qps_10s: 1.0,
                qps_60s: 1.0,
                queue_depth: 0,
                queue_high_water: 1,
                queue_capacity: 64,
                connections_open: 1,
                connections_total: 1,
                ops: crate::stats::OpCounts {
                    stats: 1,
                    ..Default::default()
                },
                latency: crate::stats::LatencyStats::default(),
                window: crate::stats::WindowStats::default(),
                connections: Vec::new(),
            });
        }
        let line = render_response(&resp);
        assert!(
            line.contains(r#""joint_solver":{"#) && line.contains(r#""server":{"uptime_ms":1"#),
            "{line}"
        );
        assert!(line.contains(r#""ops":{"check":0"#), "{line}");
    }

    #[test]
    fn sensitivity_counts_signs() {
        let e = engine();
        let req = parse_request(
            r#"{"op":"sensitivity","id":4,"input":["100","99"],"label":0,"delta":3}"#,
        )
        .unwrap();
        let resp = handle(&e, &req);
        let Response::Sensitivity {
            count,
            exhausted,
            nodes,
            ..
        } = &resp
        else {
            panic!("{resp:?}");
        };
        assert!(*exhausted);
        assert!(*count > 0);
        assert_eq!(nodes.len(), 2);
        // Flipping 100 vs 99 needs the x1 side pushed up relative to x0:
        // node 1 appears with positive noise, and never more negative
        // than node 0 is positive-capped by the ±3 region.
        assert!(nodes[1].positive > 0);
        assert!(nodes[0].max_positive <= 3 && nodes[1].max_positive <= 3);
        assert_eq!(
            nodes[0].positive + nodes[0].negative + nodes[0].zero,
            *count
        );
        let line = render_response(&resp);
        assert!(line.contains(r#""nodes":[{"node":0"#), "{line}");
    }
}
