//! The subsumption-aware verdict cache (DESIGN.md §8).
//!
//! Entries are **canonical** results of the branch-and-bound solver —
//! `(input, label, region) → RegionOutcome` with the deterministic
//! DFS-first witness — keyed within the namespace of one network
//! fingerprint. Lookups exploit two sound orders on top of exact key
//! equality:
//!
//! * **Robust monotonicity** — if every noise vector of `R` keeps the
//!   label and `Q ⊆ R`, every vector of `Q` does too, so `Robust(R)`
//!   answers `Q` (and `Robust` carries no witness, so the answer is also
//!   canonical);
//! * **Counterexample containment** — if `w ∈ Q` misclassifies, `Q` has a
//!   counterexample. The *verdict* is sound for any `Q ∋ w`, but the
//!   checker's DFS-first witness of `Q` generally differs from `w` (the
//!   split tree depends on the region bounds), so this rule serves only
//!   [`WitnessPolicy::VerdictOnly`] lookups; witness-bearing lookups
//!   treat it as a miss and re-solve.
//!
//! The two rules cannot both apply to one query: `w ∈ Q ⊆ R` with
//! `Robust(R)` would make `w` both a counterexample and correctly
//! classified.

use std::collections::HashMap;

use fannet_faults::{FaultModel, FaultOutcome, JointOutcome};
use fannet_numeric::Rational;
use fannet_verify::bab::RegionOutcome;
use fannet_verify::region::NoiseRegion;

use crate::stats::EngineStats;

/// What a lookup may reuse from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessPolicy {
    /// The caller surfaces the witness: only answers bit-identical to a
    /// fresh solver run are acceptable (exact hits and Robust
    /// subsumption).
    Canonical,
    /// The caller consumes only the robust/not-robust verdict (tolerance
    /// probes): counterexample containment is additionally admissible.
    VerdictOnly,
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// An entry with the identical region key answered.
    Exact(RegionOutcome),
    /// A subsuming entry answered (see [`WitnessPolicy`] for which rules
    /// apply).
    Subsumed(RegionOutcome),
    /// Nothing applicable; the caller must run the solver (and should
    /// [`VerdictCache::insert`] the canonical result).
    Miss,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PointKey {
    input: Vec<Rational>,
    label: usize,
}

#[derive(Debug, Clone)]
struct Entry {
    region: NoiseRegion,
    outcome: RegionOutcome,
    /// Logical timestamp of the last use; the LRU victim minimizes it.
    last_used: u64,
}

/// Bounded LRU store of canonical verdicts for **one** network.
///
/// The engine wraps it in a mutex; all methods take `&mut self`.
#[derive(Debug)]
pub struct VerdictCache {
    /// Entries grouped by `(input, label)` — subsumption only ever relates
    /// regions of the same query point.
    groups: HashMap<PointKey, Vec<Entry>>,
    len: usize,
    capacity: usize,
    clock: u64,
    stats: EngineStats,
}

impl VerdictCache {
    /// Creates an empty cache holding at most `capacity` verdicts.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        VerdictCache {
            groups: HashMap::new(),
            len: 0,
            capacity,
            clock: 0,
            stats: EngineStats::default(),
        }
    }

    /// Number of cached verdicts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` before the first insertion.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The LRU bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime lookup/eviction counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Answers a query from the cache if a sound rule applies, updating
    /// hit/miss counters and the used entry's recency.
    pub fn lookup(
        &mut self,
        input: &[Rational],
        label: usize,
        region: &NoiseRegion,
        policy: WitnessPolicy,
    ) -> Lookup {
        self.clock += 1;
        let key = PointKey {
            input: input.to_vec(),
            label,
        };
        let Some(entries) = self.groups.get_mut(&key) else {
            self.stats.misses += 1;
            return Lookup::Miss;
        };
        // Exact key equality first: it is canonical for either policy.
        if let Some(e) = entries.iter_mut().find(|e| e.region == *region) {
            e.last_used = self.clock;
            self.stats.exact_hits += 1;
            return Lookup::Exact(e.outcome.clone());
        }
        for e in entries.iter_mut() {
            let applies = match &e.outcome {
                RegionOutcome::Robust => e.region.contains_region(region),
                RegionOutcome::Counterexample(ce) => {
                    policy == WitnessPolicy::VerdictOnly && region.contains(&ce.noise)
                }
            };
            if applies {
                e.last_used = self.clock;
                self.stats.subsumption_hits += 1;
                return Lookup::Subsumed(e.outcome.clone());
            }
        }
        self.stats.misses += 1;
        Lookup::Miss
    }

    /// Stores a **canonical** solver result, evicting the least recently
    /// used verdict when full. An entry with the identical region key is
    /// overwritten in place (deterministic solving makes that a no-op in
    /// content, but it refreshes recency).
    ///
    /// Only fresh solver outputs belong here: a subsumption-derived
    /// verdict would poison later exact hits with a non-canonical witness.
    pub fn insert(
        &mut self,
        input: &[Rational],
        label: usize,
        region: NoiseRegion,
        outcome: RegionOutcome,
    ) {
        self.clock += 1;
        let key = PointKey {
            input: input.to_vec(),
            label,
        };
        let clock = self.clock;
        let entries = self.groups.entry(key).or_default();
        if let Some(e) = entries.iter_mut().find(|e| e.region == region) {
            e.outcome = outcome;
            e.last_used = clock;
            return;
        }
        entries.push(Entry {
            region,
            outcome,
            last_used: clock,
        });
        self.len += 1;
        if self.len > self.capacity {
            self.evict_lru();
        }
    }

    /// Sound symmetric-search bracket derived from every cached verdict
    /// for `(input, label)`: the largest `δ_lo` with `±δ_lo` proven
    /// robust, and the smallest `δ_hi` proven to contain a counterexample
    /// (clamped to ≥ 1 — the radius convention never probes `δ = 0`).
    ///
    /// This is the warm start of the engine's incremental tolerance
    /// search. Each side that narrows is one use of the subsumption
    /// order (`Robust` monotonicity / witness containment respectively),
    /// so it counts as a subsumption hit and refreshes the recency of
    /// the entry that supplied the bound.
    #[must_use]
    pub fn symmetric_bracket(&mut self, input: &[Rational], label: usize) -> (i64, Option<i64>) {
        self.clock += 1;
        let clock = self.clock;
        let key = PointKey {
            input: input.to_vec(),
            label,
        };
        let mut robust_through = 0i64;
        let mut robust_entry: Option<usize> = None;
        let mut flips_at: Option<i64> = None;
        let mut flips_entry: Option<usize> = None;
        let Some(entries) = self.groups.get_mut(&key) else {
            return (0, None);
        };
        for (i, e) in entries.iter().enumerate() {
            match &e.outcome {
                RegionOutcome::Robust => {
                    // Largest symmetric box inside the robust region.
                    let m = e
                        .region
                        .ranges()
                        .iter()
                        .map(|&(lo, hi)| (-lo).min(hi))
                        .min()
                        .unwrap_or(0);
                    if m > robust_through {
                        robust_through = m;
                        robust_entry = Some(i);
                    }
                }
                RegionOutcome::Counterexample(ce) => {
                    let m = ce.noise.max_abs().max(1);
                    if flips_at.is_none_or(|f| m < f) {
                        flips_at = Some(m);
                        flips_entry = Some(i);
                    }
                }
            }
        }
        for used in [robust_entry, flips_entry].into_iter().flatten() {
            entries[used].last_used = clock;
            self.stats.subsumption_hits += 1;
        }
        (robust_through, flips_at)
    }

    /// One linear scan for the globally least-recent entry. O(len), but
    /// an eviction only ever accompanies an insert, and every insert is
    /// the tail of a fresh branch-and-bound run that dwarfs a walk over
    /// ≤ capacity timestamps; only the winning key is cloned.
    fn evict_lru(&mut self) {
        let victim = self
            .groups
            .iter()
            .flat_map(|(k, es)| es.iter().enumerate().map(move |(i, e)| (e.last_used, k, i)))
            .min_by_key(|&(t, _, _)| t)
            .map(|(_, k, i)| (k.clone(), i));
        let Some((key, idx)) = victim else { return };
        let entries = self.groups.get_mut(&key).expect("victim key exists");
        entries.swap_remove(idx);
        if entries.is_empty() {
            self.groups.remove(&key);
        }
        self.len -= 1;
        self.stats.evictions += 1;
    }
}

// ---------------------------------------------------------------------------
// Exact-key LRU caches (fault and joint verdicts, DESIGN.md §11/§12)
// ---------------------------------------------------------------------------

/// Lookup/eviction counters of an [`ExactLru`]-backed cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactCacheStats {
    /// Lookups answered by an entry with the identical key.
    pub hits: u64,
    /// Lookups that fell through to the solver.
    pub misses: u64,
    /// Entries discarded by the LRU bound.
    pub evictions: u64,
}

/// Historical name of the fault cache's counter block; the joint cache
/// shares the same shape.
pub type FaultCacheStats = ExactCacheStats;

/// A bounded exact-key LRU store — the shared machinery of the fault
/// and joint verdict caches (the engine namespaces each instance under
/// the network's content fingerprint exactly like the region-verdict
/// cache).
///
/// Reuse is **exact-key only**. Weight-noise verdicts do admit a sound
/// monotone order (`Robust` at ε answers every ε′ ≤ ε, and a joint
/// `Robust` answers every nested (δ′, ε′)), but the budgeted checkers
/// are *incomplete*: a cold run at the smaller parameters may
/// legitimately return `Unknown` where the subsumed answer would say
/// `Robust`, so serving the monotone answer would break the engine's
/// bit-identical-to-cold contract (the same reasoning that makes
/// counterexample containment verdict-only in [`VerdictCache`], taken
/// one step further).
#[derive(Debug)]
pub struct ExactLru<K, V> {
    entries: HashMap<K, (V, u64)>,
    capacity: usize,
    clock: u64,
    stats: ExactCacheStats,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> ExactLru<K, V> {
    /// Creates an empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ExactLru {
            entries: HashMap::new(),
            capacity,
            clock: 0,
            stats: ExactCacheStats::default(),
        }
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` before the first insertion.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> ExactCacheStats {
        self.stats
    }

    /// Exact-key lookup, refreshing recency on a hit.
    pub fn lookup(&mut self, key: &K) -> Option<V> {
        self.clock += 1;
        match self.entries.get_mut(key) {
            Some((value, last_used)) => {
                *last_used = self.clock;
                self.stats.hits += 1;
                Some(value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a fresh solver result, evicting the least recently used
    /// entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        self.clock += 1;
        let clock = self.clock;
        let fresh = self.entries.insert(key, (value, clock)).is_none();
        if fresh && self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, &(_, t))| t)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FaultKey {
    input: Vec<Rational>,
    label: usize,
    model: FaultModel,
}

/// Bounded LRU store of fault verdicts for **one** network, keyed by
/// `(input, label, model)` (see [`ExactLru`] for the reuse policy).
#[derive(Debug)]
pub struct FaultVerdictCache {
    inner: ExactLru<FaultKey, FaultOutcome>,
}

impl FaultVerdictCache {
    /// Creates an empty cache holding at most `capacity` verdicts.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FaultVerdictCache {
            inner: ExactLru::new(capacity),
        }
    }

    /// Number of cached verdicts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` before the first insertion.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> FaultCacheStats {
        self.inner.stats()
    }

    /// Exact-key lookup, refreshing recency on a hit.
    pub fn lookup(
        &mut self,
        input: &[Rational],
        label: usize,
        model: &FaultModel,
    ) -> Option<FaultOutcome> {
        self.inner.lookup(&FaultKey {
            input: input.to_vec(),
            label,
            model: model.clone(),
        })
    }

    /// Stores a fresh checker verdict, evicting the least recently used
    /// entry when full.
    pub fn insert(
        &mut self,
        input: &[Rational],
        label: usize,
        model: &FaultModel,
        outcome: FaultOutcome,
    ) {
        self.inner.insert(
            FaultKey {
                input: input.to_vec(),
                label,
                model: model.clone(),
            },
            outcome,
        );
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct JointKey {
    input: Vec<Rational>,
    label: usize,
    ranges: Vec<(i64, i64)>,
    model: FaultModel,
}

/// Bounded LRU store of **joint** input×weight verdicts for one
/// network, keyed by `(input, label, noise ranges, model)` — the joint
/// queries' own cache namespace, disjoint from both the region-verdict
/// and the fault-verdict stores (see [`ExactLru`] for the reuse
/// policy).
#[derive(Debug)]
pub struct JointVerdictCache {
    inner: ExactLru<JointKey, JointOutcome>,
}

impl JointVerdictCache {
    /// Creates an empty cache holding at most `capacity` verdicts.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        JointVerdictCache {
            inner: ExactLru::new(capacity),
        }
    }

    /// Number of cached verdicts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` before the first insertion.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> ExactCacheStats {
        self.inner.stats()
    }

    /// Exact-key lookup, refreshing recency on a hit.
    pub fn lookup(
        &mut self,
        input: &[Rational],
        label: usize,
        noise: &NoiseRegion,
        model: &FaultModel,
    ) -> Option<JointOutcome> {
        self.inner.lookup(&JointKey {
            input: input.to_vec(),
            label,
            ranges: noise.ranges().to_vec(),
            model: model.clone(),
        })
    }

    /// Stores a fresh checker verdict, evicting the least recently used
    /// entry when full.
    pub fn insert(
        &mut self,
        input: &[Rational],
        label: usize,
        noise: &NoiseRegion,
        model: &FaultModel,
        outcome: JointOutcome,
    ) {
        self.inner.insert(
            JointKey {
                input: input.to_vec(),
                label,
                ranges: noise.ranges().to_vec(),
                model: model.clone(),
            },
            outcome,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_verify::exact::Counterexample;
    use fannet_verify::noise::NoiseVector;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn ce(noise: Vec<i64>) -> RegionOutcome {
        RegionOutcome::Counterexample(Counterexample {
            noise: NoiseVector::new(noise),
            noisy_input: vec![r(1)],
            outputs: vec![r(0), r(1)],
            predicted: 1,
            expected: 0,
        })
    }

    #[test]
    fn exact_hit_beats_subsumption() {
        let mut c = VerdictCache::new(8);
        let x = [r(100), r(82)];
        c.insert(&x, 0, NoiseRegion::symmetric(9, 2), RegionOutcome::Robust);
        let got = c.lookup(
            &x,
            0,
            &NoiseRegion::symmetric(9, 2),
            WitnessPolicy::Canonical,
        );
        assert_eq!(got, Lookup::Exact(RegionOutcome::Robust));
        assert_eq!(c.stats().exact_hits, 1);
    }

    #[test]
    fn robust_subsumes_nested_regions_for_any_policy() {
        let mut c = VerdictCache::new(8);
        let x = [r(100), r(82)];
        c.insert(&x, 0, NoiseRegion::symmetric(9, 2), RegionOutcome::Robust);
        for policy in [WitnessPolicy::Canonical, WitnessPolicy::VerdictOnly] {
            let got = c.lookup(&x, 0, &NoiseRegion::symmetric(4, 2), policy);
            assert_eq!(got, Lookup::Subsumed(RegionOutcome::Robust), "{policy:?}");
        }
        // A *wider* region is not answered.
        assert_eq!(
            c.lookup(
                &x,
                0,
                &NoiseRegion::symmetric(10, 2),
                WitnessPolicy::VerdictOnly
            ),
            Lookup::Miss
        );
    }

    #[test]
    fn counterexample_containment_is_verdict_only() {
        let mut c = VerdictCache::new(8);
        let x = [r(100), r(99)];
        c.insert(&x, 0, NoiseRegion::symmetric(12, 2), ce(vec![-3, 2]));
        // The witness (-3, 2) lies inside ±5, so the verdict transfers…
        let got = c.lookup(
            &x,
            0,
            &NoiseRegion::symmetric(5, 2),
            WitnessPolicy::VerdictOnly,
        );
        assert!(matches!(
            got,
            Lookup::Subsumed(RegionOutcome::Counterexample(_))
        ));
        // …but a witness-bearing lookup must re-solve: the DFS-first
        // witness of ±5 need not be (-3, 2).
        assert_eq!(
            c.lookup(
                &x,
                0,
                &NoiseRegion::symmetric(5, 2),
                WitnessPolicy::Canonical
            ),
            Lookup::Miss
        );
        // A region not containing the witness is never answered.
        assert_eq!(
            c.lookup(
                &x,
                0,
                &NoiseRegion::symmetric(2, 2),
                WitnessPolicy::VerdictOnly
            ),
            Lookup::Miss
        );
    }

    #[test]
    fn keys_isolate_inputs_and_labels() {
        let mut c = VerdictCache::new(8);
        let x = [r(10), r(20)];
        let y = [r(10), r(21)];
        c.insert(&x, 0, NoiseRegion::symmetric(5, 2), RegionOutcome::Robust);
        let q = NoiseRegion::symmetric(5, 2);
        assert_eq!(c.lookup(&y, 0, &q, WitnessPolicy::Canonical), Lookup::Miss);
        assert_eq!(c.lookup(&x, 1, &q, WitnessPolicy::Canonical), Lookup::Miss);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = VerdictCache::new(2);
        let x = [r(1)];
        c.insert(&x, 0, NoiseRegion::symmetric(1, 1), RegionOutcome::Robust);
        c.insert(&x, 0, NoiseRegion::symmetric(2, 1), RegionOutcome::Robust);
        // Touch ±1 so ±2 becomes the LRU victim.
        let _ = c.lookup(
            &x,
            0,
            &NoiseRegion::symmetric(1, 1),
            WitnessPolicy::Canonical,
        );
        c.insert(&x, 0, NoiseRegion::symmetric(3, 1), RegionOutcome::Robust);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(
            c.lookup(
                &x,
                0,
                &NoiseRegion::symmetric(1, 1),
                WitnessPolicy::Canonical
            ),
            Lookup::Exact(RegionOutcome::Robust)
        );
        // ±2 itself is gone, but ±3 now subsumes it.
        assert_eq!(
            c.lookup(
                &x,
                0,
                &NoiseRegion::symmetric(2, 1),
                WitnessPolicy::Canonical
            ),
            Lookup::Subsumed(RegionOutcome::Robust)
        );
    }

    #[test]
    fn reinsert_same_region_refreshes_in_place() {
        let mut c = VerdictCache::new(2);
        let x = [r(1)];
        c.insert(&x, 0, NoiseRegion::symmetric(1, 1), RegionOutcome::Robust);
        c.insert(&x, 0, NoiseRegion::symmetric(1, 1), RegionOutcome::Robust);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn symmetric_bracket_from_mixed_entries() {
        let mut c = VerdictCache::new(8);
        let x = [r(100), r(99)];
        assert_eq!(c.symmetric_bracket(&x, 0), (0, None));
        c.insert(&x, 0, NoiseRegion::symmetric(3, 2), RegionOutcome::Robust);
        // An asymmetric robust region contributes its largest symmetric core.
        c.insert(
            &x,
            0,
            NoiseRegion::new(vec![(-7, 5), (-6, 9)]),
            RegionOutcome::Robust,
        );
        c.insert(&x, 0, NoiseRegion::symmetric(20, 2), ce(vec![8, -6]));
        let (lo, hi) = c.symmetric_bracket(&x, 0);
        assert_eq!(
            lo, 5,
            "min over axes of min(-lo, hi) of the widest robust entry"
        );
        assert_eq!(hi, Some(8), "witness ∞-norm bounds the radius");
        // A zero-noise witness clamps to the δ = 1 probe floor.
        c.insert(&x, 1, NoiseRegion::symmetric(4, 2), ce(vec![0, 0]));
        assert_eq!(c.symmetric_bracket(&x, 1), (0, Some(1)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = VerdictCache::new(0);
    }

    #[test]
    fn fault_cache_exact_hits_and_lru() {
        let mut c = FaultVerdictCache::new(2);
        let x = [r(100), r(82)];
        let eps = |n: i128| FaultModel::WeightNoise {
            rel_eps: Rational::new(n, 100),
        };
        assert_eq!(c.lookup(&x, 0, &eps(1)), None);
        c.insert(&x, 0, &eps(1), FaultOutcome::Robust);
        assert_eq!(c.lookup(&x, 0, &eps(1)), Some(FaultOutcome::Robust));
        // A different model parameter, label or input is a distinct key —
        // no monotone reuse (see the type doc).
        assert_eq!(c.lookup(&x, 0, &eps(2)), None);
        assert_eq!(c.lookup(&x, 1, &eps(1)), None);
        assert_eq!(c.lookup(&[r(1), r(2)], 0, &eps(1)), None);
        // LRU bound: touch eps(1), insert two more, eps(5) evicts eps(3).
        c.insert(&x, 0, &eps(3), FaultOutcome::Unknown);
        assert_eq!(c.lookup(&x, 0, &eps(1)), Some(FaultOutcome::Robust));
        c.insert(&x, 0, &eps(5), FaultOutcome::Unknown);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.lookup(&x, 0, &eps(3)), None, "LRU victim is gone");
        assert_eq!(c.lookup(&x, 0, &eps(1)), Some(FaultOutcome::Robust));
        assert!(c.stats().hits >= 3 && c.stats().misses >= 5);
        // Re-inserting an existing key refreshes in place.
        c.insert(&x, 0, &eps(1), FaultOutcome::Robust);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn fault_cache_zero_capacity_rejected() {
        let _ = FaultVerdictCache::new(0);
    }
}
