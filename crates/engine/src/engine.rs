//! The resident verification engine (DESIGN.md §8).
//!
//! An [`Engine`] owns everything PR 1's checker rebuilt per invocation —
//! the exact network, its float shadow, the checker configuration — plus
//! the [`VerdictCache`], and answers P2 queries through the cache instead
//! of starting every branch-and-bound cold. It is `Sync`: one engine
//! serves concurrent batch workers, which is how `fannet serve` turns one
//! resident process into a query server.

use std::sync::Mutex;

use fannet_faults::{
    tolerance_search, FaultChecker, FaultCheckerConfig, FaultModel, FaultOutcome, FaultStats,
    FaultTolerance, JointChecker, JointOutcome, JointTolerance, ToleranceSearch,
};
use fannet_nn::fingerprint::{fingerprint, NetworkFingerprint};
use fannet_nn::Network;
use fannet_numeric::Rational;
use fannet_search::TierTimer;
use fannet_tensor::ShapeError;
use fannet_verify::bab::{BabStats, CheckerConfig, RegionChecker, RegionOutcome};
use fannet_verify::exact::Counterexample;
use fannet_verify::noise::ExclusionSet;
use fannet_verify::propagate::FloatShadow;
use fannet_verify::region::NoiseRegion;
use fannet_verify::zonotope::ZonotopeShadow;

use crate::cache::{
    ExactCacheStats, FaultCacheStats, FaultVerdictCache, JointVerdictCache, Lookup, VerdictCache,
    WitnessPolicy,
};
use crate::stats::EngineStats;

/// How an engine runs its solver and bounds its cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Tiers/threads of every solver run the engine performs.
    pub checker: CheckerConfig,
    /// LRU bound of the verdict cache (entries, not bytes).
    pub cache_capacity: usize,
}

impl EngineConfig {
    /// Serving preset: screened single-threaded solver runs, so
    /// parallelism can be spent one level up, across independent requests
    /// (the same division of labour as `fannet_core`'s per-input layer).
    #[must_use]
    pub fn serving() -> Self {
        EngineConfig {
            checker: CheckerConfig::screened(),
            cache_capacity: 4096,
        }
    }
}

impl Default for EngineConfig {
    /// Screened solver with all cores per query, 4096 cached verdicts.
    fn default() -> Self {
        EngineConfig {
            checker: CheckerConfig::fast(),
            cache_capacity: 4096,
        }
    }
}

/// Where a [`CheckReply`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerSource {
    /// A cached verdict with the identical region key.
    ExactHit,
    /// A cached verdict related by the subsumption order.
    SubsumptionHit,
    /// A fresh branch-and-bound run.
    Solver,
}

impl AnswerSource {
    /// The JSONL wire spelling.
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            AnswerSource::ExactHit => "exact_hit",
            AnswerSource::SubsumptionHit => "subsumption_hit",
            AnswerSource::Solver => "solver",
        }
    }
}

/// An engine answer: the outcome plus how it was obtained.
///
/// `stats` are the solver counters of **this** answer — all zero when the
/// cache answered.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReply {
    /// The verdict, bit-identical to a cold `check_region` run.
    pub outcome: RegionOutcome,
    /// Cache path that produced it.
    pub source: AnswerSource,
    /// Branch-and-bound counters of this answer (zero on cache hits).
    pub stats: BabStats,
}

/// A long-lived verification engine for one trained network.
pub struct Engine {
    net: Network<Rational>,
    fingerprint: NetworkFingerprint,
    config: EngineConfig,
    /// Built once iff the interval tier is on; borrowed (never cloned)
    /// by per-query handles.
    shadow: Option<FloatShadow>,
    /// Built once iff the zonotope tier is on; borrowed (never cloned)
    /// by per-query handles.
    zonotope: Option<ZonotopeShadow>,
    cache: Mutex<VerdictCache>,
    /// Cumulative branch-and-bound counters across every solver run.
    solver_stats: Mutex<BabStats>,
    /// The resident weight-fault checker (DESIGN.md §11); runs the
    /// deterministic default [`FaultCheckerConfig`] with the engine's
    /// thread count — the budgeted search replays deterministically, so
    /// cold `FaultChecker` runs reproduce engine answers bit for bit at
    /// any thread count.
    faults: FaultChecker,
    fault_cache: Mutex<FaultVerdictCache>,
    /// Cumulative fault-checker counters across every cold fault run.
    fault_stats: Mutex<FaultStats>,
    /// The resident joint input×weight checker (DESIGN.md §12); runs
    /// the deterministic default [`FaultCheckerConfig`] like the fault
    /// checker, so cold [`JointChecker`] runs reproduce engine answers
    /// bit for bit.
    joint: JointChecker,
    joint_cache: Mutex<JointVerdictCache>,
    /// Cumulative joint-checker counters across every cold joint run.
    joint_stats: Mutex<FaultStats>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("fingerprint", &self.fingerprint)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds the engine: fingerprints the network and constructs each
    /// screening shadow once (iff its tier is active in the checker).
    ///
    /// # Panics
    ///
    /// Panics if screening is requested and the network is not
    /// piecewise-linear.
    #[must_use]
    pub fn new(net: Network<Rational>, config: EngineConfig) -> Self {
        let fp = fingerprint(&net);
        let shadow = config
            .checker
            .screening
            .uses_interval()
            .then(|| FloatShadow::new(&net));
        let zonotope = config
            .checker
            .screening
            .uses_zonotope()
            .then(|| ZonotopeShadow::new(&net));
        let cache = VerdictCache::new(config.cache_capacity);
        let fault_cache = FaultVerdictCache::new(config.cache_capacity);
        let joint_cache = JointVerdictCache::new(config.cache_capacity);
        // The budgeted search replays speculation deterministically, so
        // threading the fault/joint checkers keeps their answers (and
        // counters) bit-identical to single-threaded cold runs.
        let faults = FaultChecker::new(net.clone(), FaultCheckerConfig::default())
            .with_threads(config.checker.threads);
        let joint = JointChecker::new(net.clone(), FaultCheckerConfig::default())
            .with_threads(config.checker.threads);
        Engine {
            net,
            fingerprint: fp,
            config,
            shadow,
            zonotope,
            cache: Mutex::new(cache),
            solver_stats: Mutex::new(BabStats::default()),
            faults,
            fault_cache: Mutex::new(fault_cache),
            fault_stats: Mutex::new(FaultStats::default()),
            joint,
            joint_cache: Mutex::new(joint_cache),
            joint_stats: Mutex::new(FaultStats::default()),
        }
    }

    /// The served network.
    #[must_use]
    pub fn network(&self) -> &Network<Rational> {
        &self.net
    }

    /// The cache namespace: the network's content fingerprint.
    #[must_use]
    pub fn fingerprint(&self) -> NetworkFingerprint {
        self.fingerprint
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Lifetime cache counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.cache.lock().expect("engine cache poisoned").stats()
    }

    /// Cumulative branch-and-bound counters across every solver run.
    #[must_use]
    pub fn solver_stats(&self) -> BabStats {
        *self.solver_stats.lock().expect("engine stats poisoned")
    }

    /// Number of cached verdicts.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("engine cache poisoned").len()
    }

    /// A per-query checker handle borrowing the resident screening
    /// shadows (no per-query weight cloning).
    fn checker(&self) -> RegionChecker<'_> {
        RegionChecker::with_shadows(
            &self.net,
            self.config.checker.clone(),
            self.shadow.as_ref(),
            self.zonotope.as_ref(),
        )
    }

    fn validate(&self, x: &[Rational], region: &NoiseRegion) -> Result<(), ShapeError> {
        if x.len() != self.net.inputs() {
            return Err(ShapeError::new(format!(
                "input of width {} against network with {} inputs",
                x.len(),
                self.net.inputs()
            )));
        }
        if region.nodes() != self.net.inputs() {
            return Err(ShapeError::new(format!(
                "noise region over {} nodes against network with {} inputs",
                region.nodes(),
                self.net.inputs()
            )));
        }
        Ok(())
    }

    /// Runs the solver cold and stores the canonical verdict. An enabled
    /// `timer` additionally books per-tier nanoseconds into the returned
    /// stats; the cumulative engine counters absorb them too, but the
    /// wire serialization of [`BabStats`] never carries them.
    fn solve(
        &self,
        x: &[Rational],
        label: usize,
        region: &NoiseRegion,
        timer: TierTimer,
    ) -> Result<(RegionOutcome, BabStats), ShapeError> {
        let (outcome, stats) =
            self.checker()
                .check_region_timed(x, label, region, &ExclusionSet::new(), timer)?;
        self.solver_stats
            .lock()
            .expect("engine stats poisoned")
            .merge(&stats);
        self.cache.lock().expect("engine cache poisoned").insert(
            x,
            label,
            region.clone(),
            outcome.clone(),
        );
        Ok((outcome, stats))
    }

    /// Property P2 through the cache, **witness-exact**: the reply's
    /// outcome (verdict *and* counterexample) is bit-identical to a cold
    /// [`fannet_verify::bab::check_region`] on the same query.
    ///
    /// Cache reuse is therefore limited to the rules that preserve the
    /// canonical witness — exact hits and `Robust` subsumption; a cached
    /// counterexample for a different region re-solves (its witness need
    /// not be the queried region's DFS-first one).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if input/region/network widths disagree.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn check(
        &self,
        x: &[Rational],
        label: usize,
        region: &NoiseRegion,
    ) -> Result<CheckReply, ShapeError> {
        self.check_traced(x, label, region, TierTimer::disabled())
    }

    /// [`Engine::check`] with an explicit [`TierTimer`]: an enabled
    /// timer books per-tier nanoseconds into the reply's stats for cost
    /// attribution (DESIGN.md §14). Verdict, witness, counters and cache
    /// behaviour are bit-identical to the untimed call; cache hits still
    /// report zero stats (the cache did no tier work).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if input/region/network widths disagree.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn check_traced(
        &self,
        x: &[Rational],
        label: usize,
        region: &NoiseRegion,
        timer: TierTimer,
    ) -> Result<CheckReply, ShapeError> {
        assert!(label < self.net.outputs(), "label {label} out of range");
        self.validate(x, region)?;
        let hit = self.cache.lock().expect("engine cache poisoned").lookup(
            x,
            label,
            region,
            WitnessPolicy::Canonical,
        );
        let (outcome, source, stats) = match hit {
            Lookup::Exact(outcome) => (outcome, AnswerSource::ExactHit, BabStats::default()),
            Lookup::Subsumed(outcome) => {
                (outcome, AnswerSource::SubsumptionHit, BabStats::default())
            }
            Lookup::Miss => {
                let (outcome, stats) = self.solve(x, label, region, timer)?;
                (outcome, AnswerSource::Solver, stats)
            }
        };
        Ok(CheckReply {
            outcome,
            source,
            stats,
        })
    }

    /// Verdict-level P2 — `true` iff the region is robust. Counterexample
    /// containment is additionally admissible here, which is what makes
    /// tolerance probes cheap; the witness behind a `false` is *not*
    /// surfaced, so no canonicality is promised.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if input/region/network widths disagree.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn check_verdict(
        &self,
        x: &[Rational],
        label: usize,
        region: &NoiseRegion,
    ) -> Result<(bool, AnswerSource), ShapeError> {
        assert!(label < self.net.outputs(), "label {label} out of range");
        self.validate(x, region)?;
        let mut acc = BabStats::default();
        let (outcome, source) = self.probe(x, label, region, TierTimer::disabled(), &mut acc)?;
        Ok((outcome.is_robust(), source))
    }

    /// Shared verdict-level lookup-or-solve; solver probes merge their
    /// stats into `acc` so traced tolerance searches can attribute the
    /// cost of the whole bisection.
    fn probe(
        &self,
        x: &[Rational],
        label: usize,
        region: &NoiseRegion,
        timer: TierTimer,
        acc: &mut BabStats,
    ) -> Result<(RegionOutcome, AnswerSource), ShapeError> {
        let hit = self.cache.lock().expect("engine cache poisoned").lookup(
            x,
            label,
            region,
            WitnessPolicy::VerdictOnly,
        );
        Ok(match hit {
            Lookup::Exact(outcome) => (outcome, AnswerSource::ExactHit),
            Lookup::Subsumed(outcome) => (outcome, AnswerSource::SubsumptionHit),
            Lookup::Miss => {
                let (outcome, stats) = self.solve(x, label, region, timer)?;
                acc.merge(&stats);
                (outcome, AnswerSource::Solver)
            }
        })
    }

    /// Exact robustness radius of one input — the engine-backed
    /// incremental replacement of `fannet_core::tolerance`'s cold binary
    /// search, returning the **identical** value: the smallest
    /// `δ ∈ [1, max_delta]` whose `±δ` region contains a counterexample,
    /// or `None` if the input is robust throughout `±max_delta`.
    ///
    /// Three accelerations compose, all sound, so the result is exact:
    ///
    /// 1. **warm start** — cached verdicts for this `(x, label)` bracket
    ///    the search before any probe runs;
    /// 2. **subsumed probes** — a probe at `±δ` is free when a cached
    ///    witness `w` has `‖w‖∞ ≤ δ` (counterexample containment) or a
    ///    cached robust region contains `±δ`;
    /// 3. **witness-norm descent** — when a probe at `±mid` solves to a
    ///    counterexample `w`, the upper bound drops to `max(‖w‖∞, 1)`
    ///    rather than `mid` (`w` itself lies in `±‖w‖∞`).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if input/network widths disagree.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range or `max_delta` outside
    /// `[1, 100]`.
    pub fn tolerance(
        &self,
        x: &[Rational],
        label: usize,
        max_delta: i64,
    ) -> Result<Option<i64>, ShapeError> {
        self.tolerance_traced(x, label, max_delta, TierTimer::disabled())
            .map(|(radius, _, _)| radius)
    }

    /// [`Engine::tolerance`] with an explicit [`TierTimer`], returning
    /// the merged solver stats of every probe plus the aggregate answer
    /// source: [`AnswerSource::Solver`] if any probe ran the solver,
    /// else [`AnswerSource::SubsumptionHit`] if any probe (or the warm
    /// bracket) answered by containment, else [`AnswerSource::ExactHit`].
    /// The radius is bit-identical to the untimed call.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if input/network widths disagree.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range or `max_delta` outside
    /// `[1, 100]`.
    pub fn tolerance_traced(
        &self,
        x: &[Rational],
        label: usize,
        max_delta: i64,
        timer: TierTimer,
    ) -> Result<(Option<i64>, BabStats, AnswerSource), ShapeError> {
        assert!(label < self.net.outputs(), "label {label} out of range");
        assert!(
            (1..=100).contains(&max_delta),
            "max_delta must be in [1, 100]"
        );
        self.validate(x, &NoiseRegion::symmetric(0, x.len()))?;

        let mut acc = BabStats::default();
        let mut solved = false;
        let mut subsumed = false;
        fn aggregate(solved: bool, subsumed: bool) -> AnswerSource {
            if solved {
                AnswerSource::Solver
            } else if subsumed {
                AnswerSource::SubsumptionHit
            } else {
                AnswerSource::ExactHit
            }
        }

        let (robust_through, flips_at) = self
            .cache
            .lock()
            .expect("engine cache poisoned")
            .symmetric_bracket(x, label);
        if robust_through >= max_delta {
            // The warm bracket alone decided — a containment answer.
            return Ok((None, acc, AnswerSource::SubsumptionHit));
        }
        let mut lo = robust_through; // invariant: ±lo has no CE (or lo = 0)
        let mut hi = match flips_at.filter(|&m| m <= max_delta) {
            Some(m) => m, // invariant: ±hi contains a CE
            None => {
                let (outcome, source) = self.probe(
                    x,
                    label,
                    &NoiseRegion::symmetric(max_delta, x.len()),
                    timer,
                    &mut acc,
                )?;
                solved |= source == AnswerSource::Solver;
                subsumed |= source == AnswerSource::SubsumptionHit;
                match outcome.counterexample() {
                    None => return Ok((None, acc, aggregate(solved, subsumed))),
                    Some(ce) => ce.noise.max_abs().max(1),
                }
            }
        };
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let (outcome, source) = self.probe(
                x,
                label,
                &NoiseRegion::symmetric(mid, x.len()),
                timer,
                &mut acc,
            )?;
            solved |= source == AnswerSource::Solver;
            subsumed |= source == AnswerSource::SubsumptionHit;
            match outcome.counterexample() {
                Some(ce) => hi = ce.noise.max_abs().max(1),
                None => lo = mid,
            }
        }
        Ok((Some(hi), acc, aggregate(solved, subsumed)))
    }

    /// Collects up to `cap` counterexamples in `region` (the P3
    /// extraction primitive behind `sensitivity` requests). Uncached —
    /// the result shape is a set, not a verdict — but it reuses the
    /// resident float shadow and feeds the cumulative solver counters.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if input/region/network widths disagree.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range or `cap == 0`.
    pub fn collect(
        &self,
        x: &[Rational],
        label: usize,
        region: &NoiseRegion,
        cap: usize,
    ) -> Result<(Vec<Counterexample>, bool, BabStats), ShapeError> {
        let result = self
            .checker()
            .collect_region_counterexamples(x, label, region, cap)?;
        self.solver_stats
            .lock()
            .expect("engine stats poisoned")
            .merge(&result.2);
        Ok(result)
    }

    /// Weight-fault robustness of `x` under `model`
    /// ([`FaultChecker::check`]) through the fault-verdict cache,
    /// namespaced by this engine's network fingerprint.
    ///
    /// Replies are **bit-identical** to a cold [`FaultChecker`] with the
    /// default configuration: the cache reuses exact keys only (the
    /// monotone weight-noise order is deliberately withheld — see
    /// [`FaultVerdictCache`]), and the checker itself is deterministic.
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch, out-of-range label, or an
    /// out-of-domain model.
    pub fn fault_check(
        &self,
        x: &[Rational],
        label: usize,
        model: &FaultModel,
    ) -> Result<FaultReply, String> {
        self.fault_check_traced(x, label, model, TierTimer::disabled())
    }

    /// [`Engine::fault_check`] with an explicit [`TierTimer`] (see
    /// [`Engine::check_traced`]); cache hits still report zero stats.
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch, out-of-range label, or an
    /// out-of-domain model.
    pub fn fault_check_traced(
        &self,
        x: &[Rational],
        label: usize,
        model: &FaultModel,
        timer: TierTimer,
    ) -> Result<FaultReply, String> {
        // Validate before touching the cache (mirroring `check`), so
        // malformed queries never skew the hit/miss accounting.
        if x.len() != self.net.inputs() {
            return Err(format!(
                "input of width {} against network with {} inputs",
                x.len(),
                self.net.inputs()
            ));
        }
        if label >= self.net.outputs() {
            return Err(format!(
                "label {label} out of range for {} outputs",
                self.net.outputs()
            ));
        }
        if !self.net.is_piecewise_linear() {
            return Err("fault verification requires piecewise-linear activations".to_string());
        }
        model.validate(&self.net)?;
        let hit = self
            .fault_cache
            .lock()
            .expect("engine fault cache poisoned")
            .lookup(x, label, model);
        if let Some(outcome) = hit {
            return Ok(FaultReply {
                outcome,
                source: AnswerSource::ExactHit,
                stats: FaultStats::default(),
            });
        }
        let (outcome, stats) = self.faults.check_timed(x, label, model, timer)?;
        self.fault_stats
            .lock()
            .expect("engine fault stats poisoned")
            .merge(&stats);
        self.fault_cache
            .lock()
            .expect("engine fault cache poisoned")
            .insert(x, label, model, outcome.clone());
        Ok(FaultReply {
            outcome,
            source: AnswerSource::Solver,
            stats,
        })
    }

    /// Weight-noise fault tolerance of `x`
    /// ([`FaultChecker::tolerance`]) with every bisection probe flowing
    /// through [`Engine::fault_check`]'s cache — the probe sequence is a
    /// pure function of the verdicts, which cached answers reproduce
    /// exactly, so the result equals the cold search's bit for bit (a
    /// warm repeat issues zero checker runs).
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch or out-of-range label.
    pub fn fault_tolerance(
        &self,
        x: &[Rational],
        label: usize,
        search: &ToleranceSearch,
    ) -> Result<FaultTolerance, String> {
        self.fault_tolerance_traced(x, label, search, TierTimer::disabled())
            .map(|(tolerance, _, _)| tolerance)
    }

    /// [`Engine::fault_tolerance`] with an explicit [`TierTimer`],
    /// returning the merged checker stats of every bisection probe plus
    /// the aggregate answer source ([`AnswerSource::Solver`] if any
    /// probe ran the checker, else [`AnswerSource::ExactHit`] — the
    /// fault cache has no subsumption path). The tolerance is
    /// bit-identical to the untimed call.
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch or out-of-range label.
    pub fn fault_tolerance_traced(
        &self,
        x: &[Rational],
        label: usize,
        search: &ToleranceSearch,
        timer: TierTimer,
    ) -> Result<(FaultTolerance, FaultStats, AnswerSource), String> {
        let mut acc = FaultStats::default();
        let mut solved = false;
        let tolerance = tolerance_search(search, |eps| {
            let reply = self.fault_check_traced(
                x,
                label,
                &FaultModel::WeightNoise { rel_eps: eps },
                timer,
            )?;
            acc.merge(&reply.stats);
            solved |= reply.source == AnswerSource::Solver;
            Ok::<_, String>(reply.outcome)
        })?;
        let source = if solved {
            AnswerSource::Solver
        } else {
            AnswerSource::ExactHit
        };
        Ok((tolerance, acc, source))
    }

    /// Cumulative fault-checker counters across every cold fault run.
    #[must_use]
    pub fn fault_solver_stats(&self) -> FaultStats {
        *self
            .fault_stats
            .lock()
            .expect("engine fault stats poisoned")
    }

    /// Lifetime fault-cache counters.
    #[must_use]
    pub fn fault_cache_stats(&self) -> FaultCacheStats {
        self.fault_cache
            .lock()
            .expect("engine fault cache poisoned")
            .stats()
    }

    /// Number of cached fault verdicts.
    #[must_use]
    pub fn fault_cache_len(&self) -> usize {
        self.fault_cache
            .lock()
            .expect("engine fault cache poisoned")
            .len()
    }

    /// Joint input×weight robustness of `x` under `noise` and `model`
    /// ([`JointChecker::check`]) through the joint-verdict cache — its
    /// own namespace, keyed by `(input, label, noise ranges, model)`
    /// under this engine's network fingerprint.
    ///
    /// Replies are **bit-identical** to a cold [`JointChecker`] with
    /// the default configuration: the cache reuses exact keys only (the
    /// monotone (δ, ε) order is withheld for the same incompleteness
    /// reason as the fault cache's) and the checker is deterministic.
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch, out-of-range label, or an
    /// out-of-domain model.
    pub fn joint_check(
        &self,
        x: &[Rational],
        label: usize,
        noise: &NoiseRegion,
        model: &FaultModel,
    ) -> Result<JointReply, String> {
        self.joint_check_traced(x, label, noise, model, TierTimer::disabled())
    }

    /// [`Engine::joint_check`] with an explicit [`TierTimer`] (see
    /// [`Engine::check_traced`]); cache hits still report zero stats.
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch, out-of-range label, or an
    /// out-of-domain model.
    pub fn joint_check_traced(
        &self,
        x: &[Rational],
        label: usize,
        noise: &NoiseRegion,
        model: &FaultModel,
        timer: TierTimer,
    ) -> Result<JointReply, String> {
        // Validate before touching the cache, so malformed queries
        // never skew the hit/miss accounting.
        if x.len() != self.net.inputs() {
            return Err(format!(
                "input of width {} against network with {} inputs",
                x.len(),
                self.net.inputs()
            ));
        }
        if noise.nodes() != self.net.inputs() {
            return Err(format!(
                "noise region over {} nodes against network with {} inputs",
                noise.nodes(),
                self.net.inputs()
            ));
        }
        if label >= self.net.outputs() {
            return Err(format!(
                "label {label} out of range for {} outputs",
                self.net.outputs()
            ));
        }
        if !self.net.is_piecewise_linear() {
            return Err("fault verification requires piecewise-linear activations".to_string());
        }
        model.validate(&self.net)?;
        let hit = self
            .joint_cache
            .lock()
            .expect("engine joint cache poisoned")
            .lookup(x, label, noise, model);
        if let Some(outcome) = hit {
            return Ok(JointReply {
                outcome,
                source: AnswerSource::ExactHit,
                stats: FaultStats::default(),
            });
        }
        let (outcome, stats) = self.joint.check_timed(x, label, noise, model, timer)?;
        self.joint_stats
            .lock()
            .expect("engine joint stats poisoned")
            .merge(&stats);
        self.joint_cache
            .lock()
            .expect("engine joint cache poisoned")
            .insert(x, label, noise, model, outcome.clone());
        Ok(JointReply {
            outcome,
            source: AnswerSource::Solver,
            stats,
        })
    }

    /// Joint tolerance at a fixed noise radius
    /// ([`JointChecker::tolerance`]) with every bisection probe flowing
    /// through [`Engine::joint_check`]'s cache — the probe sequence is
    /// a pure function of the verdicts, which cached answers reproduce
    /// exactly, so the result equals the cold search's bit for bit (a
    /// warm repeat issues zero checker runs).
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch or out-of-range label.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is outside `[0, 100]` or the grid is invalid.
    pub fn joint_tolerance(
        &self,
        x: &[Rational],
        label: usize,
        delta: i64,
        search: &ToleranceSearch,
    ) -> Result<JointTolerance, String> {
        self.joint_tolerance_traced(x, label, delta, search, TierTimer::disabled())
            .map(|(tolerance, _, _)| tolerance)
    }

    /// [`Engine::joint_tolerance`] with an explicit [`TierTimer`] (see
    /// [`Engine::fault_tolerance_traced`] for the stats/source
    /// aggregation rules).
    ///
    /// # Errors
    ///
    /// Returns a message on width mismatch or out-of-range label.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is outside `[0, 100]` or the grid is invalid.
    pub fn joint_tolerance_traced(
        &self,
        x: &[Rational],
        label: usize,
        delta: i64,
        search: &ToleranceSearch,
        timer: TierTimer,
    ) -> Result<(JointTolerance, FaultStats, AnswerSource), String> {
        let noise = NoiseRegion::symmetric(delta, x.len());
        let mut acc = FaultStats::default();
        let mut solved = false;
        let tolerance = fannet_search::tolerance_search(search, |eps| {
            let reply = self.joint_check_traced(
                x,
                label,
                &noise,
                &FaultModel::WeightNoise { rel_eps: eps },
                timer,
            )?;
            acc.merge(&reply.stats);
            solved |= reply.source == AnswerSource::Solver;
            Ok::<_, String>(reply.outcome.is_robust())
        })?;
        let source = if solved {
            AnswerSource::Solver
        } else {
            AnswerSource::ExactHit
        };
        Ok((tolerance, acc, source))
    }

    /// Cumulative joint-checker counters across every cold joint run.
    #[must_use]
    pub fn joint_solver_stats(&self) -> FaultStats {
        *self
            .joint_stats
            .lock()
            .expect("engine joint stats poisoned")
    }

    /// Lifetime joint-cache counters.
    #[must_use]
    pub fn joint_cache_stats(&self) -> ExactCacheStats {
        self.joint_cache
            .lock()
            .expect("engine joint cache poisoned")
            .stats()
    }

    /// Number of cached joint verdicts.
    #[must_use]
    pub fn joint_cache_len(&self) -> usize {
        self.joint_cache
            .lock()
            .expect("engine joint cache poisoned")
            .len()
    }
}

/// An engine answer to a fault query: the outcome plus how it was
/// obtained (`stats` are zero on cache hits, mirroring [`CheckReply`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReply {
    /// The verdict, bit-identical to a cold [`FaultChecker`] run.
    pub outcome: FaultOutcome,
    /// Cache path that produced it (fault lookups are exact-key only, so
    /// [`AnswerSource::SubsumptionHit`] never appears here).
    pub source: AnswerSource,
    /// Fault-checker counters of this answer (zero on cache hits).
    pub stats: FaultStats,
}

/// An engine answer to a joint input×weight query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointReply {
    /// The verdict, bit-identical to a cold [`JointChecker`] run.
    pub outcome: JointOutcome,
    /// Cache path that produced it (joint lookups are exact-key only,
    /// so [`AnswerSource::SubsumptionHit`] never appears here).
    pub source: AnswerSource,
    /// Joint-checker counters of this answer (zero on cache hits).
    pub stats: FaultStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_nn::{Activation, DenseLayer, Readout};
    use fannet_tensor::Matrix;
    use fannet_verify::bab;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    /// label 0 iff x0 ≥ x1.
    fn comparator() -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    fn engine() -> Engine {
        Engine::new(comparator(), EngineConfig::serving())
    }

    #[test]
    fn check_cold_then_exact_hit() {
        let e = engine();
        let x = [r(100), r(82)];
        let region = NoiseRegion::symmetric(5, 2);
        let first = e.check(&x, 0, &region).unwrap();
        assert_eq!(first.source, AnswerSource::Solver);
        assert!(first.outcome.is_robust());
        let second = e.check(&x, 0, &region).unwrap();
        assert_eq!(second.source, AnswerSource::ExactHit);
        assert_eq!(second.outcome, first.outcome);
        assert_eq!(second.stats, BabStats::default(), "cache hits do no work");
        let s = e.stats();
        assert_eq!((s.exact_hits, s.misses), (1, 1));
    }

    #[test]
    fn robust_subsumption_answers_nested_check() {
        let e = engine();
        let x = [r(100), r(82)];
        let _ = e.check(&x, 0, &NoiseRegion::symmetric(9, 2)).unwrap();
        let nested = e.check(&x, 0, &NoiseRegion::symmetric(3, 2)).unwrap();
        assert_eq!(nested.source, AnswerSource::SubsumptionHit);
        assert!(nested.outcome.is_robust());
        assert_eq!(e.stats().subsumption_hits, 1);
    }

    #[test]
    fn check_replies_match_cold_solver_bit_for_bit() {
        let e = engine();
        let x = [r(100), r(82)];
        // Mixed robust/flipping deltas, issued twice (miss then hit paths).
        for _ in 0..2 {
            for delta in [3, 9, 12, 20, 7] {
                let region = NoiseRegion::symmetric(delta, 2);
                let reply = e.check(&x, 0, &region).unwrap();
                let (cold, _) =
                    bab::check_region(e.network(), &x, 0, &region, &ExclusionSet::new()).unwrap();
                assert_eq!(reply.outcome, cold, "delta {delta}");
            }
        }
    }

    #[test]
    fn tolerance_matches_cold_binary_search() {
        let e = engine();
        // Closed form: first flip at min Δ with x0(100−Δ) < x1(100+Δ).
        for (x0, x1, want) in [
            (100i64, 82i64, Some(10)),
            (100, 99, Some(1)),
            (100, 50, None),
        ] {
            let x = [r(i128::from(x0)), r(i128::from(x1))];
            assert_eq!(e.tolerance(&x, 0, 20).unwrap(), want, "({x0}, {x1})");
        }
    }

    #[test]
    fn repeated_tolerance_resolves_from_cache_alone() {
        let e = engine();
        let x = [r(100), r(82)];
        assert_eq!(e.tolerance(&x, 0, 20).unwrap(), Some(10));
        let misses_before = e.stats().misses;
        let subsumed_before = e.stats().subsumption_hits;
        assert_eq!(e.tolerance(&x, 0, 20).unwrap(), Some(10));
        assert_eq!(
            e.stats().misses,
            misses_before,
            "no solver runs on re-search"
        );
        assert!(
            e.stats().subsumption_hits > subsumed_before,
            "the warm-start bracket is a subsumption answer: {:?}",
            e.stats()
        );
    }

    #[test]
    fn tolerance_warm_starts_from_check_traffic() {
        let e = engine();
        let x = [r(100), r(82)];
        // Prior check traffic proves ±9 robust; the radius search's
        // bracket reuses that verdict instead of re-probing below it.
        let _ = e.check(&x, 0, &NoiseRegion::symmetric(9, 2)).unwrap();
        let subsumed_before = e.stats().subsumption_hits;
        assert_eq!(e.tolerance(&x, 0, 50).unwrap(), Some(10));
        assert!(e.stats().subsumption_hits > subsumed_before);
        // All later probes stay strictly above the bracket's floor.
        assert_eq!(e.tolerance(&x, 0, 9).unwrap(), None, "±9 is proven robust");
    }

    #[test]
    fn collect_feeds_solver_stats() {
        let e = engine();
        let x = [r(100), r(99)];
        let (ces, exhausted, _) = e
            .collect(&x, 0, &NoiseRegion::symmetric(3, 2), usize::MAX)
            .unwrap();
        assert!(exhausted);
        assert!(!ces.is_empty());
        assert!(e.solver_stats().boxes_visited > 0);
    }

    #[test]
    fn width_mismatches_are_errors_not_panics() {
        let e = engine();
        assert!(e.check(&[r(1)], 0, &NoiseRegion::symmetric(1, 2)).is_err());
        assert!(e
            .check(&[r(1), r(2)], 0, &NoiseRegion::symmetric(1, 3))
            .is_err());
        assert!(e.tolerance(&[r(1)], 0, 10).is_err());
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let a = engine();
        let b = engine();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fault_check_cold_then_exact_hit_bit_identical() {
        let e = engine();
        let x = [r(100), r(82)];
        let cold_checker = FaultChecker::new(comparator(), FaultCheckerConfig::default());
        for eps in [(1i128, 100i128), (5, 100), (15, 100)] {
            let model = FaultModel::WeightNoise {
                rel_eps: Rational::new(eps.0, eps.1),
            };
            let (cold, cold_stats) = cold_checker.check(&x, 0, &model).unwrap();
            let first = e.fault_check(&x, 0, &model).unwrap();
            assert_eq!(first.source, AnswerSource::Solver);
            assert_eq!(first.outcome, cold, "eps {eps:?}");
            assert_eq!(first.stats, cold_stats);
            let warm = e.fault_check(&x, 0, &model).unwrap();
            assert_eq!(warm.source, AnswerSource::ExactHit);
            assert_eq!(warm.outcome, cold);
            assert_eq!(warm.stats, FaultStats::default(), "hits do no work");
        }
        let stats = e.fault_cache_stats();
        assert_eq!((stats.hits, stats.misses), (3, 3));
        assert_eq!(e.fault_cache_len(), 3);
        assert!(e.fault_solver_stats().concrete_evals > 0);
    }

    #[test]
    fn fault_tolerance_matches_cold_search_and_replays_from_cache() {
        let e = engine();
        let cold_checker = FaultChecker::new(comparator(), FaultCheckerConfig::default());
        let search = ToleranceSearch::new(1000, 400);
        for (x0, x1) in [(100i128, 82i128), (100, 95), (100, 50)] {
            let x = [r(x0), r(x1)];
            let (cold, _) = cold_checker.tolerance(&x, 0, &search).unwrap();
            let warm = e.fault_tolerance(&x, 0, &search).unwrap();
            assert_eq!(warm, cold, "({x0}, {x1})");
            // The repeat resolves every probe from the cache.
            let misses_before = e.fault_cache_stats().misses;
            let again = e.fault_tolerance(&x, 0, &search).unwrap();
            assert_eq!(again, cold);
            assert_eq!(
                e.fault_cache_stats().misses,
                misses_before,
                "warm re-search must issue zero checker runs"
            );
        }
    }

    #[test]
    fn sigmoid_model_engine_builds_and_contains_fault_errors() {
        // A screening-free engine must still construct for any loadable
        // model (a sigmoid net used to crash Engine::new through the
        // fault checker's admissibility assert); fault queries surface
        // the error per request, and invalid queries never touch the
        // fault cache's hit/miss accounting.
        let net = Network::new(
            vec![fannet_nn::DenseLayer::new(
                fannet_tensor::Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                fannet_nn::Activation::Sigmoid,
            )
            .unwrap()],
            fannet_nn::Readout::MaxPool,
        )
        .unwrap();
        let e = Engine::new(
            net,
            EngineConfig {
                checker: CheckerConfig::serial_exact(),
                cache_capacity: 16,
            },
        );
        let model = FaultModel::WeightNoise {
            rel_eps: Rational::new(1, 100),
        };
        let err = e.fault_check(&[r(1), r(2)], 0, &model).unwrap_err();
        assert!(err.contains("piecewise-linear"), "{err}");
        // Width/label/admissibility failures are all rejected before the
        // cache, so the hit/miss accounting stays clean.
        assert!(e.fault_check(&[r(1)], 0, &model).is_err());
        assert!(e.fault_check(&[r(1), r(2)], 9, &model).is_err());
        let stats = e.fault_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0), "{stats:?}");
    }

    #[test]
    fn joint_check_cold_then_exact_hit_bit_identical() {
        let e = engine();
        let x = [r(100), r(82)];
        let cold_checker = JointChecker::new(comparator(), FaultCheckerConfig::default());
        let noise = NoiseRegion::symmetric(3, 2);
        for eps in [(1i128, 100i128), (4, 100), (15, 100)] {
            let model = FaultModel::WeightNoise {
                rel_eps: Rational::new(eps.0, eps.1),
            };
            let (cold, cold_stats) = cold_checker.check(&x, 0, &noise, &model).unwrap();
            let first = e.joint_check(&x, 0, &noise, &model).unwrap();
            assert_eq!(first.source, AnswerSource::Solver);
            assert_eq!(first.outcome, cold, "eps {eps:?}");
            assert_eq!(first.stats, cold_stats);
            let warm = e.joint_check(&x, 0, &noise, &model).unwrap();
            assert_eq!(warm.source, AnswerSource::ExactHit);
            assert_eq!(warm.outcome, cold);
            assert_eq!(warm.stats, FaultStats::default(), "hits do no work");
        }
        let stats = e.joint_cache_stats();
        assert_eq!((stats.hits, stats.misses), (3, 3));
        assert_eq!(e.joint_cache_len(), 3);
        assert!(e.joint_solver_stats().concrete_evals > 0);
        // The joint namespace is disjoint from the fault cache.
        assert_eq!(e.fault_cache_len(), 0);
    }

    #[test]
    fn joint_tolerance_matches_cold_search_and_replays_from_cache() {
        let e = engine();
        let cold_checker = JointChecker::new(comparator(), FaultCheckerConfig::default());
        let search = ToleranceSearch::new(100, 25);
        for delta in [0i64, 2, 5] {
            let x = [r(100), r(82)];
            let (cold, _) = cold_checker.tolerance(&x, 0, delta, &search).unwrap();
            let warm = e.joint_tolerance(&x, 0, delta, &search).unwrap();
            assert_eq!(warm, cold, "delta {delta}");
            // The repeat resolves every probe from the cache.
            let misses_before = e.joint_cache_stats().misses;
            let again = e.joint_tolerance(&x, 0, delta, &search).unwrap();
            assert_eq!(again, cold);
            assert_eq!(
                e.joint_cache_stats().misses,
                misses_before,
                "warm re-search must issue zero checker runs"
            );
        }
    }

    #[test]
    fn joint_queries_reject_bad_inputs() {
        let e = engine();
        let model = FaultModel::WeightNoise {
            rel_eps: Rational::new(1, 100),
        };
        let noise = NoiseRegion::symmetric(2, 2);
        assert!(e.joint_check(&[r(1)], 0, &noise, &model).is_err());
        assert!(e.joint_check(&[r(1), r(2)], 9, &noise, &model).is_err());
        assert!(e
            .joint_check(&[r(1), r(2)], 0, &NoiseRegion::symmetric(1, 3), &model)
            .is_err());
        let stats = e.joint_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0), "{stats:?}");
    }

    #[test]
    fn fault_queries_reject_bad_inputs() {
        let e = engine();
        let model = FaultModel::WeightNoise {
            rel_eps: Rational::new(1, 100),
        };
        assert!(e.fault_check(&[r(1)], 0, &model).is_err());
        assert!(e.fault_check(&[r(1), r(2)], 9, &model).is_err());
        assert!(e
            .fault_check(
                &[r(1), r(2)],
                0,
                &FaultModel::StuckAt {
                    layer: 7,
                    neuron: 0,
                    value: Rational::ZERO,
                }
            )
            .is_err());
    }
}
