//! Cache-effectiveness counters (DESIGN.md §8).

use serde::{Deserialize, Serialize};

/// How the engine's verdict cache answered lookups over its lifetime.
///
/// Every lookup increments exactly one of `exact_hits`,
/// `subsumption_hits` or `misses` (one lookup per
/// [`crate::Engine::check`] / [`crate::Engine::check_verdict`] call, one
/// per probe of [`crate::Engine::tolerance`]). A tolerance search's
/// warm-start bracket additionally counts one subsumption hit per bound
/// it narrows from a cached verdict — those are probes the search never
/// has to issue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Lookups answered by an entry with the *identical* region key —
    /// verdict and witness reused verbatim.
    pub exact_hits: u64,
    /// Lookups answered by the subsumption order: a `Robust(R)` entry with
    /// `query ⊆ R`, or (verdict-level lookups only) a `Counterexample(w)`
    /// entry with `w ∈ query`.
    pub subsumption_hits: u64,
    /// Lookups no cached verdict could answer; the solver ran.
    pub misses: u64,
    /// Entries discarded by the LRU bound.
    pub evictions: u64,
}

impl EngineStats {
    /// Total lookups served.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.exact_hits + self.subsumption_hits + self.misses
    }

    /// Fraction of lookups answered without running the solver; `None`
    /// before the first lookup.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.lookups();
        if total == 0 {
            None
        } else {
            Some((self.exact_hits + self.subsumption_hits) as f64 / total as f64)
        }
    }

    /// Accumulates another engine's counters into `self`.
    pub fn merge(&mut self, other: &EngineStats) {
        self.exact_hits += other.exact_hits;
        self.subsumption_hits += other.subsumption_hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_identities() {
        let s = EngineStats {
            exact_hits: 2,
            subsumption_hits: 3,
            misses: 5,
            evictions: 1,
        };
        assert_eq!(s.lookups(), 10);
        assert_eq!(s.hit_rate(), Some(0.5));
        assert_eq!(EngineStats::default().hit_rate(), None);
        let mut m = s;
        m.merge(&s);
        assert_eq!(m.lookups(), 20);
        assert_eq!(m.evictions, 2);
    }

    #[test]
    fn serializes_flat() {
        let s = EngineStats::default();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"subsumption_hits\":0"), "{json}");
        let back: EngineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
