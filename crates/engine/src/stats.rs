//! Cache-effectiveness counters (DESIGN.md §8).

use serde::{Deserialize, Serialize};

/// How the engine's verdict cache answered lookups over its lifetime.
///
/// Every lookup increments exactly one of `exact_hits`,
/// `subsumption_hits` or `misses` (one lookup per
/// [`crate::Engine::check`] / [`crate::Engine::check_verdict`] call, one
/// per probe of [`crate::Engine::tolerance`]). A tolerance search's
/// warm-start bracket additionally counts one subsumption hit per bound
/// it narrows from a cached verdict — those are probes the search never
/// has to issue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Lookups answered by an entry with the *identical* region key —
    /// verdict and witness reused verbatim.
    pub exact_hits: u64,
    /// Lookups answered by the subsumption order: a `Robust(R)` entry with
    /// `query ⊆ R`, or (verdict-level lookups only) a `Counterexample(w)`
    /// entry with `w ∈ query`.
    pub subsumption_hits: u64,
    /// Lookups no cached verdict could answer; the solver ran.
    pub misses: u64,
    /// Entries discarded by the LRU bound.
    pub evictions: u64,
}

impl EngineStats {
    /// Total lookups served.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.exact_hits + self.subsumption_hits + self.misses
    }

    /// Fraction of lookups answered without running the solver; `None`
    /// before the first lookup.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.lookups();
        if total == 0 {
            None
        } else {
            Some((self.exact_hits + self.subsumption_hits) as f64 / total as f64)
        }
    }

    /// Accumulates another engine's counters into `self`.
    pub fn merge(&mut self, other: &EngineStats) {
        self.exact_hits += other.exact_hits;
        self.subsumption_hits += other.subsumption_hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// Per-operation dispatch counts of a serving front end.
///
/// Requests are counted when a worker *starts* handling them (dispatch
/// time), so with one worker the counts a `stats` request observes are
/// deterministic: every earlier request of the session, plus itself.
/// Lines that never parsed into a request (malformed JSON, oversized or
/// non-UTF-8 frames) count under `invalid`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// `check` requests dispatched.
    pub check: u64,
    /// `tolerance` requests dispatched.
    pub tolerance: u64,
    /// `sensitivity` requests dispatched.
    pub sensitivity: u64,
    /// `fault_check` requests dispatched.
    pub fault_check: u64,
    /// `fault_tolerance` requests dispatched.
    pub fault_tolerance: u64,
    /// `joint_check` requests dispatched.
    pub joint_check: u64,
    /// `joint_tolerance` requests dispatched.
    pub joint_tolerance: u64,
    /// `stats` requests dispatched.
    pub stats: u64,
    /// `metrics` requests dispatched.
    pub metrics: u64,
    /// `shutdown` requests dispatched.
    pub shutdown: u64,
    /// Lines that produced an error response before dispatch (malformed
    /// JSON, unknown op, oversized frame, invalid UTF-8).
    pub invalid: u64,
}

impl OpCounts {
    /// Total lines dispatched (every counter summed).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.check
            + self.tolerance
            + self.sensitivity
            + self.fault_check
            + self.fault_tolerance
            + self.joint_check
            + self.joint_tolerance
            + self.stats
            + self.metrics
            + self.shutdown
            + self.invalid
    }
}

/// Latency summary of one request class, derived from its log2-bucket
/// histogram ([`fannet_obs::Histogram`]) at `stats` time.
///
/// `count` is deterministic (it equals the matching [`OpCounts`]
/// counter); the three percentile fields are wall-clock-dependent and
/// masked by golden tests alongside `uptime_ms`/`qps`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLatency {
    /// Requests of this class measured.
    pub count: u64,
    /// Conservative median latency, nanoseconds (bucket upper bound).
    pub p50_ns: u64,
    /// Conservative 90th-percentile latency, nanoseconds.
    pub p90_ns: u64,
    /// Conservative 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
}

/// Lifecycle-phase latency of a serving front end (DESIGN.md §15),
/// serialized as the `phases` block of [`LatencyStats`].
///
/// Each request's wall time decomposes into the queue wait (enqueue →
/// worker dispatch), the service time (the engine call), the sequencer
/// park (completion → first byte of the in-order write) and the write
/// itself, so `queue + service + sequence + write ≤ wall` per request
/// by construction. The first three phases are recorded *before* the
/// response bytes leave the server, so any response a client holds is
/// already counted; `write` lands just after the write returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseLatencyStats {
    /// Time spent waiting in the bounded request queue.
    pub queue: OpLatency,
    /// Time spent inside the engine handling the request.
    pub service: OpLatency,
    /// Time parked in the per-connection sequencer awaiting order.
    pub sequence: OpLatency,
    /// Time spent writing the response line to the connection.
    pub write: OpLatency,
}

/// Per-operation request latency of a serving front end (DESIGN.md §14),
/// serialized as the `latency` block of [`ServerStats`].
///
/// Only dispatched requests are measured (the `invalid` class has no
/// engine call to clock), so each `count` matches its [`OpCounts`]
/// counter under single-worker determinism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// `check` request latency.
    pub check: OpLatency,
    /// `tolerance` request latency.
    pub tolerance: OpLatency,
    /// `sensitivity` request latency.
    pub sensitivity: OpLatency,
    /// `fault_check` request latency.
    pub fault_check: OpLatency,
    /// `fault_tolerance` request latency.
    pub fault_tolerance: OpLatency,
    /// `joint_check` request latency.
    pub joint_check: OpLatency,
    /// `joint_tolerance` request latency.
    pub joint_tolerance: OpLatency,
    /// `stats` request latency.
    pub stats: OpLatency,
    /// `metrics` request latency.
    pub metrics: OpLatency,
    /// Request-lifecycle phase latency, pooled across operations.
    pub phases: PhaseLatencyStats,
}

/// Rolling-window summary of one request class (DESIGN.md §15): the
/// trailing-10-second count and latency percentiles from the
/// per-second bucket ring, next to the lifetime numbers in
/// [`LatencyStats`]. Every field is wall-clock-dependent and masked by
/// golden tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpWindow {
    /// Requests of this class in the trailing 10 seconds.
    pub count_10s: u64,
    /// Conservative median latency over the trailing 10 seconds.
    pub p50_10s_ns: u64,
    /// Conservative 99th-percentile latency over the trailing 10 seconds.
    pub p99_10s_ns: u64,
}

/// Per-operation rolling windows, serialized as the `window` block of
/// [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowStats {
    /// `check` rolling window.
    pub check: OpWindow,
    /// `tolerance` rolling window.
    pub tolerance: OpWindow,
    /// `sensitivity` rolling window.
    pub sensitivity: OpWindow,
    /// `fault_check` rolling window.
    pub fault_check: OpWindow,
    /// `fault_tolerance` rolling window.
    pub fault_tolerance: OpWindow,
    /// `joint_check` rolling window.
    pub joint_check: OpWindow,
    /// `joint_tolerance` rolling window.
    pub joint_tolerance: OpWindow,
    /// `stats` rolling window.
    pub stats: OpWindow,
    /// `metrics` rolling window.
    pub metrics: OpWindow,
}

/// One row of the `server.connections` top-N table (DESIGN.md §15):
/// traffic and queue pressure attributed to a single connection — the
/// data a fairness scheduler would act on.
///
/// `peer`, `bytes_out`, `queue_blocked_ns` and `queue_peak` are
/// environment- or timing-dependent and masked by golden tests;
/// `requests`, `ops` and `bytes_in` are deterministic replays of the
/// submitted workload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConnectionInfo {
    /// Session-unique connection id (1-based, accept order).
    pub id: u64,
    /// Peer address (`"stdio"` for the stdin front end).
    pub peer: String,
    /// Whether the connection is still open.
    pub open: bool,
    /// Requests this connection submitted (including invalid frames).
    pub requests: u64,
    /// Those requests broken down by operation.
    pub ops: OpCounts,
    /// Request bytes read from the connection (newlines included).
    pub bytes_in: u64,
    /// Response bytes written to the connection (newlines included).
    pub bytes_out: u64,
    /// Cumulative nanoseconds this connection's reader spent blocked on
    /// the bounded queue (backpressure actually applied to this peer).
    pub queue_blocked_ns: u64,
    /// Most requests this connection ever had in the queue at once —
    /// its contribution to `queue_high_water`.
    pub queue_peak: u64,
}

/// The operator metrics surface of a serving front end (DESIGN.md §13),
/// serialized under the `server` key of a `stats` response — alongside,
/// never instead of, the legacy cache/solver counters.
///
/// `uptime_ms`, `qps`, `queue_depth` and `queue_high_water` are
/// wall-clock- or scheduling-dependent, as are the `p50_ns`/`p90_ns`/
/// `p99_ns` fields of the `latency` block; golden tests mask exactly
/// those fields and compare everything else byte-exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Milliseconds since the front end started serving.
    pub uptime_ms: u64,
    /// Requests dispatched to a worker over the session's lifetime
    /// (equals [`OpCounts::total`]).
    pub requests_total: u64,
    /// Requests currently being handled by a worker (a `stats` request
    /// counts itself, so a quiet single-worker session reports 1).
    pub requests_in_flight: u64,
    /// `requests_total` per second of uptime (lifetime average).
    pub qps: f64,
    /// Requests per second over the trailing 10 seconds.
    pub qps_10s: f64,
    /// Requests per second over the trailing 60 seconds.
    pub qps_60s: f64,
    /// Requests queued but not yet claimed by a worker, sampled when the
    /// `stats` request was handled.
    pub queue_depth: u64,
    /// Deepest the bounded request queue ever got.
    pub queue_high_water: u64,
    /// The queue bound: readers block (and TCP flow control pushes back
    /// on clients) once this many requests are waiting.
    pub queue_capacity: u64,
    /// Connections currently open (the stdin front end reports 1).
    pub connections_open: u64,
    /// Connections accepted over the session's lifetime.
    pub connections_total: u64,
    /// Per-operation dispatch counts.
    pub ops: OpCounts,
    /// Per-operation request latency summaries.
    pub latency: LatencyStats,
    /// Per-operation rolling 10-second windows.
    pub window: WindowStats,
    /// Top connections by request count (at most
    /// [`CONNECTION_TABLE_ROWS`] rows, busiest first, ties by id).
    pub connections: Vec<ConnectionInfo>,
}

/// Row cap of the `server.connections` table: enough to see every
/// client of a test or bench run, bounded so a server hammered by churn
/// cannot grow its `stats` response without limit.
pub const CONNECTION_TABLE_ROWS: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_identities() {
        let s = EngineStats {
            exact_hits: 2,
            subsumption_hits: 3,
            misses: 5,
            evictions: 1,
        };
        assert_eq!(s.lookups(), 10);
        assert_eq!(s.hit_rate(), Some(0.5));
        assert_eq!(EngineStats::default().hit_rate(), None);
        let mut m = s;
        m.merge(&s);
        assert_eq!(m.lookups(), 20);
        assert_eq!(m.evictions, 2);
    }

    #[test]
    fn serializes_flat() {
        let s = EngineStats::default();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"subsumption_hits\":0"), "{json}");
        let back: EngineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn op_counts_total_sums_every_counter() {
        let ops = OpCounts {
            check: 1,
            tolerance: 2,
            sensitivity: 3,
            fault_check: 4,
            fault_tolerance: 5,
            joint_check: 6,
            joint_tolerance: 7,
            stats: 8,
            metrics: 11,
            shutdown: 9,
            invalid: 10,
        };
        assert_eq!(ops.total(), 66);
        assert_eq!(OpCounts::default().total(), 0);
    }

    #[test]
    fn server_stats_round_trip() {
        let s = ServerStats {
            uptime_ms: 1500,
            requests_total: 12,
            requests_in_flight: 1,
            qps: 8.0,
            qps_10s: 1.5,
            qps_60s: 0.25,
            queue_depth: 0,
            queue_high_water: 3,
            queue_capacity: 1024,
            connections_open: 2,
            connections_total: 5,
            ops: OpCounts {
                check: 11,
                stats: 1,
                ..OpCounts::default()
            },
            latency: LatencyStats {
                check: OpLatency {
                    count: 11,
                    p50_ns: 4095,
                    p90_ns: 8191,
                    p99_ns: 8191,
                },
                phases: PhaseLatencyStats {
                    queue: OpLatency {
                        count: 12,
                        p50_ns: 1023,
                        p90_ns: 2047,
                        p99_ns: 2047,
                    },
                    ..PhaseLatencyStats::default()
                },
                ..LatencyStats::default()
            },
            window: WindowStats {
                check: OpWindow {
                    count_10s: 4,
                    p50_10s_ns: 4095,
                    p99_10s_ns: 8191,
                },
                ..WindowStats::default()
            },
            connections: vec![ConnectionInfo {
                id: 1,
                peer: "127.0.0.1:55110".to_string(),
                open: true,
                requests: 12,
                ops: OpCounts {
                    check: 11,
                    stats: 1,
                    ..OpCounts::default()
                },
                bytes_in: 640,
                bytes_out: 981,
                queue_blocked_ns: 1200,
                queue_peak: 3,
            }],
        };
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"queue_high_water\":3"), "{json}");
        assert!(json.contains("\"qps_10s\":1.5"), "{json}");
        assert!(json.contains("\"ops\":{\"check\":11"), "{json}");
        assert!(
            json.contains("\"latency\":{\"check\":{\"count\":11,\"p50_ns\":4095"),
            "{json}"
        );
        assert!(
            json.contains("\"phases\":{\"queue\":{\"count\":12,\"p50_ns\":1023"),
            "{json}"
        );
        assert!(
            json.contains("\"window\":{\"check\":{\"count_10s\":4,\"p50_10s_ns\":4095"),
            "{json}"
        );
        assert!(
            json.contains("\"connections\":[{\"id\":1,\"peer\":\"127.0.0.1:55110\",\"open\":true"),
            "{json}"
        );
        let back: ServerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
