//! The batch scheduler: independent requests fanned across workers
//! against one resident engine (DESIGN.md §8).
//!
//! Requests in one batch are independent by construction (each is a
//! self-contained query), so they parallelize the same way
//! `fannet_core`'s per-input layer parallelizes analyses: claim work from
//! an atomic cursor, write results back by index. Responses therefore
//! come back in request order regardless of scheduling, and every
//! `check`/`tolerance` verdict is deterministic. The one caveat is
//! *counter* reads: a `stats` request racing concurrent queries observes
//! whatever the cache counted so far — run stats-bearing batches with
//! `threads = 1` when byte-stable output matters (CI's golden smoke test
//! does).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::Engine;
use crate::protocol::{handle, Request, Response};

/// Answers a batch of requests, `threads` at a time, preserving order.
///
/// With `threads <= 1` this is a plain sequential map (no thread or lock
/// overhead), which is also the deterministic mode for golden tests.
///
/// # Panics
///
/// Propagates worker panics (individual query panics are already
/// contained by [`handle`]; this fires only on engine-internal bugs).
#[must_use]
pub fn run_batch(engine: &Engine, requests: &[Request], threads: usize) -> Vec<Response> {
    if threads <= 1 || requests.len() <= 1 {
        return requests.iter().map(|r| handle(engine, r)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Response>>> = requests.iter().map(|_| Mutex::new(None)).collect();
    let workers = threads.min(requests.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(request) = requests.get(i) else {
                    break;
                };
                *slots[i].lock().expect("slot mutex poisoned") = Some(handle(engine, request));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex poisoned")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::protocol::parse_request;
    use fannet_nn::{Activation, DenseLayer, Network, Readout};
    use fannet_numeric::Rational;
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn engine() -> Engine {
        let net = Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap();
        Engine::new(net, EngineConfig::serving())
    }

    fn mixed_batch() -> Vec<Request> {
        let mut reqs = Vec::new();
        for (i, (x0, x1)) in [(100, 82), (100, 95), (100, 99), (200, 100)]
            .iter()
            .enumerate()
        {
            reqs.push(
                parse_request(&format!(
                    r#"{{"op":"tolerance","id":{i},"input":["{x0}","{x1}"],"label":0,"max_delta":20}}"#
                ))
                .unwrap(),
            );
            for delta in [2, 5, 11] {
                reqs.push(
                    parse_request(&format!(
                        r#"{{"op":"check","input":["{x0}","{x1}"],"label":0,"delta":{delta}}}"#
                    ))
                    .unwrap(),
                );
            }
        }
        reqs
    }

    #[test]
    fn parallel_batch_matches_sequential_batch() {
        let reqs = mixed_batch();
        let sequential = run_batch(&engine(), &reqs, 1);
        let parallel = run_batch(&engine(), &reqs, 4);
        // Which cache path answers (`source`, per-answer solver counters)
        // legitimately depends on scheduling — a worker can miss a verdict
        // a sequential run would have found cached. Verdicts, witnesses
        // and order must not.
        let verdicts = |responses: &[Response]| -> Vec<String> {
            responses
                .iter()
                .map(|r| {
                    crate::protocol::render_response(r)
                        .split(",\"source\":")
                        .next()
                        .expect("split yields a prefix")
                        .to_string()
                })
                .collect()
        };
        assert_eq!(
            verdicts(&sequential),
            verdicts(&parallel),
            "verdicts and order must not depend on scheduling"
        );
    }

    #[test]
    fn batch_shares_one_cache() {
        let e = engine();
        let reqs = mixed_batch();
        let _ = run_batch(&e, &reqs, 2);
        let s = e.stats();
        assert!(s.lookups() > 0);
        assert!(
            s.exact_hits + s.subsumption_hits > 0,
            "the mixed batch must reuse verdicts: {s:?}"
        );
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(run_batch(&engine(), &[], 4).is_empty());
    }
}
