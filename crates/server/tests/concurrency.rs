//! Concurrency contracts of the session core (DESIGN.md §13): per-
//! connection response ordering under a multi-worker pool, byte-level
//! agreement with a single-worker run, containment of dead clients and
//! garbage frames, and the graceful drain — over in-memory connections
//! and over real loopback TCP.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use fannet_engine::{Engine, EngineConfig};
use fannet_nn::{Activation, DenseLayer, Network, Readout};
use fannet_numeric::Rational;
use fannet_server::session::{answer_lines, serve_stdio, Session, SessionConfig};
use fannet_server::tcp::serve_tcp;
use fannet_tensor::Matrix;

fn r(n: i128) -> Rational {
    Rational::from_integer(n)
}

/// The 2→2 identity network the engine protocol tests use: tiny enough
/// that a request costs microseconds, rich enough that checks flip.
fn engine() -> Arc<Engine> {
    let net = Network::new(
        vec![DenseLayer::new(
            Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]]).unwrap(),
            vec![r(0), r(0)],
            Activation::Identity,
        )
        .unwrap()],
        Readout::MaxPool,
    )
    .unwrap();
    Arc::new(Engine::new(net, EngineConfig::serving()))
}

/// A pipelined mixed workload; `tag` keeps ids distinct per client.
fn mixed_requests(tag: u64, rounds: u64) -> String {
    let mut lines = String::new();
    for i in 0..rounds {
        let id = tag * 1000 + i * 10;
        let d = 1 + (i % 5);
        lines += &format!(
            "{{\"op\":\"check\",\"id\":{},\"input\":[100,82],\"label\":0,\"delta\":{d}}}\n",
            id + 1
        );
        lines += &format!(
            "{{\"op\":\"tolerance\",\"id\":{},\"input\":[100,{}],\"label\":0,\"max_delta\":20}}\n",
            id + 2,
            80 + i
        );
        lines += &format!(
            "{{\"op\":\"fault_check\",\"id\":{},\"input\":[100,82],\"label\":0,\"model\":\"weight-noise\",\"eps\":\"1/{}\"}}\n",
            id + 3,
            40 + i
        );
        lines += &format!(
            "{{\"op\":\"joint_check\",\"id\":{},\"input\":[100,82],\"label\":0,\"delta\":{d},\"model\":\"bit-flips\",\"budget\":1}}\n",
            id + 4
        );
    }
    lines
}

fn response_ids(lines: &[String]) -> Vec<u64> {
    lines
        .iter()
        .map(|line| {
            let tail = line.split("\"id\":").nth(1).expect("response carries id");
            tail.split(|c: char| !c.is_ascii_digit())
                .next()
                .unwrap()
                .parse()
                .unwrap()
        })
        .collect()
}

/// Everything before the first scheduling-dependent field. `source`
/// depends on what the shared cache already learned from *other*
/// clients, so cross-run comparisons stop there; the verdict and any
/// witness serialize before it.
fn stable_prefix(line: &str) -> &str {
    line.split(",\"source\":").next().unwrap()
}

#[test]
fn multi_worker_pool_preserves_per_connection_order() {
    let input = mixed_requests(1, 6);
    let answers = answer_lines(engine(), &SessionConfig::with_workers(4), &input);
    assert_eq!(answers.len(), 24);
    let ids = response_ids(&answers);
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "responses must come back in request order");
}

#[test]
fn multi_worker_run_matches_single_worker_byte_for_byte() {
    let input = mixed_requests(2, 5);
    // Fresh engines: both runs start with a cold cache, and within one
    // connection the request order fixes the cache history, so even the
    // `source` fields must agree.
    let single = answer_lines(engine(), &SessionConfig::with_workers(1), &input);
    let multi = answer_lines(engine(), &SessionConfig::with_workers(4), &input);
    assert_eq!(single.len(), multi.len());
    for (s, m) in single.iter().zip(&multi) {
        assert_eq!(stable_prefix(s), stable_prefix(m));
    }
    // And under one worker the whole line is reproducible.
    let again = answer_lines(engine(), &SessionConfig::with_workers(1), &input);
    assert_eq!(single, again);
}

#[test]
fn garbage_frames_are_contained_per_line() {
    let config = SessionConfig {
        workers: 2,
        queue_capacity: 4,
        max_line_bytes: 64,
        slow_query_ms: None,
        trace_out: None,
    };
    let mut input = String::new();
    input += "{\"op\":\"check\",\"id\":1,\"input\":[100,82],\"label\":0,\"delta\":2}\n";
    input += "not json at all\n";
    input += &format!("{{\"pad\":\"{}\"}}\n", "x".repeat(200)); // over the 64-byte cap
    input += "\n"; // blank: skipped, no response
    input += "{\"op\":\"stats\",\"id\":4}\n";
    let answers = answer_lines(engine(), &config, &input);
    assert_eq!(answers.len(), 4, "{answers:?}");
    assert!(
        answers[0].starts_with("{\"op\":\"check\",\"id\":1"),
        "{}",
        answers[0]
    );
    assert!(answers[1].contains("malformed JSON"), "{}", answers[1]);
    assert!(
        answers[2].contains("exceeds --max-line-bytes (64 bytes)"),
        "{}",
        answers[2]
    );
    // The session survived and still counts: 1 check + 1 stats + 2 invalid.
    assert!(
        answers[3].contains("\"ops\":{\"check\":1"),
        "{}",
        answers[3]
    );
    assert!(answers[3].contains("\"invalid\":2"), "{}", answers[3]);
}

/// A writer whose client vanished: every write fails.
struct DeadWriter;

impl Write for DeadWriter {
    fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
        Err(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "client gone",
        ))
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// An in-memory sink for the surviving connection.
#[derive(Clone, Default)]
struct Sink(Arc<Mutex<Vec<u8>>>);

impl Write for Sink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn dead_connection_never_kills_the_session() {
    let session = Session::new(engine(), &SessionConfig::with_workers(2));
    let dead = session.open_connection("dead", Box::new(DeadWriter));
    let sink = Sink::default();
    let live = session.open_connection("live", Box::new(sink.clone()));
    let dead_input = mixed_requests(7, 3);
    let live_input = mixed_requests(8, 3);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            session.run_reader(&dead, std::io::Cursor::new(dead_input.as_bytes()));
            session.close_connection(&dead);
        });
        scope.spawn(|| {
            session.run_reader(&live, std::io::Cursor::new(live_input.as_bytes()));
            session.close_connection(&live);
        });
    });
    session.drain();
    let lines: Vec<String> = sink
        .0
        .lock()
        .unwrap()
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| String::from_utf8(l.to_vec()).unwrap())
        .collect();
    assert_eq!(lines.len(), 12, "the live client got every response");
    let ids = response_ids(&lines);
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "ordering survives a dying sibling");
}

/// A stdin that delivers a `shutdown` request and then stays open
/// forever (returning `WouldBlock`, as a timed socket would).
struct OpenForever {
    payload: std::io::Cursor<Vec<u8>>,
}

impl Read for OpenForever {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.payload.read(buf) {
            Ok(0) => {
                std::thread::sleep(Duration::from_millis(5));
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "idle"))
            }
            other => other,
        }
    }
}

#[test]
fn shutdown_request_drains_without_eof() {
    let sink = Sink::default();
    let input = OpenForever {
        payload: std::io::Cursor::new(
            b"{\"op\":\"check\",\"id\":1,\"input\":[100,82],\"label\":0,\"delta\":2}\n{\"op\":\"shutdown\",\"id\":2}\n".to_vec(),
        ),
    };
    // Must return even though the input never reaches EOF.
    serve_stdio(
        engine(),
        &SessionConfig::with_workers(2),
        input,
        sink.clone(),
    );
    let out = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2, "{out}");
    assert!(lines[0].starts_with("{\"op\":\"check\",\"id\":1"), "{out}");
    assert_eq!(lines[1], "{\"op\":\"shutdown\",\"id\":2,\"ok\":true}");
}

#[test]
fn loopback_tcp_serves_concurrent_clients_in_order_and_drains() {
    const CLIENTS: u64 = 4;
    const ROUNDS: u64 = 3;
    let (addr_tx, addr_rx) = mpsc::channel();
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let engine = engine();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            serve_tcp(
                engine,
                &SessionConfig::with_workers(3),
                "127.0.0.1:0",
                move || stop.load(Ordering::SeqCst),
                move |addr| addr_tx.send(addr).unwrap(),
            )
        })
    };
    let addr = addr_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("listener came up");

    // A single-client reference run against a fresh engine, for the
    // stable-prefix comparison below.
    let references: Vec<Vec<String>> = (0..CLIENTS)
        .map(|c| {
            answer_lines(
                engine(),
                &SessionConfig::with_workers(1),
                &mixed_requests(c, ROUNDS),
            )
        })
        .collect();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let input = mixed_requests(c, ROUNDS);
                // Pipeline everything before reading a single response.
                stream.write_all(input.as_bytes()).unwrap();
                stream.flush().unwrap();
                let expected = input.lines().count();
                let mut reader = BufReader::new(stream);
                let mut lines = Vec::new();
                for _ in 0..expected {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    lines.push(line.trim_end().to_string());
                }
                lines
            })
        })
        .collect();
    for (c, client) in clients.into_iter().enumerate() {
        let lines = client.join().unwrap();
        let ids = response_ids(&lines);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "client {c} saw responses out of order");
        // Interleaving with other clients must not change any answer
        // (the shared cache may change `source`, nothing before it).
        let reference = &references[c];
        assert_eq!(lines.len(), reference.len());
        for (got, want) in lines.iter().zip(reference) {
            assert_eq!(stable_prefix(got), stable_prefix(want), "client {c}");
        }
    }

    // Disconnect mid-batch: a client that slams the door after writing
    // must not disturb the next client.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(mixed_requests(99, 2).as_bytes()).unwrap();
        drop(stream); // vanish without reading a byte
    }
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"{\"op\":\"check\",\"id\":1,\"input\":[100,82],\"label\":0,\"delta\":2}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("{\"op\":\"check\",\"id\":1"), "{line}");
    }

    // In-band shutdown: the ack arrives, then the server drains.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "{\"op\":\"shutdown\",\"ok\":true}");
    }
    server.join().unwrap().expect("listener exits cleanly");
}

/// Pulls the integer right after `anchor` out of a JSON line.
fn count_after(text: &str, anchor: &str) -> u64 {
    let at = text
        .find(anchor)
        .unwrap_or_else(|| panic!("`{anchor}` missing in {text}"));
    text[at + anchor.len()..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

/// The request-lifecycle accounting (DESIGN.md §15) under real load:
/// 4 pipelined loopback clients × 16 mixed requests against worker
/// pools of both sizes, then a fifth connection reads `stats` and
/// `metrics`. Every count must sum exactly to the submitted workload at
/// any worker count — the queue/service/sequence phases and the per-op
/// latency histograms are recorded *before* a response's bytes leave
/// the server, so clients holding all their responses prove the counts
/// are in — and every `recent` timeline must satisfy the phase-sum
/// bound `queue + service + sequence + write ≤ wall`.
#[test]
fn accounting_sums_to_the_submitted_workload() {
    const CLIENTS: u64 = 4;
    const ROUNDS: u64 = 4; // 16 requests per client, 4 per op
    for workers in [1usize, 3] {
        let (addr_tx, addr_rx) = mpsc::channel();
        let server = {
            let engine = engine();
            std::thread::spawn(move || {
                serve_tcp(
                    engine,
                    &SessionConfig::with_workers(workers),
                    "127.0.0.1:0",
                    || false,
                    move |addr| addr_tx.send(addr).unwrap(),
                )
            })
        };
        let addr = addr_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("listener came up");

        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let input = mixed_requests(c, ROUNDS);
                    stream.write_all(input.as_bytes()).unwrap();
                    stream.flush().unwrap();
                    let mut reader = BufReader::new(stream);
                    for _ in 0..input.lines().count() {
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        assert!(!line.is_empty(), "response arrived");
                    }
                })
            })
            .collect();
        for client in clients {
            client.join().unwrap();
        }

        // The fifth connection audits the books.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"op\":\"stats\",\"id\":1}\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut stats = String::new();
        reader.read_line(&mut stats).unwrap();

        let total = CLIENTS * ROUNDS * 4;
        let latency = &stats[stats.find("\"latency\":").expect("latency block")..];
        for op in ["check", "tolerance", "fault_check", "joint_check"] {
            assert_eq!(
                count_after(latency, &format!("\"{op}\":{{\"count\":")),
                CLIENTS * ROUNDS,
                "per-op latency count of {op} at {workers} workers"
            );
        }
        let phases = &stats[stats.find("\"phases\":").expect("phases block")..];
        for phase in ["queue", "service", "sequence"] {
            assert_eq!(
                count_after(phases, &format!("\"{phase}\":{{\"count\":")),
                total,
                "{phase} phase count at {workers} workers"
            );
        }
        // The write stamp lands after each response's write returns,
        // which races the snapshot only for responses still in flight —
        // and every workload response has been *received*, so at most
        // the audit connection's own are outstanding.
        let writes = count_after(phases, "\"write\":{\"count\":");
        assert!(writes <= total, "{writes} writes at {workers} workers");
        // Per-connection attribution: the four workload connections
        // (now closed, retained in the table) plus this one, busiest
        // first.
        let connections = &stats[stats.find("\"connections\":[").expect("connection table")..];
        let per_conn: Vec<u64> = connections
            .split("\"requests\":")
            .skip(1)
            .map(|tail| {
                tail.split(|c: char| !c.is_ascii_digit())
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(
            per_conn,
            [16, 16, 16, 16, 1],
            "per-connection request counts at {workers} workers"
        );

        // Every recent timeline satisfies the phase-sum bound.
        stream
            .write_all(b"{\"op\":\"metrics\",\"id\":2}\n")
            .unwrap();
        let mut metrics = String::new();
        reader.read_line(&mut metrics).unwrap();
        let recent = &metrics[metrics.find("\"recent\":[").expect("recent timelines")..];
        let mut entries = 0;
        for entry in recent.split("{\"conn\":").skip(1) {
            let phase_sum = count_after(entry, "\"queue_ns\":")
                + count_after(entry, "\"service_ns\":")
                + count_after(entry, "\"sequence_ns\":")
                + count_after(entry, "\"write_ns\":");
            let wall = count_after(entry, "\"wall_ns\":");
            assert!(
                phase_sum <= wall,
                "phase sum {phase_sum} exceeds wall {wall} at {workers} workers: {entry}"
            );
            entries += 1;
        }
        assert!(entries > 0, "the timeline ring surfaced entries");

        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut ack = String::new();
        reader.read_line(&mut ack).unwrap();
        assert_eq!(ack.trim_end(), "{\"op\":\"shutdown\",\"ok\":true}");
        server.join().unwrap().expect("listener exits cleanly");
    }
}

#[test]
fn external_stop_flag_drains_the_listener() {
    let (addr_tx, addr_rx) = mpsc::channel();
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let engine = engine();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            serve_tcp(
                engine,
                &SessionConfig::with_workers(1),
                "127.0.0.1:0",
                move || stop.load(Ordering::SeqCst),
                move |addr| addr_tx.send(addr).unwrap(),
            )
        })
    };
    let addr = addr_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("listener came up");
    // An idle open connection must not block the drain.
    let _idle = TcpStream::connect(addr).unwrap();
    stop.store(true, Ordering::SeqCst);
    server.join().unwrap().expect("signal-style stop drains");
}
