//! Minimal SIGINT/SIGTERM handling for `fannet listen` (DESIGN.md §13).
//!
//! The workspace is offline, so there is no `libc`/`signal-hook` crate
//! to lean on; the handler is registered through the C `signal(2)`
//! symbol that `std` already links. The handler body is as small as an
//! async-signal-safe handler must be: one relaxed store into a static
//! atomic, which the TCP accept loop polls and converts into the same
//! graceful drain a `shutdown` request triggers.
//!
//! On non-Unix targets registration is a no-op and [`triggered`] stays
//! false — the in-band `shutdown` op is then the only way to stop a
//! listener remotely.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{Ordering, TRIGGERED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)` from the platform libc; `handler` is a function
        /// pointer (or `SIG_DFL`/`SIG_ERR`) smuggled as `usize` to keep
        /// the declaration dependency-free.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        TRIGGERED.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: `signal` is the libc prototype declared above; the
        // handler only touches a static atomic, which is allowed in a
        // signal context. A failed registration (SIG_ERR) just leaves
        // the default disposition — the listener then stops un-drained
        // on that signal, exactly the pre-handler behavior.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Registers the SIGINT/SIGTERM → [`triggered`] handlers (idempotent).
pub fn install() {
    imp::install();
}

/// Whether a termination signal arrived since [`install`].
#[must_use]
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

/// Sets the flag by hand — lets tests (and the stdio front end, which
/// installs no handler) reuse the same stop plumbing.
pub fn trigger() {
    TRIGGERED.store(true, Ordering::Relaxed);
}
