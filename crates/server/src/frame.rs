//! Bounded line framing for the JSONL front ends (DESIGN.md §13).
//!
//! `BufRead::lines` would buffer a newline-free stream without limit — a
//! single hostile connection could then exhaust memory before the first
//! request parses. [`FramedLineReader`] reads through a fixed-size chunk
//! buffer instead and enforces a per-line byte cap: an oversized line
//! yields one [`Frame::TooLong`] (the front end answers it with a
//! contained `error` response) and the remainder of that line is
//! discarded up to its newline, after which framing resumes cleanly.
//!
//! Framing matches `BufRead::lines` where they overlap, so the stdio
//! front end stays byte-identical to the historical serve loop: the
//! terminating `\n` is stripped, one trailing `\r` before it is stripped
//! too, and EOF flushes a final unterminated line. Invalid UTF-8 becomes
//! [`Frame::Invalid`] rather than an I/O error, because one garbage line
//! must never end the connection.

use std::io::{ErrorKind, Read};

/// Default per-line byte cap of both front ends (`--max-line-bytes`).
///
/// A worst-case legitimate request — a `check` with an explicit
/// per-node `region` over a few thousand inputs, every component an
/// exact rational string — stays well under this; a megabyte of
/// newline-free garbage does not.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// One framed unit of input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line, newline (and one trailing `\r`) stripped.
    Line(String),
    /// A line that exceeded the byte cap; its payload was discarded.
    TooLong {
        /// The configured cap the line overran.
        limit: usize,
    },
    /// A complete line that was not valid UTF-8.
    Invalid,
}

/// A line reader with a hard per-line byte bound.
#[derive(Debug)]
pub struct FramedLineReader<R> {
    inner: R,
    /// Unconsumed bytes carried between reads.
    buf: Vec<u8>,
    max_line_bytes: usize,
    /// Inside an oversized line: drop bytes until its newline.
    discarding: bool,
    eof: bool,
}

impl<R: Read> FramedLineReader<R> {
    /// Wraps `inner`, capping every line at `max_line_bytes` bytes
    /// (minimum 1; the cap excludes the newline itself).
    #[must_use]
    pub fn new(inner: R, max_line_bytes: usize) -> Self {
        FramedLineReader {
            inner,
            buf: Vec::new(),
            max_line_bytes: max_line_bytes.max(1),
            discarding: false,
            eof: false,
        }
    }

    /// Returns the next frame, or `None` on EOF, a hard read error, or
    /// when `stop` reports true during a read timeout.
    ///
    /// `stop` is consulted only when the underlying reader returns
    /// `WouldBlock`/`TimedOut` (a socket with a read timeout) or
    /// `Interrupted` — a reader blocked on an untimed pipe simply stays
    /// blocked, which is why the TCP front end arms read timeouts on
    /// every accepted socket (DESIGN.md §13).
    pub fn next_frame(&mut self, stop: &dyn Fn() -> bool) -> Option<Frame> {
        loop {
            // A complete line in the carry buffer?
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the `\n`
                if self.discarding {
                    // Tail of an oversized line already answered.
                    self.discarding = false;
                    continue;
                }
                return Some(finish_line(line, self.max_line_bytes));
            }
            // No newline yet: an overlong prefix is answered once, then
            // discarded to its newline.
            if self.buf.len() > self.max_line_bytes {
                self.buf.clear();
                if !self.discarding {
                    self.discarding = true;
                    return Some(Frame::TooLong {
                        limit: self.max_line_bytes,
                    });
                }
                continue;
            }
            if self.eof {
                if self.buf.is_empty() || self.discarding {
                    return None;
                }
                // Final unterminated line, exactly like `BufRead::lines`.
                let line = std::mem::take(&mut self.buf);
                return Some(finish_line(line, self.max_line_bytes));
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => match e.kind() {
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted => {
                        if stop() {
                            return None;
                        }
                    }
                    // A dead socket ends this connection, nothing more.
                    _ => return None,
                },
            }
        }
    }
}

/// Strips one trailing `\r` (CRLF clients) and decodes.
fn finish_line(mut line: Vec<u8>, limit: usize) -> Frame {
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    if line.len() > limit {
        return Frame::TooLong { limit };
    }
    match String::from_utf8(line) {
        Ok(s) => Frame::Line(s),
        Err(_) => Frame::Invalid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn never() -> bool {
        false
    }

    fn frames(input: &[u8], cap: usize) -> Vec<Frame> {
        let mut reader = FramedLineReader::new(input, cap);
        let mut out = Vec::new();
        while let Some(frame) = reader.next_frame(&never) {
            out.push(frame);
        }
        out
    }

    #[test]
    fn matches_bufread_lines_framing() {
        let input = b"alpha\nbeta\r\n\ngamma";
        assert_eq!(
            frames(input, 64),
            vec![
                Frame::Line("alpha".into()),
                Frame::Line("beta".into()),
                Frame::Line(String::new()),
                Frame::Line("gamma".into()),
            ]
        );
        // Trailing newline produces no phantom empty line.
        assert_eq!(frames(b"x\n", 64), vec![Frame::Line("x".into())]);
        assert_eq!(frames(b"", 64), Vec::<Frame>::new());
    }

    #[test]
    fn oversized_line_is_one_frame_and_framing_resumes() {
        let mut input = vec![b'a'; 100];
        input.extend_from_slice(b"\nok\n");
        assert_eq!(
            frames(&input, 8),
            vec![Frame::TooLong { limit: 8 }, Frame::Line("ok".into())]
        );
        // Oversized *final* line without a newline: same single frame.
        assert_eq!(frames(&[b'a'; 100], 8), vec![Frame::TooLong { limit: 8 }]);
        // Boundary: a line of exactly `cap` bytes is fine.
        let mut input = vec![b'b'; 8];
        input.push(b'\n');
        assert_eq!(frames(&input, 8), vec![Frame::Line("bbbbbbbb".into())]);
    }

    #[test]
    fn oversized_detection_does_not_wait_for_the_newline() {
        // 100 bytes, no newline ever: the frame must come from the
        // prefix alone (a hostile stream may never send `\n`).
        let endless = [b'x'; 100];
        let mut reader = FramedLineReader::new(&endless[..], 8);
        assert_eq!(reader.next_frame(&never), Some(Frame::TooLong { limit: 8 }));
        assert_eq!(reader.next_frame(&never), None);
    }

    #[test]
    fn invalid_utf8_is_contained() {
        assert_eq!(
            frames(b"\xff\xfe\nok\n", 64),
            vec![Frame::Invalid, Frame::Line("ok".into())]
        );
    }

    #[test]
    fn crlf_stripping_applies_before_the_cap() {
        // 8 payload bytes + \r\n under an 8-byte cap: still a clean line.
        assert_eq!(
            frames(b"bbbbbbbb\r\n", 8),
            vec![Frame::Line("bbbbbbbb".into())]
        );
    }

    /// A reader that yields `TimedOut` forever — the stop closure must
    /// be able to end it.
    struct AlwaysTimedOut;
    impl Read for AlwaysTimedOut {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(ErrorKind::TimedOut, "timed out"))
        }
    }

    #[test]
    fn stop_closure_ends_a_timed_out_reader() {
        let mut reader = FramedLineReader::new(AlwaysTimedOut, 64);
        assert_eq!(reader.next_frame(&|| true), None);
    }
}
