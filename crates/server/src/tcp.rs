//! The TCP front end of `fannet listen` (DESIGN.md §13).
//!
//! A hand-rolled `std::net` listener — the workspace is offline, so
//! there is no async runtime to reach for, and none is needed: one
//! reader thread per connection feeding the shared bounded queue scales
//! to the handful-to-hundreds of operator connections this server is
//! for, while the queue bound (not the thread count) is what limits
//! memory under load.
//!
//! Two polling choices make the graceful drain work without `poll(2)`:
//!
//! * the listener is non-blocking and the accept loop sleeps briefly on
//!   `WouldBlock`, so it can notice the shutdown flag (set by a
//!   `shutdown` request on any connection, or by SIGINT/SIGTERM via
//!   [`crate::signal`]) within [`ACCEPT_POLL`];
//! * every accepted socket gets a read timeout of [`READ_POLL`], so a
//!   reader blocked on an idle client re-checks the flag instead of
//!   sleeping forever.

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fannet_engine::Engine;

use crate::session::{Session, SessionConfig};

/// How long the accept loop sleeps when no connection is pending.
pub const ACCEPT_POLL: Duration = Duration::from_millis(50);
/// Read timeout armed on every accepted socket (the shutdown-flag poll
/// interval of an idle connection).
pub const READ_POLL: Duration = Duration::from_millis(100);

/// Binds `addr` and serves JSONL connections until a `shutdown` request
/// or `external_stop` (typically [`crate::signal::triggered`]) asks for
/// the drain. `ready` runs once with the bound address, before the
/// first accept — the hook tests use to learn an OS-assigned port.
///
/// # Errors
///
/// Returns the bind/configuration error if the listener cannot start;
/// per-connection failures after that are contained, never returned.
pub fn serve_tcp<A: ToSocketAddrs>(
    engine: Arc<Engine>,
    config: &SessionConfig,
    addr: A,
    external_stop: impl Fn() -> bool,
    ready: impl FnOnce(SocketAddr),
) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    ready(listener.local_addr()?);

    let session = Session::new(engine, config);
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if external_stop() {
            session.request_shutdown();
        }
        if session.shutdown_requested() {
            break;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                // The reader polls the shutdown flag on every timeout;
                // the writer is an independent clone so responses flow
                // while the reader blocks.
                if stream.set_read_timeout(Some(READ_POLL)).is_err() {
                    continue;
                }
                let Ok(writer) = stream.try_clone() else {
                    continue;
                };
                let conn = session.open_connection(&peer.to_string(), Box::new(writer));
                let shared = Arc::clone(&session.shared);
                readers.push(std::thread::spawn(move || {
                    crate::session::run_connection_reader(&shared, &conn, stream);
                }));
                readers.retain(|reader| !reader.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            // A failed accept (e.g. a connection reset before we got to
            // it) must not take the listener down.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Drain: stop accepting (done — the loop exited), wait for the
    // readers (each notices the flag within READ_POLL), then let every
    // submitted request finish and deliver its response.
    for reader in readers {
        let _ = reader.join();
    }
    session.drain();
    Ok(())
}
