//! # fannet-server
//!
//! The concurrent serving front end of the verification engine
//! (DESIGN.md §13): `fannet listen` (TCP) and `fannet serve` (stdio)
//! are two thin shells around one connection-handler core.
//!
//! * [`queue`] — the bounded request queue whose blocking `push` *is*
//!   the backpressure contract: a full queue stops the reader, the
//!   socket buffer fills, TCP flow control throttles the client.
//! * [`frame`] — bounded line framing; an oversized or non-UTF-8 line
//!   becomes one contained `error` response, never an OOM or a dead
//!   connection.
//! * [`session`] — the core: a worker pool draining the queue onto the
//!   shared resident [`fannet_engine::Engine`], with a per-connection
//!   sequencer that re-orders completions so every client sees
//!   responses in request order, and a drain barrier for graceful
//!   shutdown.
//! * [`metrics`] — the operator surface a `stats` request reports under
//!   its `server` key (uptime, qps, queue gauges, per-op counts).
//! * [`tcp`] — the `std::net` listener: non-blocking accept poll,
//!   one reader thread per connection, read timeouts so the drain can
//!   interrupt idle readers.
//! * [`signal`] — SIGINT/SIGTERM → the same graceful drain, without a
//!   `libc` dependency.
//!
//! The protocol itself (request parsing, dispatch, response rendering,
//! panic containment) lives in [`fannet_engine::protocol`]; this crate
//! adds concurrency, flow control and lifecycle around it, which is why
//! the stdio front end is byte-identical to the historical sequential
//! serve loop.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use fannet_engine::{Engine, EngineConfig};
//! use fannet_nn::{Activation, DenseLayer, Network, Readout};
//! use fannet_numeric::Rational;
//! use fannet_server::session::{answer_lines, SessionConfig};
//! use fannet_tensor::Matrix;
//!
//! let r = |n: i128| Rational::from_integer(n);
//! let net = Network::new(vec![DenseLayer::new(
//!     Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]])?,
//!     vec![r(0), r(0)],
//!     Activation::Identity,
//! )?], Readout::MaxPool)?;
//! let engine = Arc::new(Engine::new(net, EngineConfig::serving()));
//!
//! // Four pipelined requests through the full session round-trip:
//! // responses come back in request order, whatever the worker count.
//! let responses = answer_lines(
//!     engine,
//!     &SessionConfig::with_workers(4),
//!     "{\"op\":\"check\",\"id\":1,\"input\":[100,82],\"label\":0,\"delta\":5}\n\
//!      {\"op\":\"tolerance\",\"id\":2,\"input\":[100,82],\"label\":0}\n\
//!      not json\n\
//!      {\"op\":\"stats\",\"id\":4}\n",
//! );
//! assert_eq!(responses.len(), 4);
//! assert!(responses[0].starts_with("{\"op\":\"check\",\"id\":1"));
//! assert!(responses[1].starts_with("{\"op\":\"tolerance\",\"id\":2"));
//! assert!(responses[2].starts_with("{\"op\":\"error\""));
//! assert!(responses[3].contains("\"server\":{"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod frame;
pub mod metrics;
pub mod queue;
pub mod session;
pub mod signal;
pub mod tcp;

pub use frame::{Frame, FramedLineReader, DEFAULT_MAX_LINE_BYTES};
pub use metrics::ServerMetrics;
pub use queue::BoundedQueue;
pub use session::{answer_lines, serve_stdio, Session, SessionConfig, DEFAULT_QUEUE_CAPACITY};
pub use tcp::serve_tcp;
