//! The connection-handler core shared by `fannet serve` and
//! `fannet listen` (DESIGN.md §13).
//!
//! A [`Session`] owns one resident [`Engine`], a worker pool draining a
//! bounded [`BoundedQueue`] of framed request lines, and the shared
//! [`ServerMetrics`]. Front ends differ only in where connections come
//! from: the stdio front end ([`serve_stdio`]) opens exactly one
//! (stdin/stdout), the TCP front end ([`crate::tcp::serve_tcp`]) opens
//! one per accepted socket.
//!
//! ## The ordering guarantee
//!
//! Each connection's reader assigns consecutive sequence numbers to its
//! frames. Workers answer jobs in whatever order the pool schedules
//! them, but a completed response is handed to the *connection
//! sequencer* (`Connection::complete`), which parks out-of-order
//! completions in a `BTreeMap` and writes a response only when every
//! earlier one of the same connection has been written. Every client
//! therefore sees responses in request order, regardless of worker
//! count — the property the historical sequential serve loop provided
//! for free, kept under concurrency.
//!
//! ## Containment
//!
//! One malformed, oversized or panicking request becomes one `error`
//! response ([`fannet_engine::protocol::handle`] already contains solver
//! panics); one connection whose client vanished mid-write has its
//! writer dropped and its remaining responses discarded, while every
//! other connection keeps streaming.
//!
//! ## Drain
//!
//! A `shutdown` request (or a signal, for the TCP front end) sets the
//! session-wide shutdown flag. Readers stop submitting, in-flight
//! requests finish and their responses are delivered, then the queue
//! closes and the workers exit ([`Session::drain`]). Lines a client
//! pipelined after the acknowledged `shutdown` may be answered or
//! dropped, depending on how far its reader got.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fannet_engine::protocol::{self, RequestTimeline, Response};
use fannet_engine::Engine;
use fannet_obs::TraceWriter;

use crate::frame::{Frame, FramedLineReader, DEFAULT_MAX_LINE_BYTES};
use crate::metrics::{ConnStats, ServerMetrics};
use crate::queue::BoundedQueue;

/// Saturating nanoseconds from `from` to `to` (zero if time appears to
/// run backwards across threads).
fn ns_between(from: Instant, to: Instant) -> u64 {
    u64::try_from(to.saturating_duration_since(from).as_nanos()).unwrap_or(u64::MAX)
}

/// Default bound of the request queue (`--queue-capacity`).
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// Tuning knobs of a serving session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Requests the queue holds before readers block (backpressure).
    pub queue_capacity: usize,
    /// Per-line byte cap of the framing layer.
    pub max_line_bytes: usize,
    /// Log any request slower than this many milliseconds, with its
    /// full cost trace, through the structured logger
    /// (`--slow-query-ms`, DESIGN.md §14). `None` disables the log.
    pub slow_query_ms: Option<u64>,
    /// Stream every request's lifecycle phases (and, via the global
    /// hook, the engine's pipeline spans) to this Chrome trace-event
    /// writer (`--trace-out`, DESIGN.md §15). `None` disables export.
    pub trace_out: Option<Arc<TraceWriter>>,
}

impl SessionConfig {
    /// `workers` threads with the default queue bound and line cap.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        SessionConfig {
            workers,
            ..SessionConfig::default()
        }
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            workers: 1,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            slow_query_ms: None,
            trace_out: None,
        }
    }
}

/// Everything the reader, worker and front-end threads share.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) engine: Arc<Engine>,
    pub(crate) queue: BoundedQueue<Job>,
    pub(crate) metrics: ServerMetrics,
    /// Set by a `shutdown` request or an external signal; readers stop
    /// submitting once they observe it.
    pub(crate) shutdown: AtomicBool,
    pub(crate) progress: Mutex<Progress>,
    /// Signalled on every completion (and on a withdrawn submission) so
    /// [`Session::drain`] can wait for `completed == submitted`.
    pub(crate) idle: Condvar,
    pub(crate) max_line_bytes: usize,
    pub(crate) slow_query_ms: Option<u64>,
    /// The Chrome trace-event writer request phases stream to
    /// (`--trace-out`); `None` when export is off.
    pub(crate) trace: Option<Arc<TraceWriter>>,
}

/// Submission/completion accounting for the drain barrier.
#[derive(Debug, Default)]
pub(crate) struct Progress {
    pub(crate) submitted: u64,
    pub(crate) completed: u64,
}

/// One framed line waiting for (or claimed by) a worker.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) conn: Arc<Connection>,
    pub(crate) seq: u64,
    pub(crate) frame: Frame,
    /// When the reader enqueued the frame — the zero point of the
    /// request's lifecycle phases (DESIGN.md §15).
    pub(crate) enqueued: Instant,
}

/// Lifecycle stamps a completed response carries into the sequencer:
/// everything needed to finish the phase breakdown once the write
/// actually happens.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RequestMeta {
    op: &'static str,
    id: Option<u64>,
    enqueued: Instant,
    queue_ns: u64,
    service_ns: u64,
    /// When the worker handed the response to the sequencer; park →
    /// write-start is the `sequence` phase.
    parked: Instant,
}

/// The write side of one client connection, with its response sequencer.
#[derive(Debug)]
pub struct Connection {
    next_seq: AtomicU64,
    /// This connection's row of the accounting table; readers, workers
    /// and the sequencer all stamp it.
    pub(crate) stats: Arc<ConnStats>,
    out: Mutex<OutState>,
}

/// One parked completion: the rendered line plus its lifecycle stamps.
#[derive(Debug)]
struct Pending {
    line: String,
    meta: RequestMeta,
}

struct OutState {
    /// Sequence number the next written response must carry.
    next: u64,
    /// Completions that arrived ahead of an earlier, still-running job.
    pending: BTreeMap<u64, Pending>,
    /// `None` once a write failed — the client is gone; later responses
    /// are sequenced (for the drain accounting) but discarded.
    writer: Option<Box<dyn Write + Send>>,
}

// `Box<dyn Write + Send>` has no Debug; summarize the sequencer state.
impl std::fmt::Debug for OutState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutState")
            .field("next", &self.next)
            .field("parked", &self.pending.len())
            .field("alive", &self.writer.is_some())
            .finish()
    }
}

impl Connection {
    fn new(stats: Arc<ConnStats>, writer: Box<dyn Write + Send>) -> Self {
        Connection {
            next_seq: AtomicU64::new(0),
            stats,
            out: Mutex::new(OutState {
                next: 0,
                pending: BTreeMap::new(),
                writer: Some(writer),
            }),
        }
    }

    /// Hands a completed response line to the sequencer: it is written
    /// immediately if every earlier response went out, parked otherwise.
    ///
    /// This is also where each written request's phase breakdown is
    /// finalized. The queue/service/sequence phases are recorded
    /// *before* the physical write — so by the time a client can read a
    /// response, its phases are in the histograms (the exact-count
    /// invariant the concurrency tests assert) — while the write phase,
    /// the timeline ring entry and the trace-event rows land right
    /// after the write returns.
    fn complete(&self, shared: &Shared, seq: u64, line: String, meta: RequestMeta) {
        let mut out = self.out.lock().expect("connection lock poisoned");
        out.pending.insert(seq, Pending { line, meta });
        loop {
            let next = out.next;
            let Some(Pending { line, meta }) = out.pending.remove(&next) else {
                break;
            };
            out.next += 1;
            let write_start = Instant::now();
            let sequence_ns = ns_between(meta.parked, write_start);
            shared
                .metrics
                .record_phases(meta.queue_ns, meta.service_ns, sequence_ns);
            let mut wrote = false;
            if let Some(writer) = out.writer.as_mut() {
                let result = writer
                    .write_all(line.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush());
                if result.is_err() {
                    // Dead client: contain it, keep the session alive.
                    out.writer = None;
                } else {
                    wrote = true;
                }
            }
            let write_ns = ns_between(write_start, Instant::now());
            let wall_ns = ns_between(meta.enqueued, Instant::now());
            shared.metrics.record_write_phase(write_ns);
            if wrote {
                self.stats.add_bytes_out(line.len() as u64 + 1);
            }
            shared.metrics.record_timeline(RequestTimeline {
                conn: self.stats.id,
                id: meta.id,
                op: meta.op,
                queue_ns: meta.queue_ns,
                service_ns: meta.service_ns,
                sequence_ns,
                write_ns,
                wall_ns,
            });
            if let Some(trace) = &shared.trace {
                self.emit_trace_events(trace, &meta, sequence_ns, write_ns);
            }
        }
    }

    /// Emits one complete event per lifecycle phase onto this
    /// connection's lane (`pid` 1, `tid` = connection id), so the four
    /// phases of a request line up end to end in Perfetto.
    fn emit_trace_events(
        &self,
        trace: &TraceWriter,
        meta: &RequestMeta,
        sequence_ns: u64,
        write_ns: u64,
    ) {
        let mut args: Vec<(&str, fannet_obs::FieldValue)> =
            vec![("conn", self.stats.id.into()), ("op", meta.op.into())];
        if let Some(id) = meta.id {
            args.push(("id", id.into()));
        }
        let queue_ts = trace.offset_us(meta.enqueued);
        let queue_us = meta.queue_ns / 1_000;
        let service_us = meta.service_ns / 1_000;
        let park_ts = trace.offset_us(meta.parked);
        let sequence_us = sequence_ns / 1_000;
        let lane = fannet_obs::Lane::request(self.stats.id);
        trace.complete_event("queue", "request", lane, queue_ts, queue_us, &args);
        trace.complete_event(
            "service",
            "request",
            lane,
            queue_ts + queue_us,
            service_us,
            &args,
        );
        trace.complete_event("sequence", "request", lane, park_ts, sequence_us, &args);
        trace.complete_event(
            "write",
            "request",
            lane,
            park_ts + sequence_us,
            write_ns / 1_000,
            &args,
        );
    }
}

/// A running worker pool bound to one resident engine.
#[derive(Debug)]
pub struct Session {
    pub(crate) shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Session {
    /// Spawns `config.workers` worker threads against `engine`.
    #[must_use]
    pub fn new(engine: Arc<Engine>, config: &SessionConfig) -> Self {
        let shared = Arc::new(Shared {
            engine,
            queue: BoundedQueue::new(config.queue_capacity),
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            progress: Mutex::new(Progress::default()),
            idle: Condvar::new(),
            max_line_bytes: config.max_line_bytes,
            slow_query_ms: config.slow_query_ms,
            trace: config.trace_out.clone(),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Session { shared, workers }
    }

    /// Registers a new client connection writing responses to `writer`,
    /// identified as `peer` in the accounting table and lifecycle logs
    /// (`"stdio"` for the stdin front end, the socket address for TCP).
    #[must_use]
    pub fn open_connection(&self, peer: &str, writer: Box<dyn Write + Send>) -> Arc<Connection> {
        open_connection(&self.shared, peer, writer)
    }

    /// Records `conn`'s reader ending (EOF, error, or drain). In-flight
    /// requests of the connection still complete and still write.
    pub fn close_connection(&self, conn: &Arc<Connection>) {
        close_connection(&self.shared, conn);
    }

    /// Reads `input` to EOF (or until shutdown), submitting one job per
    /// frame. Blank lines are skipped without consuming a sequence
    /// number, matching the historical serve loop. Runs on the calling
    /// thread; spawn one per connection.
    pub fn run_reader<R: Read>(&self, conn: &Arc<Connection>, input: R) {
        run_reader(&self.shared, conn, input);
    }

    /// Asks the session to stop: readers cease submitting at their next
    /// shutdown-flag poll.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a `shutdown` request or external signal was observed.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for every submitted request to complete (responses
    /// written), then closes the queue and joins the workers.
    ///
    /// Call after the readers stopped submitting — at EOF of the stdio
    /// front end, or after the shutdown flag stopped the TCP readers.
    pub fn drain(self) {
        {
            let mut progress = self.shared.progress.lock().expect("progress lock poisoned");
            while progress.completed < progress.submitted {
                progress = self
                    .shared
                    .idle
                    .wait(progress)
                    .expect("progress lock poisoned");
            }
        }
        self.shared.queue.close();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// Registers a connection against `shared`: one [`ConnStats`] row, one
/// structured accept record (DESIGN.md §15).
pub(crate) fn open_connection(
    shared: &Arc<Shared>,
    peer: &str,
    writer: Box<dyn Write + Send>,
) -> Arc<Connection> {
    let stats = shared.metrics.register_connection(peer);
    fannet_obs::log::info(
        "fannet_server::connection",
        "connection opened",
        &[
            ("conn", stats.id.into()),
            ("peer", stats.peer.as_str().into()),
        ],
    );
    Arc::new(Connection::new(stats, writer))
}

/// Marks `conn` closed (idempotently) and emits the structured close
/// record: how long the connection lived, what it sent and received,
/// and how long backpressure held its reader.
pub(crate) fn close_connection(shared: &Shared, conn: &Connection) {
    let stats = &conn.stats;
    if !shared.metrics.close_connection(stats) {
        return;
    }
    let duration_ms = u64::try_from(stats.opened.elapsed().as_millis()).unwrap_or(u64::MAX);
    fannet_obs::log::info(
        "fannet_server::connection",
        "connection closed",
        &[
            ("conn", stats.id.into()),
            ("peer", stats.peer.as_str().into()),
            ("duration_ms", duration_ms.into()),
            ("requests", stats.requests().into()),
            ("bytes_in", stats.bytes_in_total().into()),
            ("bytes_out", stats.bytes_out_total().into()),
            ("queue_blocked_ns", stats.queue_blocked_total_ns().into()),
        ],
    );
}

/// The body of a TCP per-connection reader thread: read to EOF (or
/// shutdown), then record the connection closed.
pub(crate) fn run_connection_reader<R: Read>(
    shared: &Arc<Shared>,
    conn: &Arc<Connection>,
    input: R,
) {
    run_reader(shared, conn, input);
    close_connection(shared, conn);
}

/// The per-connection read loop: frame, filter blanks, submit.
fn run_reader<R: Read>(shared: &Arc<Shared>, conn: &Arc<Connection>, input: R) {
    let stop = || shared.shutdown.load(Ordering::SeqCst);
    let mut reader = FramedLineReader::new(input, shared.max_line_bytes);
    loop {
        if stop() {
            break;
        }
        let Some(frame) = reader.next_frame(&stop) else {
            break;
        };
        if let Frame::Line(line) = &frame {
            if line.trim().is_empty() {
                continue;
            }
        }
        // Submission is counted before the push so the drain barrier can
        // never observe a completion ahead of its submission.
        let seq = conn.next_seq.fetch_add(1, Ordering::SeqCst);
        shared
            .progress
            .lock()
            .expect("progress lock poisoned")
            .submitted += 1;
        let job = Job {
            conn: Arc::clone(conn),
            seq,
            frame,
            enqueued: Instant::now(),
        };
        conn.stats.enter_queue();
        let push_start = Instant::now();
        if shared.queue.push(job).is_err() {
            // Queue closed mid-push: withdraw the submission.
            conn.stats.leave_queue();
            shared
                .progress
                .lock()
                .expect("progress lock poisoned")
                .submitted -= 1;
            shared.idle.notify_all();
            break;
        }
        // Push time is backpressure actually applied to this peer —
        // near zero when the queue had room, the full block otherwise.
        conn.stats
            .add_queue_blocked_ns(ns_between(push_start, Instant::now()));
    }
}

/// One worker: claim a job, answer it, sequence the response.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        job.conn.stats.leave_queue();
        let dispatched = Instant::now();
        let queue_ns = ns_between(job.enqueued, dispatched);
        let (line, op, id) = process_frame(shared, &job, queue_ns);
        let service_ns = ns_between(dispatched, Instant::now());
        shared.metrics.end();
        let meta = RequestMeta {
            op,
            id,
            enqueued: job.enqueued,
            queue_ns,
            service_ns,
            parked: Instant::now(),
        };
        job.conn.complete(shared, job.seq, line, meta);
        shared
            .progress
            .lock()
            .expect("progress lock poisoned")
            .completed += 1;
        shared.idle.notify_all();
    }
}

/// Answers one frame; this is where requests are counted (dispatch
/// time, session-wide and per-connection), timed into the latency
/// histograms, checked against the slow-query threshold, and where a
/// `stats` response gains its `server` block (a `metrics` response its
/// request/tier/phase families and `recent` timelines). Returns the
/// rendered line plus the op name and request tag the sequencer stamps
/// into the phase records (`"invalid"` for undecodable frames).
fn process_frame(shared: &Shared, job: &Job, queue_ns: u64) -> (String, &'static str, Option<u64>) {
    let conn_stats = &job.conn.stats;
    let mut op: &'static str = "invalid";
    let mut id: Option<u64> = None;
    let response = match &job.frame {
        Frame::Line(line) => {
            // Bytes are attributed at dispatch, like the op counts, so
            // the accounting a `stats` request observes under a single
            // worker is deterministic.
            conn_stats.add_bytes_in(line.len() as u64 + 1);
            match protocol::parse_request(line) {
                Ok(request) => {
                    shared.metrics.begin(&request);
                    conn_stats.count_request(&request);
                    // Timing is always forced so the histograms and the
                    // slow-query log see every request; the response embeds
                    // the trace only when the client asked (`"trace":true`).
                    let start = Instant::now();
                    let (mut response, trace) =
                        protocol::handle_traced(&shared.engine, &request, true);
                    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    op = protocol::request_op(&request);
                    id = protocol::request_id(&request);
                    shared.metrics.record_latency(op, wall_ns);
                    if let Some(trace) = &trace {
                        shared.metrics.record_tiers(trace);
                    }
                    log_if_slow(shared, op, &request, wall_ns, queue_ns, trace.as_ref());
                    // The engine cannot see the serving queue; attribute
                    // the wait here so a `"trace":true` client learns
                    // where its request actually stalled.
                    if let Some(embedded) = protocol::response_trace_mut(&mut response) {
                        embedded.queue_ns = Some(queue_ns);
                    }
                    match &mut response {
                        Response::Stats { server, .. } => {
                            *server = Some(shared.metrics.snapshot(
                                shared.queue.depth() as u64,
                                shared.queue.high_water() as u64,
                                shared.queue.capacity() as u64,
                            ));
                        }
                        Response::Metrics { text, recent, .. } => {
                            // Server families first, then whatever the bare
                            // dispatch rendered (the process span registry).
                            *text = format!("{}{}", shared.metrics.render_prometheus(), text);
                            *recent = shared.metrics.recent_timelines();
                        }
                        Response::Shutdown { .. } => {
                            shared.shutdown.store(true, Ordering::SeqCst);
                        }
                        _ => {}
                    }
                    response
                }
                Err(message) => {
                    shared.metrics.begin_invalid();
                    conn_stats.count_invalid();
                    Response::Error { id: None, message }
                }
            }
        }
        Frame::TooLong { limit } => {
            shared.metrics.begin_invalid();
            conn_stats.count_invalid();
            Response::Error {
                id: None,
                message: format!("line exceeds --max-line-bytes ({limit} bytes)"),
            }
        }
        Frame::Invalid => {
            shared.metrics.begin_invalid();
            conn_stats.count_invalid();
            Response::Error {
                id: None,
                message: "line is not valid UTF-8".to_string(),
            }
        }
    };
    (protocol::render_response(&response), op, id)
}

/// Emits the slow-query record when `wall_ns` crosses the configured
/// threshold: the full cost trace of the offending request, one JSON
/// line on stderr via the structured logger (DESIGN.md §14).
fn log_if_slow(
    shared: &Shared,
    op: &'static str,
    request: &protocol::Request,
    wall_ns: u64,
    queue_ns: u64,
    trace: Option<&protocol::QueryTrace>,
) {
    let Some(threshold_ms) = shared.slow_query_ms else {
        return;
    };
    if wall_ns < threshold_ms.saturating_mul(1_000_000) {
        return;
    }
    let mut fields: Vec<(&str, fannet_obs::FieldValue)> = vec![
        ("op", op.into()),
        ("wall_ns", wall_ns.into()),
        ("queue_ns", queue_ns.into()),
        ("threshold_ms", threshold_ms.into()),
    ];
    if let Some(id) = protocol::request_id(request) {
        fields.push(("id", id.into()));
    }
    if let Some(trace) = trace {
        fields.push(("cache", trace.cache_name().into()));
        fields.push(("interval_ns", trace.stats.interval_ns.into()));
        fields.push(("zonotope_ns", trace.stats.zonotope_ns.into()));
        fields.push(("exact_ns", trace.stats.exact_ns.into()));
        fields.push(("boxes_visited", trace.stats.boxes_visited.into()));
        fields.push(("depth_high_water", trace.stats.depth_high_water.into()));
    }
    fannet_obs::log::warn("fannet_server::slow_query", "slow query", &fields);
}

/// Runs the stdio front end: one connection reading `input`, writing
/// `output`, over a fresh session. Returns when the input reaches EOF or
/// a `shutdown` request drains the session — whichever comes first.
///
/// The reader runs on its own thread so a `shutdown` request can end
/// the session while `input` (an untimed pipe, typically stdin) stays
/// open and blocked. After a shutdown-without-EOF the reader thread is
/// left parked on that read; the caller is expected to exit.
pub fn serve_stdio<R, W>(engine: Arc<Engine>, config: &SessionConfig, input: R, output: W)
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    let session = Session::new(engine, config);
    let conn = session.open_connection("stdio", Box::new(output));
    let reader_done = Arc::new((Mutex::new(false), Condvar::new()));
    {
        let shared = Arc::clone(&session.shared);
        let conn = Arc::clone(&conn);
        let reader_done = Arc::clone(&reader_done);
        std::thread::spawn(move || {
            run_reader(&shared, &conn, input);
            let (done, bell) = &*reader_done;
            *done.lock().expect("reader-done lock poisoned") = true;
            bell.notify_all();
        });
    }
    // Wait for EOF or shutdown; the poll interval only bounds how fast a
    // shutdown request turns into an exit.
    {
        let (done, bell) = &*reader_done;
        let mut finished = done.lock().expect("reader-done lock poisoned");
        while !*finished && !session.shutdown_requested() {
            let (guard, _) = bell
                .wait_timeout(finished, Duration::from_millis(50))
                .expect("reader-done lock poisoned");
            finished = guard;
        }
    }
    // The connection's write side stays live until every queued request
    // has answered — close it after the drain, so a `stats` request
    // always observes `connections_open` = 1 regardless of how fast the
    // input reached EOF (and the close record reports final totals).
    let shared = Arc::clone(&session.shared);
    session.drain();
    close_connection(&shared, &conn);
}

/// Convenience used by tests and callers that already hold raw lines:
/// answers them through a full session round-trip (submit → worker →
/// sequencer) and returns the response lines in order.
#[must_use]
pub fn answer_lines(engine: Arc<Engine>, config: &SessionConfig, input: &str) -> Vec<String> {
    let output = SharedBuffer::default();
    serve_stdio(
        engine,
        config,
        std::io::Cursor::new(input.to_string()),
        output.clone(),
    );
    let text = output.take();
    text.lines().map(str::to_string).collect()
}

/// An in-memory `Write` target shared across threads (test plumbing).
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// The UTF-8 contents written so far.
    ///
    /// # Panics
    ///
    /// Panics if a writer produced invalid UTF-8 (responses never do).
    #[must_use]
    pub fn take(&self) -> String {
        String::from_utf8(self.0.lock().expect("buffer lock poisoned").clone())
            .expect("responses are UTF-8")
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("buffer lock poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}
