//! The connection-handler core shared by `fannet serve` and
//! `fannet listen` (DESIGN.md §13).
//!
//! A [`Session`] owns one resident [`Engine`], a worker pool draining a
//! bounded [`BoundedQueue`] of framed request lines, and the shared
//! [`ServerMetrics`]. Front ends differ only in where connections come
//! from: the stdio front end ([`serve_stdio`]) opens exactly one
//! (stdin/stdout), the TCP front end ([`crate::tcp::serve_tcp`]) opens
//! one per accepted socket.
//!
//! ## The ordering guarantee
//!
//! Each connection's reader assigns consecutive sequence numbers to its
//! frames. Workers answer jobs in whatever order the pool schedules
//! them, but a completed response is handed to the *connection
//! sequencer* (`Connection::complete`), which parks out-of-order
//! completions in a `BTreeMap` and writes a response only when every
//! earlier one of the same connection has been written. Every client
//! therefore sees responses in request order, regardless of worker
//! count — the property the historical sequential serve loop provided
//! for free, kept under concurrency.
//!
//! ## Containment
//!
//! One malformed, oversized or panicking request becomes one `error`
//! response ([`fannet_engine::protocol::handle`] already contains solver
//! panics); one connection whose client vanished mid-write has its
//! writer dropped and its remaining responses discarded, while every
//! other connection keeps streaming.
//!
//! ## Drain
//!
//! A `shutdown` request (or a signal, for the TCP front end) sets the
//! session-wide shutdown flag. Readers stop submitting, in-flight
//! requests finish and their responses are delivered, then the queue
//! closes and the workers exit ([`Session::drain`]). Lines a client
//! pipelined after the acknowledged `shutdown` may be answered or
//! dropped, depending on how far its reader got.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use fannet_engine::protocol::{self, Response};
use fannet_engine::Engine;

use crate::frame::{Frame, FramedLineReader, DEFAULT_MAX_LINE_BYTES};
use crate::metrics::ServerMetrics;
use crate::queue::BoundedQueue;

/// Default bound of the request queue (`--queue-capacity`).
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// Tuning knobs of a serving session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Requests the queue holds before readers block (backpressure).
    pub queue_capacity: usize,
    /// Per-line byte cap of the framing layer.
    pub max_line_bytes: usize,
    /// Log any request slower than this many milliseconds, with its
    /// full cost trace, through the structured logger
    /// (`--slow-query-ms`, DESIGN.md §14). `None` disables the log.
    pub slow_query_ms: Option<u64>,
}

impl SessionConfig {
    /// `workers` threads with the default queue bound and line cap.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        SessionConfig {
            workers,
            ..SessionConfig::default()
        }
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            workers: 1,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            slow_query_ms: None,
        }
    }
}

/// Everything the reader, worker and front-end threads share.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) engine: Arc<Engine>,
    pub(crate) queue: BoundedQueue<Job>,
    pub(crate) metrics: ServerMetrics,
    /// Set by a `shutdown` request or an external signal; readers stop
    /// submitting once they observe it.
    pub(crate) shutdown: AtomicBool,
    pub(crate) progress: Mutex<Progress>,
    /// Signalled on every completion (and on a withdrawn submission) so
    /// [`Session::drain`] can wait for `completed == submitted`.
    pub(crate) idle: Condvar,
    pub(crate) max_line_bytes: usize,
    pub(crate) slow_query_ms: Option<u64>,
}

/// Submission/completion accounting for the drain barrier.
#[derive(Debug, Default)]
pub(crate) struct Progress {
    pub(crate) submitted: u64,
    pub(crate) completed: u64,
}

/// One framed line waiting for (or claimed by) a worker.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) conn: Arc<Connection>,
    pub(crate) seq: u64,
    pub(crate) frame: Frame,
}

/// The write side of one client connection, with its response sequencer.
#[derive(Debug)]
pub struct Connection {
    next_seq: AtomicU64,
    out: Mutex<OutState>,
}

struct OutState {
    /// Sequence number the next written response must carry.
    next: u64,
    /// Completions that arrived ahead of an earlier, still-running job.
    pending: BTreeMap<u64, String>,
    /// `None` once a write failed — the client is gone; later responses
    /// are sequenced (for the drain accounting) but discarded.
    writer: Option<Box<dyn Write + Send>>,
}

// `Box<dyn Write + Send>` has no Debug; summarize the sequencer state.
impl std::fmt::Debug for OutState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutState")
            .field("next", &self.next)
            .field("parked", &self.pending.len())
            .field("alive", &self.writer.is_some())
            .finish()
    }
}

impl Connection {
    fn new(writer: Box<dyn Write + Send>) -> Self {
        Connection {
            next_seq: AtomicU64::new(0),
            out: Mutex::new(OutState {
                next: 0,
                pending: BTreeMap::new(),
                writer: Some(writer),
            }),
        }
    }

    /// Hands a completed response line to the sequencer: it is written
    /// immediately if every earlier response went out, parked otherwise.
    fn complete(&self, seq: u64, line: String) {
        let mut out = self.out.lock().expect("connection lock poisoned");
        out.pending.insert(seq, line);
        loop {
            let next = out.next;
            let Some(line) = out.pending.remove(&next) else {
                break;
            };
            out.next += 1;
            if let Some(writer) = out.writer.as_mut() {
                let wrote = writer
                    .write_all(line.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush());
                if wrote.is_err() {
                    // Dead client: contain it, keep the session alive.
                    out.writer = None;
                }
            }
        }
    }
}

/// A running worker pool bound to one resident engine.
#[derive(Debug)]
pub struct Session {
    pub(crate) shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Session {
    /// Spawns `config.workers` worker threads against `engine`.
    #[must_use]
    pub fn new(engine: Arc<Engine>, config: &SessionConfig) -> Self {
        let shared = Arc::new(Shared {
            engine,
            queue: BoundedQueue::new(config.queue_capacity),
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            progress: Mutex::new(Progress::default()),
            idle: Condvar::new(),
            max_line_bytes: config.max_line_bytes,
            slow_query_ms: config.slow_query_ms,
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Session { shared, workers }
    }

    /// Registers a new client connection writing responses to `writer`.
    #[must_use]
    pub fn open_connection(&self, writer: Box<dyn Write + Send>) -> Arc<Connection> {
        self.shared.metrics.connection_opened();
        Arc::new(Connection::new(writer))
    }

    /// Records `conn`'s reader ending (EOF, error, or drain). In-flight
    /// requests of the connection still complete and still write.
    pub fn close_connection(&self, _conn: &Arc<Connection>) {
        self.shared.metrics.connection_closed();
    }

    /// Reads `input` to EOF (or until shutdown), submitting one job per
    /// frame. Blank lines are skipped without consuming a sequence
    /// number, matching the historical serve loop. Runs on the calling
    /// thread; spawn one per connection.
    pub fn run_reader<R: Read>(&self, conn: &Arc<Connection>, input: R) {
        run_reader(&self.shared, conn, input);
    }

    /// Asks the session to stop: readers cease submitting at their next
    /// shutdown-flag poll.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a `shutdown` request or external signal was observed.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for every submitted request to complete (responses
    /// written), then closes the queue and joins the workers.
    ///
    /// Call after the readers stopped submitting — at EOF of the stdio
    /// front end, or after the shutdown flag stopped the TCP readers.
    pub fn drain(self) {
        {
            let mut progress = self.shared.progress.lock().expect("progress lock poisoned");
            while progress.completed < progress.submitted {
                progress = self
                    .shared
                    .idle
                    .wait(progress)
                    .expect("progress lock poisoned");
            }
        }
        self.shared.queue.close();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// The body of a TCP per-connection reader thread: read to EOF (or
/// shutdown), then record the connection closed.
pub(crate) fn run_connection_reader<R: Read>(
    shared: &Arc<Shared>,
    conn: &Arc<Connection>,
    input: R,
) {
    run_reader(shared, conn, input);
    shared.metrics.connection_closed();
}

/// The per-connection read loop: frame, filter blanks, submit.
fn run_reader<R: Read>(shared: &Arc<Shared>, conn: &Arc<Connection>, input: R) {
    let stop = || shared.shutdown.load(Ordering::SeqCst);
    let mut reader = FramedLineReader::new(input, shared.max_line_bytes);
    loop {
        if stop() {
            break;
        }
        let Some(frame) = reader.next_frame(&stop) else {
            break;
        };
        if let Frame::Line(line) = &frame {
            if line.trim().is_empty() {
                continue;
            }
        }
        // Submission is counted before the push so the drain barrier can
        // never observe a completion ahead of its submission.
        let seq = conn.next_seq.fetch_add(1, Ordering::SeqCst);
        shared
            .progress
            .lock()
            .expect("progress lock poisoned")
            .submitted += 1;
        let job = Job {
            conn: Arc::clone(conn),
            seq,
            frame,
        };
        if shared.queue.push(job).is_err() {
            // Queue closed mid-push: withdraw the submission.
            shared
                .progress
                .lock()
                .expect("progress lock poisoned")
                .submitted -= 1;
            shared.idle.notify_all();
            break;
        }
    }
}

/// One worker: claim a job, answer it, sequence the response.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let line = process_frame(shared, &job.frame);
        shared.metrics.end();
        job.conn.complete(job.seq, line);
        shared
            .progress
            .lock()
            .expect("progress lock poisoned")
            .completed += 1;
        shared.idle.notify_all();
    }
}

/// Answers one frame; this is where requests are counted (dispatch
/// time), timed into the latency histograms, checked against the
/// slow-query threshold, and where a `stats` response gains its
/// `server` block (a `metrics` response its request/tier families).
fn process_frame(shared: &Shared, frame: &Frame) -> String {
    let response = match frame {
        Frame::Line(line) => match protocol::parse_request(line) {
            Ok(request) => {
                shared.metrics.begin(&request);
                // Timing is always forced so the histograms and the
                // slow-query log see every request; the response embeds
                // the trace only when the client asked (`"trace":true`).
                let start = std::time::Instant::now();
                let (mut response, trace) = protocol::handle_traced(&shared.engine, &request, true);
                let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let op = protocol::request_op(&request);
                shared.metrics.record_latency(op, wall_ns);
                if let Some(trace) = &trace {
                    shared.metrics.record_tiers(trace);
                }
                log_if_slow(shared, op, &request, wall_ns, trace.as_ref());
                match &mut response {
                    Response::Stats { server, .. } => {
                        *server = Some(shared.metrics.snapshot(
                            shared.queue.depth() as u64,
                            shared.queue.high_water() as u64,
                            shared.queue.capacity() as u64,
                        ));
                    }
                    Response::Metrics { text, .. } => {
                        // Server families first, then whatever the bare
                        // dispatch rendered (the process span registry).
                        *text = format!("{}{}", shared.metrics.render_prometheus(), text);
                    }
                    Response::Shutdown { .. } => {
                        shared.shutdown.store(true, Ordering::SeqCst);
                    }
                    _ => {}
                }
                response
            }
            Err(message) => {
                shared.metrics.begin_invalid();
                Response::Error { id: None, message }
            }
        },
        Frame::TooLong { limit } => {
            shared.metrics.begin_invalid();
            Response::Error {
                id: None,
                message: format!("line exceeds --max-line-bytes ({limit} bytes)"),
            }
        }
        Frame::Invalid => {
            shared.metrics.begin_invalid();
            Response::Error {
                id: None,
                message: "line is not valid UTF-8".to_string(),
            }
        }
    };
    protocol::render_response(&response)
}

/// Emits the slow-query record when `wall_ns` crosses the configured
/// threshold: the full cost trace of the offending request, one JSON
/// line on stderr via the structured logger (DESIGN.md §14).
fn log_if_slow(
    shared: &Shared,
    op: &'static str,
    request: &protocol::Request,
    wall_ns: u64,
    trace: Option<&protocol::QueryTrace>,
) {
    let Some(threshold_ms) = shared.slow_query_ms else {
        return;
    };
    if wall_ns < threshold_ms.saturating_mul(1_000_000) {
        return;
    }
    let mut fields: Vec<(&str, fannet_obs::FieldValue)> = vec![
        ("op", op.into()),
        ("wall_ns", wall_ns.into()),
        ("threshold_ms", threshold_ms.into()),
    ];
    if let Some(id) = protocol::request_id(request) {
        fields.push(("id", id.into()));
    }
    if let Some(trace) = trace {
        fields.push(("cache", trace.cache_name().into()));
        fields.push(("interval_ns", trace.stats.interval_ns.into()));
        fields.push(("zonotope_ns", trace.stats.zonotope_ns.into()));
        fields.push(("exact_ns", trace.stats.exact_ns.into()));
        fields.push(("boxes_visited", trace.stats.boxes_visited.into()));
        fields.push(("depth_high_water", trace.stats.depth_high_water.into()));
    }
    fannet_obs::log::warn("fannet_server::slow_query", "slow query", &fields);
}

/// Runs the stdio front end: one connection reading `input`, writing
/// `output`, over a fresh session. Returns when the input reaches EOF or
/// a `shutdown` request drains the session — whichever comes first.
///
/// The reader runs on its own thread so a `shutdown` request can end
/// the session while `input` (an untimed pipe, typically stdin) stays
/// open and blocked. After a shutdown-without-EOF the reader thread is
/// left parked on that read; the caller is expected to exit.
pub fn serve_stdio<R, W>(engine: Arc<Engine>, config: &SessionConfig, input: R, output: W)
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    let session = Session::new(engine, config);
    let conn = session.open_connection(Box::new(output));
    let reader_done = Arc::new((Mutex::new(false), Condvar::new()));
    {
        let shared = Arc::clone(&session.shared);
        let conn = Arc::clone(&conn);
        let reader_done = Arc::clone(&reader_done);
        std::thread::spawn(move || {
            run_reader(&shared, &conn, input);
            let (done, bell) = &*reader_done;
            *done.lock().expect("reader-done lock poisoned") = true;
            bell.notify_all();
        });
    }
    // Wait for EOF or shutdown; the poll interval only bounds how fast a
    // shutdown request turns into an exit.
    {
        let (done, bell) = &*reader_done;
        let mut finished = done.lock().expect("reader-done lock poisoned");
        while !*finished && !session.shutdown_requested() {
            let (guard, _) = bell
                .wait_timeout(finished, Duration::from_millis(50))
                .expect("reader-done lock poisoned");
            finished = guard;
        }
    }
    // The connection's write side stays live until every queued request
    // has answered — close it after the drain, so a `stats` request
    // always observes `connections_open` = 1 regardless of how fast the
    // input reached EOF.
    let shared = Arc::clone(&session.shared);
    session.drain();
    shared.metrics.connection_closed();
}

/// Convenience used by tests and callers that already hold raw lines:
/// answers them through a full session round-trip (submit → worker →
/// sequencer) and returns the response lines in order.
#[must_use]
pub fn answer_lines(engine: Arc<Engine>, config: &SessionConfig, input: &str) -> Vec<String> {
    let output = SharedBuffer::default();
    serve_stdio(
        engine,
        config,
        std::io::Cursor::new(input.to_string()),
        output.clone(),
    );
    let text = output.take();
    text.lines().map(str::to_string).collect()
}

/// An in-memory `Write` target shared across threads (test plumbing).
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// The UTF-8 contents written so far.
    ///
    /// # Panics
    ///
    /// Panics if a writer produced invalid UTF-8 (responses never do).
    #[must_use]
    pub fn take(&self) -> String {
        String::from_utf8(self.0.lock().expect("buffer lock poisoned").clone())
            .expect("responses are UTF-8")
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("buffer lock poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}
