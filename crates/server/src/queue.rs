//! The bounded MPMC request queue (DESIGN.md §13).
//!
//! This is the backpressure contract of the server: `push` **blocks**
//! while the queue is at capacity. A per-connection reader thread that
//! blocks here stops reading its socket, the socket's receive buffer
//! fills, and TCP flow control pushes back on the client — so a client
//! that pipelines faster than the workers can solve is throttled at the
//! transport, never buffered unboundedly in memory.
//!
//! `std::sync::mpsc::sync_channel` is bounded but single-consumer; a
//! worker *pool* needs multiple consumers, and the metrics surface
//! needs depth gauges, so the queue is a hand-rolled
//! `Mutex<VecDeque>` + two condvars with a depth high-water mark.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A blocking bounded multi-producer multi-consumer FIFO.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    /// Signalled when an item is popped (producers blocked in `push`).
    not_full: Condvar,
    /// Signalled when an item is pushed or the queue closes (consumers
    /// blocked in `pop`).
    not_empty: Condvar,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
    high_water: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
                high_water: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue was closed (the session is
    /// draining; the caller should stop producing).
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        while state.items.len() >= state.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue lock poisoned");
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained — the
    /// worker-pool exit condition (items enqueued before the close are
    /// still delivered).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: blocked producers fail, and consumers drain the
    /// remaining items then observe `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        drop(state);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Items currently queued (a racy gauge, exact only when sampled by
    /// the sole worker of a single-threaded session).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// The deepest the queue ever got.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").high_water
    }

    /// The configured bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_high_water() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.depth(), 5);
        assert_eq!(q.high_water(), 5);
        assert_eq!(q.capacity(), 8);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.depth(), 0);
        assert_eq!(q.high_water(), 5, "high water survives the drain");
    }

    #[test]
    fn push_blocks_at_capacity_until_a_pop() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(0).unwrap();
        q.push(1).unwrap();
        let pushed = Arc::new(AtomicUsize::new(0));
        let producer = {
            let (q, pushed) = (Arc::clone(&q), Arc::clone(&pushed));
            std::thread::spawn(move || {
                q.push(2).unwrap();
                pushed.store(1, Ordering::SeqCst);
            })
        };
        // The producer must be stuck: nothing was popped yet.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            pushed.load(Ordering::SeqCst),
            0,
            "push must block when full"
        );
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap();
        assert_eq!(pushed.load(Ordering::SeqCst), 1);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.high_water(), 2, "the bound is never exceeded");
    }

    #[test]
    fn close_drains_then_ends_consumers_and_fails_producers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.push(8), Err(8), "closed queue rejects producers");
        assert_eq!(q.pop(), Some(7), "items enqueued before close drain");
        assert_eq!(q.pop(), None, "then consumers observe the close");
    }

    #[test]
    fn close_wakes_a_blocked_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1))
        };
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(1));
    }

    #[test]
    fn concurrent_producers_and_consumers_deliver_everything_once() {
        let q = Arc::new(BoundedQueue::new(3));
        let produced: usize = 4 * 50;
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        q.push(p * 50 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..produced).collect::<Vec<_>>());
        assert!(q.high_water() <= 3, "bound respected under contention");
    }
}
