//! The operator metrics surface (DESIGN.md §13).
//!
//! One [`ServerMetrics`] per serving session, shared by every reader and
//! worker thread. Requests are counted at *dispatch* time — when a
//! worker claims the job, not when the reader enqueues it — so with one
//! worker the counts a `stats` request observes are deterministic:
//! every request dispatched before it, plus itself. That determinism is
//! what lets the golden tests compare the `server` block (minus the four
//! wall-clock/scheduling gauges) byte-exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use fannet_engine::protocol::{QueryTrace, Request};
use fannet_engine::{LatencyStats, OpCounts, OpLatency, ServerStats};
use fannet_obs::Histogram;

/// Ops whose request latency gets its own histogram, in the order of
/// the [`LatencyStats`] fields. `shutdown` and `invalid` are excluded:
/// neither runs the engine, so there is nothing to attribute.
const OP_NAMES: [&str; 9] = [
    "check",
    "tolerance",
    "sensitivity",
    "fault_check",
    "fault_tolerance",
    "joint_check",
    "joint_tolerance",
    "stats",
    "metrics",
];

/// Screening-tier labels, in [`fannet_search::SearchStats`] order.
const TIER_NAMES: [&str; 3] = ["interval", "zonotope", "exact"];

/// Per-op request latency plus per-screening-tier solver time
/// (DESIGN.md §14), behind one lock like the op counts.
#[derive(Debug, Default)]
struct Latencies {
    ops: [Histogram; OP_NAMES.len()],
    tiers: [Histogram; TIER_NAMES.len()],
}

/// Shared counters of one serving session.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    in_flight: AtomicU64,
    connections_open: AtomicU64,
    connections_total: AtomicU64,
    /// One lock for the whole per-op block so a snapshot reads a
    /// consistent set (individual atomics could tear across ops).
    ops: Mutex<OpCounts>,
    latency: Mutex<Latencies>,
}

impl ServerMetrics {
    /// Fresh counters; the uptime clock starts now.
    #[must_use]
    pub fn new() -> Self {
        ServerMetrics {
            started: Instant::now(),
            in_flight: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            ops: Mutex::new(OpCounts::default()),
            latency: Mutex::new(Latencies::default()),
        }
    }

    /// Records a worker claiming `request`; pair with [`Self::end`].
    pub fn begin(&self, request: &Request) {
        {
            let mut ops = self.ops.lock().expect("metrics lock poisoned");
            match request {
                Request::Check { .. } => ops.check += 1,
                Request::Tolerance { .. } => ops.tolerance += 1,
                Request::Sensitivity { .. } => ops.sensitivity += 1,
                Request::FaultCheck { .. } => ops.fault_check += 1,
                Request::FaultTolerance { .. } => ops.fault_tolerance += 1,
                Request::JointCheck { .. } => ops.joint_check += 1,
                Request::JointTolerance { .. } => ops.joint_tolerance += 1,
                Request::Stats { .. } => ops.stats += 1,
                Request::Metrics { .. } => ops.metrics += 1,
                Request::Shutdown { .. } => ops.shutdown += 1,
            }
        }
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    /// Records a worker claiming a line that never parsed into a
    /// request (malformed JSON, oversized or non-UTF-8 frame); pair
    /// with [`Self::end`].
    pub fn begin_invalid(&self) {
        self.ops.lock().expect("metrics lock poisoned").invalid += 1;
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    /// Records the matching request leaving its worker.
    pub fn end(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Records a dispatched request's wall time into its op's latency
    /// histogram. Unlisted ops (`shutdown`) are ignored.
    pub fn record_latency(&self, op: &str, wall_ns: u64) {
        if let Some(i) = OP_NAMES.iter().position(|&name| name == op) {
            let mut latency = self.latency.lock().expect("metrics lock poisoned");
            latency.ops[i].record_ns(wall_ns);
        }
    }

    /// Records a solver-backed query's per-tier time. Tiers the cascade
    /// never entered record `0` ns, so each tier histogram keeps one
    /// observation per measured query and the percentiles read as
    /// "nanoseconds this tier costs a typical query".
    pub fn record_tiers(&self, trace: &QueryTrace) {
        let mut latency = self.latency.lock().expect("metrics lock poisoned");
        for (hist, ns) in latency.tiers.iter_mut().zip([
            trace.stats.interval_ns,
            trace.stats.zonotope_ns,
            trace.stats.exact_ns,
        ]) {
            hist.record_ns(ns);
        }
    }

    /// Renders the session's latency histograms as Prometheus text:
    /// the `fannet_request_ns` family keyed by op, `fannet_tier_ns`
    /// keyed by screening tier, each with derived percentile gauges.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let (ops, tiers) = {
            let latency = self.latency.lock().expect("metrics lock poisoned");
            let ops: Vec<(String, Histogram)> = OP_NAMES
                .iter()
                .zip(latency.ops.iter())
                .map(|(name, hist)| (format!("op=\"{name}\""), *hist))
                .collect();
            let tiers: Vec<(String, Histogram)> = TIER_NAMES
                .iter()
                .zip(latency.tiers.iter())
                .map(|(name, hist)| (format!("tier=\"{name}\""), *hist))
                .collect();
            (ops, tiers)
        };
        let mut out = fannet_obs::render_prometheus("fannet_request_ns", &ops);
        out.push_str(&fannet_obs::render_prometheus("fannet_tier_ns", &tiers));
        out
    }

    /// Records an accepted connection.
    pub fn connection_opened(&self) {
        self.connections_open.fetch_add(1, Ordering::SeqCst);
        self.connections_total.fetch_add(1, Ordering::SeqCst);
    }

    /// Records a connection ending (EOF, error, or drain).
    pub fn connection_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::SeqCst);
    }

    /// Assembles the wire block for a `stats` response; the queue
    /// gauges come from the caller because the queue lives next to the
    /// metrics in the session, not inside them.
    #[must_use]
    pub fn snapshot(
        &self,
        queue_depth: u64,
        queue_high_water: u64,
        queue_capacity: u64,
    ) -> ServerStats {
        let ops = *self.ops.lock().expect("metrics lock poisoned");
        let latency = {
            let latency = self.latency.lock().expect("metrics lock poisoned");
            let summarize = |hist: &Histogram| {
                let s = hist.summary();
                OpLatency {
                    count: s.count,
                    p50_ns: s.p50_ns,
                    p90_ns: s.p90_ns,
                    p99_ns: s.p99_ns,
                }
            };
            let [check, tolerance, sensitivity, fault_check, fault_tolerance, joint_check, joint_tolerance, stats, metrics] =
                &latency.ops;
            LatencyStats {
                check: summarize(check),
                tolerance: summarize(tolerance),
                sensitivity: summarize(sensitivity),
                fault_check: summarize(fault_check),
                fault_tolerance: summarize(fault_tolerance),
                joint_check: summarize(joint_check),
                joint_tolerance: summarize(joint_tolerance),
                stats: summarize(stats),
                metrics: summarize(metrics),
            }
        };
        let uptime = self.started.elapsed();
        let uptime_ms = u64::try_from(uptime.as_millis()).unwrap_or(u64::MAX);
        let requests_total = ops.total();
        let secs = uptime.as_secs_f64();
        let qps = if secs > 0.0 {
            requests_total as f64 / secs
        } else {
            0.0
        };
        ServerStats {
            uptime_ms,
            requests_total,
            requests_in_flight: self.in_flight.load(Ordering::SeqCst),
            qps,
            queue_depth,
            queue_high_water,
            queue_capacity,
            connections_open: self.connections_open.load(Ordering::SeqCst),
            connections_total: self.connections_total.load(Ordering::SeqCst),
            ops,
            latency,
        }
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_engine::protocol::parse_request;

    #[test]
    fn dispatch_counts_by_op_and_in_flight_pairs() {
        let m = ServerMetrics::new();
        let check = parse_request(r#"{"op":"check","input":[1,2],"label":0,"delta":1}"#).unwrap();
        let stats = parse_request(r#"{"op":"stats"}"#).unwrap();
        m.begin(&check);
        m.begin(&stats);
        m.begin_invalid();
        let snap = m.snapshot(2, 3, 64);
        assert_eq!(snap.ops.check, 1);
        assert_eq!(snap.ops.stats, 1);
        assert_eq!(snap.ops.invalid, 1);
        assert_eq!(snap.requests_total, 3);
        assert_eq!(snap.requests_in_flight, 3);
        assert_eq!(
            (snap.queue_depth, snap.queue_high_water, snap.queue_capacity),
            (2, 3, 64)
        );
        m.end();
        m.end();
        m.end();
        assert_eq!(m.snapshot(0, 3, 64).requests_in_flight, 0);
    }

    #[test]
    fn connection_gauges_track_open_and_total() {
        let m = ServerMetrics::new();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        let snap = m.snapshot(0, 0, 1);
        assert_eq!(snap.connections_open, 1);
        assert_eq!(snap.connections_total, 2);
    }
}
