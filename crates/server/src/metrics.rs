//! The operator metrics surface (DESIGN.md §13, §15).
//!
//! One [`ServerMetrics`] per serving session, shared by every reader and
//! worker thread. Requests are counted at *dispatch* time — when a
//! worker claims the job, not when the reader enqueues it — so with one
//! worker the counts a `stats` request observes are deterministic:
//! every request dispatched before it, plus itself. That determinism is
//! what lets the golden tests compare the `server` block (minus the
//! wall-clock/scheduling gauges) byte-exact.
//!
//! PR 9 widens the surface along three axes (DESIGN.md §15):
//!
//! * **Phases** — pooled queue/service/sequence/write histograms fed by
//!   the session's lifecycle stamps, surfaced as `latency.phases` and
//!   the `fannet_phase_ns{phase=…}` family.
//! * **Windows** — per-second [`RateWindow`] rings behind `qps_10s`/
//!   `qps_60s` and the per-op `window` block.
//! * **Connections** — one [`ConnStats`] per registered connection,
//!   aggregated into the `server.connections` top-N table; closed
//!   connections are retained (bounded) so a short-lived client still
//!   shows up in a post-mortem `stats` call.
//!
//! A bounded ring of [`RequestTimeline`]s (the last
//! [`RECENT_TIMELINES`] completed requests) backs the `metrics` op's
//! `recent` field.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fannet_engine::protocol::{QueryTrace, Request, RequestTimeline};
use fannet_engine::{
    ConnectionInfo, LatencyStats, OpCounts, OpLatency, OpWindow, PhaseLatencyStats, ServerStats,
    WindowStats, CONNECTION_TABLE_ROWS,
};
use fannet_obs::{Histogram, RateWindow};

/// Ops whose request latency gets its own histogram, in the order of
/// the [`LatencyStats`] fields. `shutdown` and `invalid` are excluded:
/// neither runs the engine, so there is nothing to attribute.
const OP_NAMES: [&str; 9] = [
    "check",
    "tolerance",
    "sensitivity",
    "fault_check",
    "fault_tolerance",
    "joint_check",
    "joint_tolerance",
    "stats",
    "metrics",
];

/// Screening-tier labels, in [`fannet_search::SearchStats`] order.
const TIER_NAMES: [&str; 3] = ["interval", "zonotope", "exact"];

/// Request-lifecycle phase labels, in [`PhaseLatencyStats`] field order.
const PHASE_NAMES: [&str; 4] = ["queue", "service", "sequence", "write"];

/// Completed request timelines kept for the `metrics` op's `recent`
/// field — enough to reconstruct a recent burst, bounded so the ring
/// never grows with load.
pub const RECENT_TIMELINES: usize = 32;

/// Closed connections retained in the registry beyond the open ones.
/// Keeps post-mortem visibility for recent clients while bounding a
/// churn-heavy server's memory.
const RETAINED_CLOSED: usize = 32;

/// Per-op request latency plus per-screening-tier solver time
/// (DESIGN.md §14) plus pooled lifecycle-phase time (DESIGN.md §15),
/// behind one lock like the op counts.
#[derive(Debug, Default)]
struct Latencies {
    ops: [Histogram; OP_NAMES.len()],
    tiers: [Histogram; TIER_NAMES.len()],
    phases: [Histogram; PHASE_NAMES.len()],
}

/// The per-second bucket rings: one for overall request rate, one per
/// measured op for windowed percentiles. Boxed where it is stored —
/// ten rings of 64 histogram buckets are a few hundred kilobytes.
#[derive(Debug, Default)]
struct Windows {
    all: RateWindow,
    ops: [RateWindow; OP_NAMES.len()],
}

/// Traffic and queue-pressure counters of one connection — the rows of
/// the `server.connections` table (DESIGN.md §15). Created by
/// [`ServerMetrics::register_connection`]; the session's reader, worker
/// and sequencer threads update it lock-free except for the op counts.
#[derive(Debug)]
pub struct ConnStats {
    /// Session-unique id, 1-based in accept order (the stdio front
    /// end's single connection is id 1).
    pub id: u64,
    /// Peer address (`"stdio"` for the stdin front end).
    pub peer: String,
    /// When the connection was accepted (lifecycle-log durations).
    pub opened: Instant,
    open: AtomicBool,
    ops: Mutex<OpCounts>,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    queue_blocked_ns: AtomicU64,
    in_queue: AtomicU64,
    queue_peak: AtomicU64,
}

impl ConnStats {
    fn new(id: u64, peer: &str) -> Self {
        ConnStats {
            id,
            peer: peer.to_string(),
            opened: Instant::now(),
            open: AtomicBool::new(true),
            ops: Mutex::new(OpCounts::default()),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            queue_blocked_ns: AtomicU64::new(0),
            in_queue: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
        }
    }

    /// Counts a dispatched request of this connection by op.
    pub fn count_request(&self, request: &Request) {
        bump_op(
            &mut self.ops.lock().expect("conn stats lock poisoned"),
            request,
        );
    }

    /// Counts a frame of this connection that never parsed.
    pub fn count_invalid(&self) {
        self.ops.lock().expect("conn stats lock poisoned").invalid += 1;
    }

    /// Adds `n` request bytes read from this connection.
    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` response bytes written to this connection.
    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds nanoseconds the reader spent inside a queue push — time
    /// backpressure actually held this connection's reader.
    pub fn add_queue_blocked_ns(&self, ns: u64) {
        self.queue_blocked_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one more of this connection's requests entering the
    /// queue, tracking its personal high-water mark.
    pub fn enter_queue(&self) {
        let depth = self.in_queue.fetch_add(1, Ordering::SeqCst) + 1;
        self.queue_peak.fetch_max(depth, Ordering::SeqCst);
    }

    /// Records one of this connection's requests leaving the queue
    /// (claimed by a worker, or withdrawn on a closed queue).
    pub fn leave_queue(&self) {
        self.in_queue.fetch_sub(1, Ordering::SeqCst);
    }

    /// Total requests this connection submitted so far.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.ops.lock().expect("conn stats lock poisoned").total()
    }

    /// Response bytes written so far (lifecycle close log).
    #[must_use]
    pub fn bytes_out_total(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Request bytes read so far (lifecycle close log).
    #[must_use]
    pub fn bytes_in_total(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Cumulative queue-blocked nanoseconds so far.
    #[must_use]
    pub fn queue_blocked_total_ns(&self) -> u64 {
        self.queue_blocked_ns.load(Ordering::Relaxed)
    }

    fn row(&self) -> ConnectionInfo {
        ConnectionInfo {
            id: self.id,
            peer: self.peer.clone(),
            open: self.open.load(Ordering::SeqCst),
            requests: self.requests(),
            ops: *self.ops.lock().expect("conn stats lock poisoned"),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            queue_blocked_ns: self.queue_blocked_ns.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::SeqCst),
        }
    }
}

/// Bumps the matching per-op counter for `request`.
fn bump_op(ops: &mut OpCounts, request: &Request) {
    match request {
        Request::Check { .. } => ops.check += 1,
        Request::Tolerance { .. } => ops.tolerance += 1,
        Request::Sensitivity { .. } => ops.sensitivity += 1,
        Request::FaultCheck { .. } => ops.fault_check += 1,
        Request::FaultTolerance { .. } => ops.fault_tolerance += 1,
        Request::JointCheck { .. } => ops.joint_check += 1,
        Request::JointTolerance { .. } => ops.joint_tolerance += 1,
        Request::Stats { .. } => ops.stats += 1,
        Request::Metrics { .. } => ops.metrics += 1,
        Request::Shutdown { .. } => ops.shutdown += 1,
    }
}

/// Shared counters of one serving session.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    in_flight: AtomicU64,
    connections_open: AtomicU64,
    connections_total: AtomicU64,
    next_conn_id: AtomicU64,
    /// One lock for the whole per-op block so a snapshot reads a
    /// consistent set (individual atomics could tear across ops).
    ops: Mutex<OpCounts>,
    latency: Mutex<Latencies>,
    windows: Mutex<Box<Windows>>,
    connections: Mutex<Vec<Arc<ConnStats>>>,
    recent: Mutex<VecDeque<RequestTimeline>>,
}

impl ServerMetrics {
    /// Fresh counters; the uptime clock starts now.
    #[must_use]
    pub fn new() -> Self {
        ServerMetrics {
            started: Instant::now(),
            in_flight: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            next_conn_id: AtomicU64::new(1),
            ops: Mutex::new(OpCounts::default()),
            latency: Mutex::new(Latencies::default()),
            windows: Mutex::new(Box::default()),
            connections: Mutex::new(Vec::new()),
            recent: Mutex::new(VecDeque::with_capacity(RECENT_TIMELINES)),
        }
    }

    /// Seconds elapsed on this session's monotonic clock — the index
    /// every [`RateWindow`] of the session is driven by.
    fn now_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Records a worker claiming `request`; pair with [`Self::end`].
    pub fn begin(&self, request: &Request) {
        bump_op(
            &mut self.ops.lock().expect("metrics lock poisoned"),
            request,
        );
        self.windows
            .lock()
            .expect("metrics lock poisoned")
            .all
            .record(self.now_s(), 0);
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    /// Records a worker claiming a line that never parsed into a
    /// request (malformed JSON, oversized or non-UTF-8 frame); pair
    /// with [`Self::end`].
    pub fn begin_invalid(&self) {
        self.ops.lock().expect("metrics lock poisoned").invalid += 1;
        self.windows
            .lock()
            .expect("metrics lock poisoned")
            .all
            .record(self.now_s(), 0);
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    /// Records the matching request leaving its worker.
    pub fn end(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Records a dispatched request's wall time into its op's latency
    /// histogram and rolling window. Unlisted ops (`shutdown`) are
    /// ignored.
    pub fn record_latency(&self, op: &str, wall_ns: u64) {
        if let Some(i) = OP_NAMES.iter().position(|&name| name == op) {
            self.latency.lock().expect("metrics lock poisoned").ops[i].record_ns(wall_ns);
            self.windows.lock().expect("metrics lock poisoned").ops[i]
                .record(self.now_s(), wall_ns);
        }
    }

    /// Records the pre-write lifecycle phases of one request: its queue
    /// wait, service time, and sequencer park. Called by the sequencer
    /// *before* the response bytes leave the server, so any response a
    /// client can observe is already counted — the invariant the
    /// concurrency tests assert exactly.
    pub fn record_phases(&self, queue_ns: u64, service_ns: u64, sequence_ns: u64) {
        let mut latency = self.latency.lock().expect("metrics lock poisoned");
        latency.phases[0].record_ns(queue_ns);
        latency.phases[1].record_ns(service_ns);
        latency.phases[2].record_ns(sequence_ns);
    }

    /// Records the write phase of one request, after the write returned.
    pub fn record_write_phase(&self, write_ns: u64) {
        self.latency.lock().expect("metrics lock poisoned").phases[3].record_ns(write_ns);
    }

    /// Pushes one completed request's timeline into the bounded ring
    /// behind the `metrics` op's `recent` field.
    pub fn record_timeline(&self, timeline: RequestTimeline) {
        let mut recent = self.recent.lock().expect("metrics lock poisoned");
        if recent.len() == RECENT_TIMELINES {
            recent.pop_front();
        }
        recent.push_back(timeline);
    }

    /// The last completed request timelines, oldest first.
    #[must_use]
    pub fn recent_timelines(&self) -> Vec<RequestTimeline> {
        self.recent
            .lock()
            .expect("metrics lock poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Records a solver-backed query's per-tier time. Tiers the cascade
    /// never entered record `0` ns, so each tier histogram keeps one
    /// observation per measured query and the percentiles read as
    /// "nanoseconds this tier costs a typical query".
    pub fn record_tiers(&self, trace: &QueryTrace) {
        let mut latency = self.latency.lock().expect("metrics lock poisoned");
        for (hist, ns) in latency.tiers.iter_mut().zip([
            trace.stats.interval_ns,
            trace.stats.zonotope_ns,
            trace.stats.exact_ns,
        ]) {
            hist.record_ns(ns);
        }
    }

    /// Renders the session's latency histograms as Prometheus text:
    /// the `fannet_request_ns` family keyed by op, `fannet_tier_ns`
    /// keyed by screening tier, `fannet_phase_ns` keyed by lifecycle
    /// phase — each with derived percentile gauges — plus the
    /// `fannet_qps_10s`/`fannet_qps_60s` windowed-rate gauges.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let (ops, tiers, phases) = {
            let latency = self.latency.lock().expect("metrics lock poisoned");
            let label = |key: &str, names: &[&str], hists: &[Histogram]| {
                names
                    .iter()
                    .zip(hists.iter())
                    .map(|(name, hist)| (format!("{key}=\"{name}\""), *hist))
                    .collect::<Vec<(String, Histogram)>>()
            };
            (
                label("op", &OP_NAMES, &latency.ops),
                label("tier", &TIER_NAMES, &latency.tiers),
                label("phase", &PHASE_NAMES, &latency.phases),
            )
        };
        let mut out = fannet_obs::render_prometheus("fannet_request_ns", &ops);
        out.push_str(&fannet_obs::render_prometheus("fannet_tier_ns", &tiers));
        out.push_str(&fannet_obs::render_prometheus("fannet_phase_ns", &phases));
        let now_s = self.now_s();
        let windows = self.windows.lock().expect("metrics lock poisoned");
        for (name, window_s) in [("fannet_qps_10s", 10u64), ("fannet_qps_60s", 60u64)] {
            out.push_str(&format!(
                "# TYPE {name} gauge\n{name} {}\n",
                windows.all.rate_last(now_s, window_s)
            ));
        }
        out
    }

    /// Registers an accepted connection: assigns its session-unique id
    /// and adds it to the registry behind the `server.connections`
    /// table.
    #[must_use]
    pub fn register_connection(&self, peer: &str) -> Arc<ConnStats> {
        let id = self.next_conn_id.fetch_add(1, Ordering::SeqCst);
        let stats = Arc::new(ConnStats::new(id, peer));
        self.connections_open.fetch_add(1, Ordering::SeqCst);
        self.connections_total.fetch_add(1, Ordering::SeqCst);
        self.connections
            .lock()
            .expect("metrics lock poisoned")
            .push(Arc::clone(&stats));
        stats
    }

    /// Records a registered connection ending (EOF, error, or drain);
    /// returns whether this call actually closed it (idempotent per
    /// connection, so lifecycle logging fires once). Closed connections
    /// stay in the registry for post-mortem `stats` calls, bounded to
    /// `RETAINED_CLOSED` (quietest evicted first).
    pub fn close_connection(&self, stats: &ConnStats) -> bool {
        if !stats.open.swap(false, Ordering::SeqCst) {
            return false;
        }
        self.connections_open.fetch_sub(1, Ordering::SeqCst);
        let mut connections = self.connections.lock().expect("metrics lock poisoned");
        let closed = |c: &Arc<ConnStats>| !c.open.load(Ordering::SeqCst);
        while connections.iter().filter(|c| closed(c)).count() > RETAINED_CLOSED {
            let Some(evict) = connections
                .iter()
                .enumerate()
                .filter(|(_, c)| closed(c))
                .min_by_key(|(_, c)| (c.requests(), c.id))
                .map(|(i, _)| i)
            else {
                break;
            };
            connections.remove(evict);
        }
        true
    }

    /// Assembles the wire block for a `stats` response; the queue
    /// gauges come from the caller because the queue lives next to the
    /// metrics in the session, not inside them.
    #[must_use]
    pub fn snapshot(
        &self,
        queue_depth: u64,
        queue_high_water: u64,
        queue_capacity: u64,
    ) -> ServerStats {
        let ops = *self.ops.lock().expect("metrics lock poisoned");
        let summarize = |hist: &Histogram| {
            let s = hist.summary();
            OpLatency {
                count: s.count,
                p50_ns: s.p50_ns,
                p90_ns: s.p90_ns,
                p99_ns: s.p99_ns,
            }
        };
        let latency = {
            let latency = self.latency.lock().expect("metrics lock poisoned");
            let [check, tolerance, sensitivity, fault_check, fault_tolerance, joint_check, joint_tolerance, stats, metrics] =
                &latency.ops;
            let [queue, service, sequence, write] = &latency.phases;
            LatencyStats {
                check: summarize(check),
                tolerance: summarize(tolerance),
                sensitivity: summarize(sensitivity),
                fault_check: summarize(fault_check),
                fault_tolerance: summarize(fault_tolerance),
                joint_check: summarize(joint_check),
                joint_tolerance: summarize(joint_tolerance),
                stats: summarize(stats),
                metrics: summarize(metrics),
                phases: PhaseLatencyStats {
                    queue: summarize(queue),
                    service: summarize(service),
                    sequence: summarize(sequence),
                    write: summarize(write),
                },
            }
        };
        let now_s = self.now_s();
        let (qps_10s, qps_60s, window) = {
            let windows = self.windows.lock().expect("metrics lock poisoned");
            let op_window = |i: usize| {
                let merged = windows.ops[i].merged_last(now_s, 10);
                let s = merged.summary();
                OpWindow {
                    count_10s: s.count,
                    p50_10s_ns: s.p50_ns,
                    p99_10s_ns: s.p99_ns,
                }
            };
            (
                windows.all.rate_last(now_s, 10),
                windows.all.rate_last(now_s, 60),
                WindowStats {
                    check: op_window(0),
                    tolerance: op_window(1),
                    sensitivity: op_window(2),
                    fault_check: op_window(3),
                    fault_tolerance: op_window(4),
                    joint_check: op_window(5),
                    joint_tolerance: op_window(6),
                    stats: op_window(7),
                    metrics: op_window(8),
                },
            )
        };
        let connections = {
            let registry = self.connections.lock().expect("metrics lock poisoned");
            let mut rows: Vec<ConnectionInfo> = registry.iter().map(|c| c.row()).collect();
            rows.sort_by(|a, b| b.requests.cmp(&a.requests).then(a.id.cmp(&b.id)));
            rows.truncate(CONNECTION_TABLE_ROWS);
            rows
        };
        let uptime = self.started.elapsed();
        let uptime_ms = u64::try_from(uptime.as_millis()).unwrap_or(u64::MAX);
        let requests_total = ops.total();
        let secs = uptime.as_secs_f64();
        let qps = if secs > 0.0 {
            requests_total as f64 / secs
        } else {
            0.0
        };
        ServerStats {
            uptime_ms,
            requests_total,
            requests_in_flight: self.in_flight.load(Ordering::SeqCst),
            qps,
            qps_10s,
            qps_60s,
            queue_depth,
            queue_high_water,
            queue_capacity,
            connections_open: self.connections_open.load(Ordering::SeqCst),
            connections_total: self.connections_total.load(Ordering::SeqCst),
            ops,
            latency,
            window,
            connections,
        }
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_engine::protocol::parse_request;

    #[test]
    fn dispatch_counts_by_op_and_in_flight_pairs() {
        let m = ServerMetrics::new();
        let check = parse_request(r#"{"op":"check","input":[1,2],"label":0,"delta":1}"#).unwrap();
        let stats = parse_request(r#"{"op":"stats"}"#).unwrap();
        m.begin(&check);
        m.begin(&stats);
        m.begin_invalid();
        let snap = m.snapshot(2, 3, 64);
        assert_eq!(snap.ops.check, 1);
        assert_eq!(snap.ops.stats, 1);
        assert_eq!(snap.ops.invalid, 1);
        assert_eq!(snap.requests_total, 3);
        assert_eq!(snap.requests_in_flight, 3);
        assert_eq!(
            (snap.queue_depth, snap.queue_high_water, snap.queue_capacity),
            (2, 3, 64)
        );
        m.end();
        m.end();
        m.end();
        assert_eq!(m.snapshot(0, 3, 64).requests_in_flight, 0);
    }

    #[test]
    fn connection_registry_tracks_gauges_rows_and_close_idempotence() {
        let m = ServerMetrics::new();
        let a = m.register_connection("stdio");
        let b = m.register_connection("127.0.0.1:9");
        assert_eq!((a.id, b.id), (1, 2));
        let check = parse_request(r#"{"op":"check","input":[1,2],"label":0,"delta":1}"#).unwrap();
        b.count_request(&check);
        b.count_request(&check);
        a.count_request(&check);
        a.count_invalid();
        a.add_bytes_in(40);
        a.add_bytes_out(55);
        a.add_queue_blocked_ns(120);
        a.enter_queue();
        a.enter_queue();
        a.leave_queue();
        assert!(m.close_connection(&b));
        assert!(!m.close_connection(&b)); // idempotent
        let snap = m.snapshot(0, 0, 1);
        assert_eq!(snap.connections_open, 1);
        assert_eq!(snap.connections_total, 2);
        // Both rows present, busiest first, ties broken by id.
        assert_eq!(snap.connections.len(), 2);
        assert_eq!(snap.connections[0].id, 1);
        assert_eq!(snap.connections[0].requests, 2);
        assert_eq!(snap.connections[0].ops.invalid, 1);
        assert_eq!(snap.connections[0].bytes_in, 40);
        assert_eq!(snap.connections[0].bytes_out, 55);
        assert_eq!(snap.connections[0].queue_blocked_ns, 120);
        assert_eq!(snap.connections[0].queue_peak, 2);
        assert!(snap.connections[0].open);
        assert_eq!(snap.connections[1].id, 2);
        assert!(!snap.connections[1].open);
    }

    #[test]
    fn closed_connections_are_evicted_quietest_first_beyond_the_cap() {
        let m = ServerMetrics::new();
        let check = parse_request(r#"{"op":"check","input":[1,2],"label":0,"delta":1}"#).unwrap();
        let busy = m.register_connection("busy");
        for _ in 0..10 {
            busy.count_request(&check);
        }
        m.close_connection(&busy);
        let quiet: Vec<_> = (0..RETAINED_CLOSED)
            .map(|_| m.register_connection("quiet"))
            .collect();
        for c in &quiet {
            m.close_connection(c);
        }
        // One over the cap: the quietest closed connection goes, the
        // busy one stays visible for post-mortems.
        let snap = m.snapshot(0, 0, 1);
        assert_eq!(snap.connections_total as usize, 1 + RETAINED_CLOSED);
        assert_eq!(snap.connections[0].id, busy.id);
        assert_eq!(snap.connections[0].requests, 10);
    }

    #[test]
    fn phases_and_timelines_accumulate() {
        let m = ServerMetrics::new();
        m.record_phases(100, 2000, 30);
        m.record_phases(200, 3000, 40);
        m.record_write_phase(7);
        let snap = m.snapshot(0, 0, 1);
        let phases = snap.latency.phases;
        assert_eq!(phases.queue.count, 2);
        assert_eq!(phases.service.count, 2);
        assert_eq!(phases.sequence.count, 2);
        assert_eq!(phases.write.count, 1);
        assert!(phases.service.p99_ns >= 3000);
        let timeline = RequestTimeline {
            conn: 1,
            id: Some(5),
            op: "check",
            queue_ns: 100,
            service_ns: 2000,
            sequence_ns: 30,
            write_ns: 7,
            wall_ns: 2300,
        };
        for i in 0..(RECENT_TIMELINES as u64 + 4) {
            m.record_timeline(RequestTimeline {
                id: Some(i),
                ..timeline
            });
        }
        let recent = m.recent_timelines();
        assert_eq!(recent.len(), RECENT_TIMELINES);
        // Oldest entries fell off the front of the ring.
        assert_eq!(recent[0].id, Some(4));
        assert_eq!(recent.last().unwrap().id, Some(RECENT_TIMELINES as u64 + 3));
    }

    #[test]
    fn windowed_rates_follow_recent_traffic() {
        let m = ServerMetrics::new();
        let check = parse_request(r#"{"op":"check","input":[1,2],"label":0,"delta":1}"#).unwrap();
        for _ in 0..20 {
            m.begin(&check);
            m.record_latency("check", 1_000);
            m.end();
        }
        let snap = m.snapshot(0, 0, 1);
        // All 20 landed within the last 10 seconds of a fresh session.
        assert!((snap.qps_10s - 2.0).abs() < 1e-9, "{}", snap.qps_10s);
        assert!(
            (snap.qps_60s - 20.0 / 60.0).abs() < 1e-9,
            "{}",
            snap.qps_60s
        );
        assert_eq!(snap.window.check.count_10s, 20);
        assert!(snap.window.check.p99_10s_ns >= 1_000);
        assert_eq!(snap.window.stats.count_10s, 0);
    }

    #[test]
    fn prometheus_exposition_includes_phases_and_rate_gauges() {
        let m = ServerMetrics::new();
        let check = parse_request(r#"{"op":"check","input":[1,2],"label":0,"delta":1}"#).unwrap();
        m.begin(&check);
        m.record_latency("check", 1_000);
        m.record_phases(10, 1_000, 5);
        m.record_write_phase(3);
        m.end();
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE fannet_phase_ns histogram"), "{text}");
        for phase in PHASE_NAMES {
            assert!(
                text.contains(&format!("fannet_phase_ns_count{{phase=\"{phase}\"}} 1")),
                "{phase}: {text}"
            );
        }
        assert!(text.contains("# TYPE fannet_qps_10s gauge"), "{text}");
        assert!(text.contains("\nfannet_qps_10s 0.1"), "{text}");
        assert!(text.contains("# TYPE fannet_qps_60s gauge"), "{text}");
    }
}
