//! The feed-forward fully-connected network type.
//!
//! A [`Network`] is a chain of [`DenseLayer`]s plus a [`Readout`] that turns
//! the final layer's activations into a class label. The paper's case-study
//! network (Fig. 3a) is `5 → 20(ReLU) → 2(identity)` with a **maxpool
//! readout**: the predicted label is the output node with the maximal
//! activation (`L0 ≥ L1 → L0`, `L1 > L0 → L1`).

use fannet_numeric::Scalar;
use fannet_tensor::{vector, ShapeError};
use serde::{Deserialize, Serialize};

use crate::layer::DenseLayer;

/// How the final layer's activations are turned into a class label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Readout {
    /// Maxpool over the output nodes: the label is the index of the maximal
    /// output, ties breaking toward the lower index (the paper's
    /// `L0 ≥ L1 → L0` rule).
    MaxPool,
}

/// A feed-forward fully-connected classifier.
///
/// # Examples
///
/// ```
/// use fannet_nn::{Activation, DenseLayer, Network, Readout};
/// use fannet_tensor::Matrix;
///
/// let hidden = DenseLayer::new(
///     Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]])?,
///     vec![0.0, 0.0],
///     Activation::ReLU,
/// )?;
/// let output = DenseLayer::new(
///     Matrix::from_rows(vec![vec![1.0, -1.0], vec![-1.0, 1.0]])?,
///     vec![0.0, 0.0],
///     Activation::Identity,
/// )?;
/// let net = Network::new(vec![hidden, output], Readout::MaxPool)?;
/// assert_eq!(net.classify(&[3.0, 1.0])?, 0);
/// assert_eq!(net.classify(&[1.0, 3.0])?, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network<S> {
    layers: Vec<DenseLayer<S>>,
    readout: Readout,
}

impl<S: Scalar> Network<S> {
    /// Creates a network, validating that consecutive layer shapes chain.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `layers` is empty or the output size of a
    /// layer differs from the input size of the next.
    pub fn new(layers: Vec<DenseLayer<S>>, readout: Readout) -> Result<Self, ShapeError> {
        if layers.is_empty() {
            return Err(ShapeError::new("network must have at least one layer"));
        }
        for (i, pair) in layers.windows(2).enumerate() {
            if pair[0].outputs() != pair[1].inputs() {
                return Err(ShapeError::new(format!(
                    "layer {i} emits {} values but layer {} expects {}",
                    pair[0].outputs(),
                    i + 1,
                    pair[1].inputs()
                )));
            }
        }
        Ok(Network { layers, readout })
    }

    /// Number of input features.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Number of output nodes (class labels).
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.layers.last().expect("validated non-empty").outputs()
    }

    /// Layer sizes from input to output, e.g. `[5, 20, 2]`.
    #[must_use]
    pub fn topology(&self) -> Vec<usize> {
        let mut t = vec![self.inputs()];
        t.extend(self.layers.iter().map(DenseLayer::outputs));
        t
    }

    /// The layers, input-side first.
    #[must_use]
    pub fn layers(&self) -> &[DenseLayer<S>] {
        &self.layers
    }

    /// Mutable access to the layers (training).
    pub fn layers_mut(&mut self) -> &mut [DenseLayer<S>] {
        &mut self.layers
    }

    /// The readout rule.
    #[must_use]
    pub fn readout(&self) -> Readout {
        self.readout
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.inputs() * l.outputs() + l.outputs())
            .sum()
    }

    /// `true` if every activation is piecewise-linear, i.e. the network is
    /// admissible for exact verification.
    #[must_use]
    pub fn is_piecewise_linear(&self) -> bool {
        self.layers
            .iter()
            .all(|l| l.activation().is_piecewise_linear())
    }

    /// Forward pass returning the output-layer activations.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `x.len() != self.inputs()`.
    pub fn forward(&self, x: &[S]) -> Result<Vec<S>, ShapeError> {
        let mut a = x.to_vec();
        for layer in &self.layers {
            a = layer.forward(&a)?;
        }
        Ok(a)
    }

    /// Forward pass keeping every layer's pre-activation and activation.
    ///
    /// Index 0 of `activations` is the input itself; entry `l+1` corresponds
    /// to layer `l`. Used by the trainer (backprop) and by the SMV
    /// translation, which needs named intermediate signals.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `x.len() != self.inputs()`.
    pub fn forward_trace(&self, x: &[S]) -> Result<ForwardTrace<S>, ShapeError> {
        let mut activations = vec![x.to_vec()];
        let mut preactivations = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let z = layer.preactivation(activations.last().expect("non-empty"))?;
            let a = layer.activation().apply_vec(&z);
            preactivations.push(z);
            activations.push(a);
        }
        Ok(ForwardTrace {
            preactivations,
            activations,
        })
    }

    /// Classifies an input: runs [`Network::forward`] and applies the
    /// readout.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `x.len() != self.inputs()`.
    pub fn classify(&self, x: &[S]) -> Result<usize, ShapeError> {
        let out = self.forward(x)?;
        Ok(self.readout_label(&out))
    }

    /// Applies only the readout rule to output activations.
    #[must_use]
    pub fn readout_label(&self, outputs: &[S]) -> usize {
        match self.readout {
            Readout::MaxPool => vector::argmax(outputs).expect("network has ≥1 output"),
        }
    }

    /// The classification margin for `label`: `out[label] - max(out[other])`.
    ///
    /// Positive ⇔ the readout (with its lower-index tie-break) certainly
    /// picks `label` when `label` is the lowest maximal index; the exact
    /// boundary case margin = 0 classifies as `label` only if no *lower*
    /// index attains the max. A strictly positive margin is therefore the
    /// sound criterion used by the verifier.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `x.len() != self.inputs()`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.outputs()`.
    pub fn margin(&self, x: &[S], label: usize) -> Result<S, ShapeError> {
        let out = self.forward(x)?;
        assert!(label < out.len(), "label {label} out of range");
        let best_other = out
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != label)
            .map(|(_, v)| *v)
            .reduce(|a, b| a.max_val(b))
            .expect("network has ≥2 outputs for margin");
        Ok(out[label] - best_other)
    }

    /// Converts the network to another scalar type via an elementwise map
    /// over all parameters.
    #[must_use]
    pub fn map<T: Scalar>(&self, mut f: impl FnMut(&S) -> T) -> Network<T> {
        Network {
            layers: self.layers.iter().map(|l| l.map(&mut f)).collect(),
            readout: self.readout,
        }
    }
}

/// All intermediate signals of one forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardTrace<S> {
    /// Pre-activations `z_l = W_l·a_{l-1} + b_l`, one entry per layer.
    pub preactivations: Vec<Vec<S>>,
    /// Activations; entry 0 is the input, entry `l+1` is layer `l`'s output.
    pub activations: Vec<Vec<S>>,
}

impl<S: Scalar> ForwardTrace<S> {
    /// The network output (final activation vector).
    #[must_use]
    pub fn output(&self) -> &[S] {
        self.activations.last().expect("trace has ≥1 entry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use fannet_numeric::Rational;
    use fannet_tensor::Matrix;

    fn xor_like() -> Network<f64> {
        // 2-2-2 network distinguishing x0>x1 from x1>x0.
        let hidden = DenseLayer::new(
            Matrix::from_rows(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap(),
            vec![0.0, 0.0],
            Activation::ReLU,
        )
        .unwrap();
        let output = DenseLayer::new(
            Matrix::from_rows(vec![vec![1.0, -1.0], vec![-1.0, 1.0]]).unwrap(),
            vec![0.0, 0.0],
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![hidden, output], Readout::MaxPool).unwrap()
    }

    #[test]
    fn topology_and_counts() {
        let net = xor_like();
        assert_eq!(net.topology(), vec![2, 2, 2]);
        assert_eq!(net.inputs(), 2);
        assert_eq!(net.outputs(), 2);
        assert_eq!(net.parameter_count(), 4 + 2 + 4 + 2);
        assert!(net.is_piecewise_linear());
        assert_eq!(net.readout(), Readout::MaxPool);
    }

    #[test]
    fn shape_chain_validated() {
        let a =
            DenseLayer::new(Matrix::<f64>::zeros(3, 2), vec![0.0; 3], Activation::ReLU).unwrap();
        let b = DenseLayer::new(
            Matrix::<f64>::zeros(2, 4),
            vec![0.0; 2],
            Activation::Identity,
        )
        .unwrap();
        let err = Network::new(vec![a, b], Readout::MaxPool).unwrap_err();
        assert!(err.to_string().contains("layer 0 emits 3"));
        assert!(Network::<f64>::new(vec![], Readout::MaxPool).is_err());
    }

    #[test]
    fn classify_both_sides() {
        let net = xor_like();
        assert_eq!(net.classify(&[2.0, 0.0]).unwrap(), 0);
        assert_eq!(net.classify(&[0.0, 2.0]).unwrap(), 1);
        // Tie breaks toward the lower index (paper's L0 ≥ L1 → L0).
        assert_eq!(net.classify(&[1.0, 1.0]).unwrap(), 0);
    }

    #[test]
    fn margin_sign_matches_classification() {
        let net = xor_like();
        assert!(net.margin(&[2.0, 0.0], 0).unwrap() > 0.0);
        assert!(net.margin(&[2.0, 0.0], 1).unwrap() < 0.0);
        assert_eq!(net.margin(&[1.0, 1.0], 0).unwrap(), 0.0);
    }

    #[test]
    fn forward_trace_consistent_with_forward() {
        let net = xor_like();
        let x = [1.5, -0.5];
        let trace = net.forward_trace(&x).unwrap();
        assert_eq!(trace.activations.len(), 3);
        assert_eq!(trace.preactivations.len(), 2);
        assert_eq!(trace.activations[0], x.to_vec());
        assert_eq!(trace.output(), net.forward(&x).unwrap().as_slice());
        // Hidden pre-activation: [x0-x1, x1-x0] = [2, -2]; relu → [2, 0].
        assert_eq!(trace.preactivations[0], vec![2.0, -2.0]);
        assert_eq!(trace.activations[1], vec![2.0, 0.0]);
    }

    #[test]
    fn exact_rational_forward_matches_f64() {
        let net = xor_like();
        let qnet = net.map(|v| Rational::from_f64_exact(*v).unwrap());
        for x in [[2.0, 0.0], [0.0, 2.0], [0.7, 0.9]] {
            let fx = net.classify(&x).unwrap();
            let qx = qnet
                .classify(&[
                    Rational::from_f64_exact(x[0]).unwrap(),
                    Rational::from_f64_exact(x[1]).unwrap(),
                ])
                .unwrap();
            assert_eq!(fx, qx, "f64 and exact classification must agree on {x:?}");
        }
    }

    #[test]
    fn serde_round_trip() {
        let net = xor_like();
        let json = serde_json::to_string(&net).unwrap();
        let back: Network<f64> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, net);
    }
}
