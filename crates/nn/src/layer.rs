//! A fully-connected layer: affine transform plus activation.

use fannet_numeric::Scalar;
use fannet_tensor::{Matrix, ShapeError};
use serde::{Deserialize, Serialize};

use crate::activation::Activation;

/// One fully-connected layer `a = σ(W·x + b)`.
///
/// `W` is `outputs × inputs`, `b` has length `outputs`.
///
/// # Examples
///
/// ```
/// use fannet_nn::{Activation, DenseLayer};
/// use fannet_tensor::Matrix;
///
/// let w = Matrix::from_rows(vec![vec![1.0, -1.0]])?;
/// let layer = DenseLayer::new(w, vec![0.5], Activation::ReLU)?;
/// assert_eq!(layer.forward(&[2.0, 1.0])?, vec![1.5]);
/// assert_eq!(layer.forward(&[0.0, 1.0])?, vec![0.0]); // clamped by ReLU
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer<S> {
    weights: Matrix<S>,
    biases: Vec<S>,
    activation: Activation,
}

impl<S: Scalar> DenseLayer<S> {
    /// Creates a layer, validating that `biases.len() == weights.rows()`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on a bias/weight row-count mismatch.
    pub fn new(
        weights: Matrix<S>,
        biases: Vec<S>,
        activation: Activation,
    ) -> Result<Self, ShapeError> {
        if biases.len() != weights.rows() {
            return Err(ShapeError::new(format!(
                "layer: {} biases for a weight matrix with {} rows",
                biases.len(),
                weights.rows()
            )));
        }
        Ok(DenseLayer {
            weights,
            biases,
            activation,
        })
    }

    /// Number of input features.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.weights.cols()
    }

    /// Number of output neurons.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.weights.rows()
    }

    /// The weight matrix (`outputs × inputs`).
    #[must_use]
    pub fn weights(&self) -> &Matrix<S> {
        &self.weights
    }

    /// Mutable access to the weight matrix (training).
    pub fn weights_mut(&mut self) -> &mut Matrix<S> {
        &mut self.weights
    }

    /// The bias vector.
    #[must_use]
    pub fn biases(&self) -> &[S] {
        &self.biases
    }

    /// Mutable access to the bias vector (training).
    pub fn biases_mut(&mut self) -> &mut Vec<S> {
        &mut self.biases
    }

    /// The activation function.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Pre-activation `z = W·x + b`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `x.len() != self.inputs()`.
    pub fn preactivation(&self, x: &[S]) -> Result<Vec<S>, ShapeError> {
        let mut z = self.weights.matvec(x)?;
        for (zi, b) in z.iter_mut().zip(&self.biases) {
            *zi = *zi + *b;
        }
        Ok(z)
    }

    /// Full forward pass `σ(W·x + b)`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `x.len() != self.inputs()`.
    pub fn forward(&self, x: &[S]) -> Result<Vec<S>, ShapeError> {
        Ok(self.activation.apply_vec(&self.preactivation(x)?))
    }

    /// Converts the layer to another scalar type via an elementwise map.
    #[must_use]
    pub fn map<T: Scalar>(&self, mut f: impl FnMut(&S) -> T) -> DenseLayer<T> {
        DenseLayer {
            weights: self.weights.map(&mut f),
            biases: self.biases.iter().map(&mut f).collect(),
            activation: self.activation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_numeric::Rational;

    fn layer() -> DenseLayer<f64> {
        DenseLayer::new(
            Matrix::from_rows(vec![vec![1.0, 2.0], vec![-1.0, 0.5]]).unwrap(),
            vec![0.0, 1.0],
            Activation::ReLU,
        )
        .unwrap()
    }

    #[test]
    fn shape_accessors() {
        let l = layer();
        assert_eq!(l.inputs(), 2);
        assert_eq!(l.outputs(), 2);
        assert_eq!(l.activation(), Activation::ReLU);
        assert_eq!(l.biases(), &[0.0, 1.0]);
    }

    #[test]
    fn bias_mismatch_rejected() {
        let err = DenseLayer::new(
            Matrix::<f64>::zeros(2, 2),
            vec![0.0; 3],
            Activation::Identity,
        )
        .unwrap_err();
        assert!(err.to_string().contains("3 biases"));
    }

    #[test]
    fn preactivation_and_forward() {
        let l = layer();
        let z = l.preactivation(&[1.0, 1.0]).unwrap();
        assert_eq!(z, vec![3.0, 0.5]);
        let a = l.forward(&[1.0, -1.0]).unwrap();
        // z = [1-2, -1-0.5+1] = [-1, -0.5] → relu → [0, 0]
        assert_eq!(a, vec![0.0, 0.0]);
        assert!(l.forward(&[1.0]).is_err());
    }

    #[test]
    fn map_to_rational_preserves_semantics() {
        let l = layer();
        let q = l.map(|v| Rational::from_f64_exact(*v).unwrap());
        let x = [Rational::from_integer(1), Rational::from_integer(1)];
        let y = q.forward(&x).unwrap();
        assert_eq!(y, vec![Rational::from_integer(3), Rational::new(1, 2)]);
    }

    #[test]
    fn mutable_access_for_training() {
        let mut l = layer();
        l.weights_mut()[(0, 0)] = 10.0;
        l.biases_mut()[1] = -1.0;
        assert_eq!(l.preactivation(&[1.0, 0.0]).unwrap(), vec![10.0, -2.0]);
    }

    #[test]
    fn serde_round_trip() {
        let l = layer();
        let json = serde_json::to_string(&l).unwrap();
        let back: DenseLayer<f64> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l);
    }
}
