//! Content-addressed network identity.
//!
//! A [`NetworkFingerprint`] is a stable 128-bit hash of a network's
//! *serialized content* — topology, activations, readout and every exact
//! weight/bias — computed over the canonical JSON document produced by
//! [`crate::io::to_json`]'s compact sibling (`serde_json::to_string`).
//! Two networks fingerprint equal iff their canonical serializations are
//! byte-identical, which for `Network<Rational>` means exactly equal
//! parameters (rationals serialize in lowest terms).
//!
//! The fingerprint is the cache *namespace* of `fannet-engine`: verdicts
//! cached for one network can never answer queries against another, even
//! across process restarts or model reloads, because the namespace is
//! derived from content rather than from a file path or a pointer.

use std::fmt;

use serde::{Deserialize, Serialize, Serializer};

use crate::network::Network;
use fannet_numeric::Scalar;

/// A 128-bit FNV-1a content hash identifying one network.
///
/// Not cryptographic — it guards against *accidental* cross-network cache
/// mixing, not against an adversary crafting collisions.
///
/// # Examples
///
/// ```
/// use fannet_nn::{fingerprint::fingerprint, Activation, DenseLayer, Network, Readout};
/// use fannet_tensor::Matrix;
///
/// let net = Network::new(vec![DenseLayer::new(
///     Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]])?,
///     vec![0.0, 0.0],
///     Activation::Identity,
/// )?], Readout::MaxPool)?;
/// let a = fingerprint(&net);
/// assert_eq!(a, fingerprint(&net.clone()), "content-addressed");
/// assert_eq!(a.to_string().len(), 32, "128 bits as hex");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetworkFingerprint {
    hi: u64,
    lo: u64,
}

impl NetworkFingerprint {
    /// Hashes raw bytes — exposed so callers can fingerprint a model
    /// document without re-parsing it.
    #[must_use]
    pub fn of_bytes(bytes: &[u8]) -> Self {
        NetworkFingerprint {
            hi: fnv1a(bytes, 0xcbf2_9ce4_8422_2325),
            // A second pass from an independent offset basis; the pair
            // behaves as a 128-bit hash for accidental-collision purposes.
            lo: fnv1a(bytes, 0x6c62_272e_07bb_0142),
        }
    }

    /// The fingerprint as a fixed-width lowercase hex string.
    #[must_use]
    pub fn to_hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Display for NetworkFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl Serialize for NetworkFingerprint {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_hex())
    }
}

impl<'de> Deserialize<'de> for NetworkFingerprint {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let hex = String::deserialize(deserializer)?;
        if hex.len() != 32 {
            return Err(serde::de::Error::custom(format!(
                "fingerprint must be 32 hex digits, got {}",
                hex.len()
            )));
        }
        let parse = |s: &str| {
            u64::from_str_radix(s, 16)
                .map_err(|_| serde::de::Error::custom("fingerprint is not hex"))
        };
        Ok(NetworkFingerprint {
            hi: parse(&hex[..16])?,
            lo: parse(&hex[16..])?,
        })
    }
}

/// 64-bit FNV-1a with a caller-chosen offset basis.
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprints a network via its canonical (compact) JSON serialization.
///
/// # Panics
///
/// Panics if the network fails to serialize (cannot happen for the
/// workspace's scalar types — their `Serialize` impls are total).
#[must_use]
pub fn fingerprint<S: Scalar + Serialize>(net: &Network<S>) -> NetworkFingerprint {
    let json = serde_json::to_string(net).expect("network serialization is total");
    NetworkFingerprint::of_bytes(json.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::layer::DenseLayer;
    use crate::network::Readout;
    use fannet_numeric::Rational;
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn net(w: i128) -> Network<Rational> {
        Network::new(
            vec![DenseLayer::new(
                Matrix::from_rows(vec![vec![r(w), r(0)], vec![r(0), r(1)]]).unwrap(),
                vec![r(0), r(0)],
                Activation::Identity,
            )
            .unwrap()],
            Readout::MaxPool,
        )
        .unwrap()
    }

    #[test]
    fn equal_content_equal_fingerprint() {
        assert_eq!(fingerprint(&net(1)), fingerprint(&net(1)));
    }

    #[test]
    fn different_weights_different_fingerprint() {
        assert_ne!(fingerprint(&net(1)), fingerprint(&net(2)));
    }

    #[test]
    fn survives_model_io_round_trip() {
        let a = net(7);
        let json = crate::io::to_json(&a).unwrap();
        let b: Network<Rational> = crate::io::from_json(&json).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn hex_and_serde_round_trip() {
        let fp = fingerprint(&net(3));
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        let json = serde_json::to_string(&fp).unwrap();
        assert_eq!(json, format!("\"{hex}\""));
        let back: NetworkFingerprint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fp);
        assert!(serde_json::from_str::<NetworkFingerprint>("\"abc\"").is_err());
        assert!(
            serde_json::from_str::<NetworkFingerprint>(&format!("\"{}\"", "g".repeat(32))).is_err()
        );
    }

    #[test]
    fn bytes_entry_point_matches() {
        let n = net(5);
        let json = serde_json::to_string(&n).unwrap();
        assert_eq!(
            fingerprint(&n),
            NetworkFingerprint::of_bytes(json.as_bytes())
        );
    }
}
