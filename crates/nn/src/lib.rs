//! # fannet-nn
//!
//! Feed-forward fully-connected neural networks for the FANNet (DATE 2020)
//! reproduction: definition ([`Network`], [`DenseLayer`], [`Activation`]),
//! deterministic initialization ([`init`]), full-batch training with the
//! paper's two-phase learning-rate schedule ([`train`]), exact quantization
//! to rationals for verification ([`quantize`]) and model (de)serialization
//! ([`io`]).
//!
//! The network code is generic over [`fannet_numeric::Scalar`], so a single
//! forward-pass implementation serves `f64` training, exact-`Rational`
//! verification and Q32.32 [`Fixed`](fannet_numeric::Fixed) deployment
//! simulation.
//!
//! ## Example: train, quantize, classify exactly
//!
//! ```
//! use fannet_nn::{init, train, quantize, Activation};
//! use fannet_numeric::Rational;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut net = init::fresh_network(&mut rng, &[2, 6, 2], Activation::ReLU,
//!                                   init::Init::XavierUniform);
//! let xs = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.9, 0.1], vec![-0.1, 1.1]];
//! let ys = vec![0, 1, 0, 1];
//! train::train(&mut net, &xs, &ys, &train::TrainConfig::paper())?;
//!
//! let exact = quantize::to_rational_default(&net);
//! let x = [Rational::from_integer(1), Rational::ZERO];
//! assert_eq!(exact.classify(&x)?, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod activation;
pub mod fingerprint;
pub mod fold;
pub mod init;
pub mod io;
pub mod layer;
pub mod network;
pub mod quantize;
pub mod train;

pub use activation::Activation;
pub use fingerprint::NetworkFingerprint;
pub use layer::DenseLayer;
pub use network::{ForwardTrace, Network, Readout};
