//! Quantization of trained `f64` networks into exact [`Rational`] and
//! fixed-point [`Fixed`] parameter domains.
//!
//! FANNet's "behaviour extraction" step (Fig. 2 of the paper) translates a
//! trained network into the model checker's language. nuXmv works over
//! exact reals/integers, so the translation implicitly fixes an exact value
//! for every weight; we make that step explicit: each `f64` weight is
//! rounded to the nearest rational with a caller-chosen power-of-two
//! denominator. With `DEFAULT_DENOM_BITS` = 20 the rounding error per
//! parameter is ≤ 2⁻²¹, far below any decision boundary the 5–20–2 network
//! produces on integer-valued inputs; the validation property **P1**
//! (`fannet-core::behavior`) then *proves* that the quantized model agrees
//! with the float model on the whole test set before any noise analysis
//! begins.

use fannet_numeric::{Fixed, Rational};

use crate::network::Network;

/// Default denominator precision (bits) for weight quantization.
pub const DEFAULT_DENOM_BITS: u32 = 20;

/// Quantizes every parameter to the nearest rational with denominator
/// `2^denom_bits`, yielding the exact network analysed by the verifier.
///
/// # Panics
///
/// Panics if `denom_bits >= 127` (the denominator would overflow `i128`) or
/// if a parameter is not finite.
///
/// # Examples
///
/// ```
/// use fannet_nn::{quantize, Activation, DenseLayer, Network, Readout};
/// use fannet_tensor::Matrix;
/// use fannet_numeric::Rational;
///
/// let layer = DenseLayer::new(
///     Matrix::from_rows(vec![vec![0.3333333333f64]])?,
///     vec![0.0],
///     Activation::Identity,
/// )?;
/// let net = Network::new(vec![layer], Readout::MaxPool)?;
/// let exact = quantize::to_rational(&net, 20);
/// let w = exact.layers()[0].weights()[(0, 0)];
/// assert_eq!(w.denom(), 1 << 20); // nearest 20-bit dyadic to 1/3
/// assert!((w.to_f64() - 1.0 / 3.0).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn to_rational(net: &Network<f64>, denom_bits: u32) -> Network<Rational> {
    assert!(
        denom_bits < 127,
        "denominator 2^{denom_bits} would overflow i128"
    );
    let den = 1i128 << denom_bits;
    net.map(|&w| Rational::from_f64_approx(w, den))
}

/// Quantizes with the default precision ([`DEFAULT_DENOM_BITS`]).
#[must_use]
pub fn to_rational_default(net: &Network<f64>) -> Network<Rational> {
    to_rational(net, DEFAULT_DENOM_BITS)
}

/// Converts a network to the Q32.32 fixed-point datapath (deployment
/// simulation; *not* used for verification).
#[must_use]
pub fn to_fixed(net: &Network<f64>) -> Network<Fixed> {
    net.map(|&w| Fixed::from_f64(w))
}

/// Converts an exact rational network back to `f64` (reporting).
#[must_use]
pub fn to_f64(net: &Network<Rational>) -> Network<f64> {
    net.map(|w| w.to_f64())
}

/// A quantized network bundled with its quantization-error bound — the
/// single-pass form of [`to_rational`] + [`max_quantization_error`].
///
/// `max_quantization_error` recomputes the full quantization per call;
/// callers that need both the exact network *and* its error budget (the
/// `fannet-faults` quantization fault model, report sections) get them
/// here from one traversal, with the error cached alongside the network
/// instead of re-derived.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantization {
    /// The exact rational network (identical to [`to_rational`]'s output).
    pub net: Network<Rational>,
    /// The largest absolute per-parameter rounding error, exact.
    pub max_error: Rational,
    /// The denominator precision the quantization used.
    pub denom_bits: u32,
}

/// Quantizes every parameter to denominator `2^denom_bits` **and**
/// records the worst per-parameter rounding error in the same pass.
///
/// The returned network is identical to [`to_rational`]'s and the error
/// to [`max_quantization_error`]'s (pinned by a regression test on the
/// Golub case-study network); only the duplicate quantization pass is
/// gone.
///
/// # Panics
///
/// Panics if `denom_bits >= 127` or a parameter is not finite.
#[must_use]
pub fn quantize_with_error(net: &Network<f64>, denom_bits: u32) -> Quantization {
    assert!(
        denom_bits < 127,
        "denominator 2^{denom_bits} would overflow i128"
    );
    let den = 1i128 << denom_bits;
    let mut worst = Rational::ZERO;
    let quantized = net.map(|&w| {
        let q = Rational::from_f64_approx(w, den);
        let exact = Rational::from_f64_exact(w).expect("trained weights are finite");
        let err = (exact - q).abs();
        if err > worst {
            worst = err;
        }
        q
    });
    Quantization {
        net: quantized,
        max_error: worst,
        denom_bits,
    }
}

/// The largest absolute quantization error across all parameters, as an
/// exact rational — useful for error-budget arguments in reports.
///
/// Callers that also need the quantized network should use
/// [`quantize_with_error`], which computes both in one pass.
#[must_use]
pub fn max_quantization_error(net: &Network<f64>, denom_bits: u32) -> Rational {
    quantize_with_error(net, denom_bits).max_error
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::{fresh_network, Init};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_net() -> Network<f64> {
        fresh_network(
            &mut StdRng::seed_from_u64(99),
            &[5, 20, 2],
            Activation::ReLU,
            Init::XavierUniform,
        )
    }

    #[test]
    fn quantization_error_bounded_by_half_ulp() {
        let net = sample_net();
        for bits in [8, 16, 20] {
            let bound = Rational::new(1, 1i128 << (bits + 1));
            let worst = max_quantization_error(&net, bits);
            assert!(
                worst <= bound,
                "bits={bits}: worst error {worst} exceeds {bound}"
            );
        }
    }

    #[test]
    fn higher_precision_never_worse() {
        let net = sample_net();
        let coarse = max_quantization_error(&net, 8);
        let fine = max_quantization_error(&net, 20);
        assert!(fine <= coarse);
    }

    #[test]
    fn quantized_net_classifies_like_float_net() {
        let net = sample_net();
        let q = to_rational_default(&net);
        let mut rng = StdRng::seed_from_u64(5);
        use rand::Rng;
        for _ in 0..50 {
            let x: Vec<f64> = (0..5).map(|_| rng.gen_range(-100.0..100.0)).collect();
            let fx = net.classify(&x).unwrap();
            let qx = q
                .classify(
                    &x.iter()
                        .map(|&v| Rational::from_f64_exact(v).unwrap())
                        .collect::<Vec<_>>(),
                )
                .unwrap();
            // With 20-bit quantization and margins not astronomically small
            // the classifications agree; tolerate no disagreement here since
            // the seed gives comfortable margins.
            assert_eq!(fx, qx, "disagreement at {x:?}");
        }
    }

    #[test]
    fn quantize_with_error_matches_two_pass_path() {
        let net = sample_net();
        for bits in [8, 16, 20] {
            let q = quantize_with_error(&net, bits);
            assert_eq!(q.denom_bits, bits);
            assert_eq!(q.net, to_rational(&net, bits), "bits={bits}");
            assert_eq!(q.max_error, max_quantization_error(&net, bits));
            assert!(q.max_error <= Rational::new(1, 1i128 << (bits + 1)));
        }
    }

    #[test]
    fn fixed_point_round_trip_is_close() {
        let net = sample_net();
        let fx = to_fixed(&net);
        let back = fx.map(|v| v.to_f64());
        for (a, b) in net.layers().iter().zip(back.layers()) {
            for (&wa, &wb) in a.weights().as_slice().iter().zip(b.weights().as_slice()) {
                assert!((wa - wb).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn to_f64_round_trip() {
        let net = sample_net();
        let q = to_rational(&net, 30);
        let back = to_f64(&q);
        for (a, b) in net.layers().iter().zip(back.layers()) {
            for (&wa, &wb) in a.weights().as_slice().iter().zip(b.weights().as_slice()) {
                assert!((wa - wb).abs() < 1e-8);
            }
        }
    }
}
