//! Deterministic weight initialization.
//!
//! All initializers take an explicit RNG so the entire reproduction is
//! seed-deterministic: the same seed yields the same trained network, the
//! same counterexamples and the same report numbers.

use fannet_numeric::Scalar;
use fannet_tensor::Matrix;
use rand::Rng;

use crate::activation::Activation;
use crate::layer::DenseLayer;
use crate::network::{Network, Readout};

/// Weight-initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// Xavier/Glorot uniform: `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
    XavierUniform,
    /// He/Kaiming uniform: `U(-√(6/fan_in), +√(6/fan_in))` — suited to ReLU.
    HeUniform,
    /// Uniform in `[-bound, bound]`.
    Uniform(f64),
}

impl Init {
    fn bound(self, fan_in: usize, fan_out: usize) -> f64 {
        match self {
            Init::XavierUniform => (6.0 / (fan_in + fan_out) as f64).sqrt(),
            Init::HeUniform => (6.0 / fan_in as f64).sqrt(),
            Init::Uniform(b) => b,
        }
    }

    /// Samples a weight matrix of shape `fan_out × fan_in`.
    pub fn weights<R: Rng>(self, rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix<f64> {
        let b = self.bound(fan_in, fan_out);
        let data: Vec<f64> = (0..fan_in * fan_out)
            .map(|_| rng.gen_range(-b..=b))
            .collect();
        Matrix::from_vec(fan_out, fan_in, data).expect("generated buffer has exact size")
    }
}

/// Builds a fresh fully-connected classifier with the given layer sizes:
/// hidden layers use `hidden_activation`, the output layer is `Identity`
/// with a maxpool readout (the paper's architecture).
///
/// # Panics
///
/// Panics if `sizes` has fewer than two entries or contains a zero.
///
/// # Examples
///
/// ```
/// use fannet_nn::{init, Activation};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let net = init::fresh_network(&mut rng, &[5, 20, 2], Activation::ReLU, init::Init::XavierUniform);
/// assert_eq!(net.topology(), vec![5, 20, 2]);
/// ```
pub fn fresh_network<R: Rng>(
    rng: &mut R,
    sizes: &[usize],
    hidden_activation: Activation,
    init: Init,
) -> Network<f64> {
    assert!(sizes.len() >= 2, "need at least input and output sizes");
    assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
    let mut layers = Vec::with_capacity(sizes.len() - 1);
    for (i, pair) in sizes.windows(2).enumerate() {
        let (fan_in, fan_out) = (pair[0], pair[1]);
        let act = if i + 2 == sizes.len() {
            Activation::Identity
        } else {
            hidden_activation
        };
        let weights = init.weights(rng, fan_in, fan_out);
        let layer = DenseLayer::new(weights, vec![f64::zero(); fan_out], act)
            .expect("bias length matches rows by construction");
        layers.push(layer);
    }
    Network::new(layers, Readout::MaxPool).expect("sizes chain by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = fresh_network(
            &mut StdRng::seed_from_u64(7),
            &[5, 20, 2],
            Activation::ReLU,
            Init::XavierUniform,
        );
        let b = fresh_network(
            &mut StdRng::seed_from_u64(7),
            &[5, 20, 2],
            Activation::ReLU,
            Init::XavierUniform,
        );
        assert_eq!(a, b);
        let c = fresh_network(
            &mut StdRng::seed_from_u64(8),
            &[5, 20, 2],
            Activation::ReLU,
            Init::XavierUniform,
        );
        assert_ne!(a, c, "different seeds must give different weights");
    }

    #[test]
    fn architecture_matches_request() {
        let net = fresh_network(
            &mut StdRng::seed_from_u64(1),
            &[6, 10, 4, 3],
            Activation::ReLU,
            Init::HeUniform,
        );
        assert_eq!(net.topology(), vec![6, 10, 4, 3]);
        assert_eq!(net.layers()[0].activation(), Activation::ReLU);
        assert_eq!(net.layers()[1].activation(), Activation::ReLU);
        assert_eq!(net.layers()[2].activation(), Activation::Identity);
    }

    #[test]
    fn bounds_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Init::Uniform(0.25).weights(&mut rng, 50, 50);
        assert!(w.as_slice().iter().all(|v| v.abs() <= 0.25));
        let x = Init::XavierUniform.weights(&mut rng, 8, 8);
        let bound = (6.0 / 16.0_f64).sqrt();
        assert!(x.as_slice().iter().all(|v| v.abs() <= bound));
        let h = Init::HeUniform.weights(&mut rng, 6, 8);
        let hbound = 1.0;
        assert!(h.as_slice().iter().all(|v| v.abs() <= hbound));
    }

    #[test]
    fn biases_start_at_zero() {
        let net = fresh_network(
            &mut StdRng::seed_from_u64(1),
            &[5, 20, 2],
            Activation::ReLU,
            Init::XavierUniform,
        );
        for layer in net.layers() {
            assert!(layer.biases().iter().all(|&b| b == 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_sizes_panics() {
        let _ = fresh_network(
            &mut StdRng::seed_from_u64(1),
            &[5],
            Activation::ReLU,
            Init::XavierUniform,
        );
    }
}
