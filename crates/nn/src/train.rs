//! Full-batch gradient-descent training.
//!
//! The paper trains the case-study network in MATLAB "with a learning rate
//! of 0.5 for the 40 initial epochs, and a learning rate of 0.2 for the
//! remaining 40 epochs" (§V-A). [`LrSchedule::paper`] reproduces exactly
//! that two-phase schedule; the trainer itself is an ordinary full-batch
//! backpropagation loop over `f64` networks built from
//! [`DenseLayer`](crate::DenseLayer)s with `ReLU`/`Identity`/`Sigmoid`
//! activations.

use fannet_tensor::{Matrix, ShapeError};
use serde::{Deserialize, Serialize};

use crate::activation::softmax;
use crate::network::Network;

/// Loss function used for training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error against one-hot targets.
    MeanSquaredError,
    /// Softmax + cross-entropy against the class index.
    SoftmaxCrossEntropy,
}

/// A piecewise-constant learning-rate schedule.
///
/// # Examples
///
/// ```
/// use fannet_nn::train::LrSchedule;
/// let s = LrSchedule::paper();
/// assert_eq!(s.total_epochs(), 80);
/// assert_eq!(s.rate_at(0), 0.5);
/// assert_eq!(s.rate_at(39), 0.5);
/// assert_eq!(s.rate_at(40), 0.2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LrSchedule {
    phases: Vec<(usize, f64)>,
}

impl LrSchedule {
    /// A schedule made of `(epoch_count, learning_rate)` phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has zero epochs or a
    /// non-positive rate.
    #[must_use]
    pub fn new(phases: Vec<(usize, f64)>) -> Self {
        assert!(!phases.is_empty(), "schedule needs at least one phase");
        assert!(
            phases.iter().all(|&(n, lr)| n > 0 && lr > 0.0),
            "each phase needs positive epochs and rate"
        );
        LrSchedule { phases }
    }

    /// The paper's schedule: lr 0.5 for 40 epochs, then 0.2 for 40 epochs.
    #[must_use]
    pub fn paper() -> Self {
        LrSchedule::new(vec![(40, 0.5), (40, 0.2)])
    }

    /// A single-phase schedule.
    #[must_use]
    pub fn constant(epochs: usize, rate: f64) -> Self {
        LrSchedule::new(vec![(epochs, rate)])
    }

    /// Total number of epochs across all phases.
    #[must_use]
    pub fn total_epochs(&self) -> usize {
        self.phases.iter().map(|&(n, _)| n).sum()
    }

    /// The learning rate in force at (0-based) `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if `epoch >= self.total_epochs()`.
    #[must_use]
    pub fn rate_at(&self, epoch: usize) -> f64 {
        let mut remaining = epoch;
        for &(n, lr) in &self.phases {
            if remaining < n {
                return lr;
            }
            remaining -= n;
        }
        panic!(
            "epoch {epoch} beyond schedule of {} epochs",
            self.total_epochs()
        );
    }
}

/// Training configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning-rate schedule (also fixes the epoch count).
    pub schedule: LrSchedule,
    /// Loss function.
    pub loss: Loss,
}

impl TrainConfig {
    /// The paper's configuration: two-phase schedule with softmax
    /// cross-entropy (the loss is not stated in the paper; CE is the
    /// standard choice for classification and trains to the paper's reported
    /// 100 % train accuracy).
    #[must_use]
    pub fn paper() -> Self {
        TrainConfig {
            schedule: LrSchedule::paper(),
            loss: Loss::SoftmaxCrossEntropy,
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Per-epoch history and final metrics of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss after each epoch.
    pub epoch_loss: Vec<f64>,
    /// Training-set accuracy after each epoch.
    pub epoch_accuracy: Vec<f64>,
}

impl TrainReport {
    /// Accuracy after the final epoch.
    #[must_use]
    pub fn final_accuracy(&self) -> f64 {
        self.epoch_accuracy.last().copied().unwrap_or(0.0)
    }

    /// Loss after the final epoch.
    #[must_use]
    pub fn final_loss(&self) -> f64 {
        self.epoch_loss.last().copied().unwrap_or(f64::INFINITY)
    }
}

/// Classification accuracy of `net` on a labelled set.
///
/// # Errors
///
/// Returns [`ShapeError`] if an input's length differs from `net.inputs()`.
pub fn accuracy(net: &Network<f64>, xs: &[Vec<f64>], ys: &[usize]) -> Result<f64, ShapeError> {
    if xs.is_empty() {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    for (x, &y) in xs.iter().zip(ys) {
        if net.classify(x)? == y {
            correct += 1;
        }
    }
    Ok(correct as f64 / xs.len() as f64)
}

/// Trains `net` in place with full-batch gradient descent.
///
/// `xs` are the training inputs, `ys` the class indices. Gradients are
/// averaged over the batch each epoch and applied once per epoch with the
/// scheduled rate — matching the small-data regime of the paper's 38-sample
/// training set.
///
/// # Errors
///
/// Returns [`ShapeError`] on input-shape mismatch.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths, `xs` is empty, or a label
/// is out of range.
pub fn train(
    net: &mut Network<f64>,
    xs: &[Vec<f64>],
    ys: &[usize],
    config: &TrainConfig,
) -> Result<TrainReport, ShapeError> {
    assert_eq!(xs.len(), ys.len(), "inputs and labels must pair up");
    assert!(!xs.is_empty(), "cannot train on an empty set");
    let classes = net.outputs();
    assert!(
        ys.iter().all(|&y| y < classes),
        "labels must be < {classes}"
    );

    let epochs = config.schedule.total_epochs();
    let mut report = TrainReport {
        epoch_loss: Vec::with_capacity(epochs),
        epoch_accuracy: Vec::with_capacity(epochs),
    };

    for epoch in 0..epochs {
        let lr = config.schedule.rate_at(epoch);
        let (grads, mean_loss) = batch_gradients(net, xs, ys, config.loss)?;
        apply_gradients(net, &grads, lr / xs.len() as f64);
        report.epoch_loss.push(mean_loss);
        report.epoch_accuracy.push(accuracy(net, xs, ys)?);
    }
    Ok(report)
}

/// Accumulated (summed, not averaged) gradients for every layer.
struct Gradients {
    weights: Vec<Matrix<f64>>,
    biases: Vec<Vec<f64>>,
}

fn batch_gradients(
    net: &Network<f64>,
    xs: &[Vec<f64>],
    ys: &[usize],
    loss: Loss,
) -> Result<(Gradients, f64), ShapeError> {
    let mut grads = Gradients {
        weights: net
            .layers()
            .iter()
            .map(|l| Matrix::zeros(l.outputs(), l.inputs()))
            .collect(),
        biases: net
            .layers()
            .iter()
            .map(|l| vec![0.0; l.outputs()])
            .collect(),
    };
    let mut total_loss = 0.0;

    for (x, &y) in xs.iter().zip(ys) {
        let trace = net.forward_trace(x)?;
        let out = trace.output();
        let (sample_loss, mut delta) = output_delta(out, y, loss);
        total_loss += sample_loss;

        // delta currently = dL/dz only for CE (softmax folds the activation
        // derivative); for MSE it is dL/da and needs the activation factor.
        for l in (0..net.layers().len()).rev() {
            let layer = &net.layers()[l];
            if !(loss == Loss::SoftmaxCrossEntropy && l == net.layers().len() - 1) {
                for (d, &z) in delta.iter_mut().zip(&trace.preactivations[l]) {
                    *d *= layer.activation().derivative(z);
                }
            }
            let a_prev = &trace.activations[l];
            let gw = Matrix::outer(&delta, a_prev);
            grads.weights[l] = grads.weights[l].add(&gw)?;
            for (g, d) in grads.biases[l].iter_mut().zip(&delta) {
                *g += d;
            }
            if l > 0 {
                // delta_{l-1} (pre activation-derivative) = W_l^T · delta_l
                delta = layer.weights().transpose().matvec(&delta)?;
            }
        }
    }
    Ok((grads, total_loss / xs.len() as f64))
}

/// Loss value and the initial backward signal for one sample.
///
/// For `SoftmaxCrossEntropy` the returned delta is already `dL/dz` (softmax
/// derivative folded in); for `MeanSquaredError` it is `dL/da`.
fn output_delta(out: &[f64], y: usize, loss: Loss) -> (f64, Vec<f64>) {
    match loss {
        Loss::MeanSquaredError => {
            let n = out.len() as f64;
            let mut delta = Vec::with_capacity(out.len());
            let mut l = 0.0;
            for (i, &o) in out.iter().enumerate() {
                let target = if i == y { 1.0 } else { 0.0 };
                let diff = o - target;
                l += diff * diff / n;
                delta.push(2.0 * diff / n);
            }
            (l, delta)
        }
        Loss::SoftmaxCrossEntropy => {
            let p = softmax(out);
            let l = -(p[y].max(1e-300)).ln();
            let mut delta = p;
            delta[y] -= 1.0;
            (l, delta)
        }
    }
}

fn apply_gradients(net: &mut Network<f64>, grads: &Gradients, step: f64) {
    for (layer, (gw, gb)) in net
        .layers_mut()
        .iter_mut()
        .zip(grads.weights.iter().zip(&grads.biases))
    {
        let w = layer.weights_mut();
        for r in 0..w.rows() {
            for c in 0..w.cols() {
                w[(r, c)] -= step * gw[(r, c)];
            }
        }
        for (b, g) in layer.biases_mut().iter_mut().zip(gb) {
            *b -= step * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::{fresh_network, Init};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_problem() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Linearly separable 2-class problem in 2D.
        let xs = vec![
            vec![1.0, 0.1],
            vec![0.9, -0.2],
            vec![1.2, 0.3],
            vec![0.8, 0.0],
            vec![-1.0, 0.2],
            vec![-0.9, -0.1],
            vec![-1.1, 0.0],
            vec![-0.7, 0.3],
        ];
        let ys = vec![0, 0, 0, 0, 1, 1, 1, 1];
        (xs, ys)
    }

    #[test]
    fn schedule_phases() {
        let s = LrSchedule::paper();
        assert_eq!(s.total_epochs(), 80);
        assert_eq!(s.rate_at(0), 0.5);
        assert_eq!(s.rate_at(39), 0.5);
        assert_eq!(s.rate_at(40), 0.2);
        assert_eq!(s.rate_at(79), 0.2);
    }

    #[test]
    #[should_panic(expected = "beyond schedule")]
    fn schedule_out_of_range_panics() {
        let _ = LrSchedule::paper().rate_at(80);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_panics() {
        let _ = LrSchedule::new(vec![]);
    }

    #[test]
    fn training_reaches_full_accuracy_ce() {
        let (xs, ys) = toy_problem();
        let mut net = fresh_network(
            &mut StdRng::seed_from_u64(11),
            &[2, 8, 2],
            Activation::ReLU,
            Init::XavierUniform,
        );
        let report = train(&mut net, &xs, &ys, &TrainConfig::paper()).unwrap();
        assert_eq!(
            report.final_accuracy(),
            1.0,
            "losses: {:?}",
            report.epoch_loss
        );
        assert_eq!(report.epoch_loss.len(), 80);
        assert!(report.final_loss() < report.epoch_loss[0]);
    }

    #[test]
    fn training_reaches_full_accuracy_mse() {
        let (xs, ys) = toy_problem();
        let mut net = fresh_network(
            &mut StdRng::seed_from_u64(5),
            &[2, 8, 2],
            Activation::ReLU,
            Init::XavierUniform,
        );
        let config = TrainConfig {
            schedule: LrSchedule::constant(120, 0.3),
            loss: Loss::MeanSquaredError,
        };
        let report = train(&mut net, &xs, &ys, &config).unwrap();
        assert_eq!(
            report.final_accuracy(),
            1.0,
            "losses: {:?}",
            report.epoch_loss
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = toy_problem();
        let make = || {
            let mut net = fresh_network(
                &mut StdRng::seed_from_u64(11),
                &[2, 4, 2],
                Activation::ReLU,
                Init::XavierUniform,
            );
            train(&mut net, &xs, &ys, &TrainConfig::paper()).unwrap();
            net
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn loss_decreases_on_average() {
        let (xs, ys) = toy_problem();
        let mut net = fresh_network(
            &mut StdRng::seed_from_u64(3),
            &[2, 6, 2],
            Activation::ReLU,
            Init::XavierUniform,
        );
        let report = train(
            &mut net,
            &xs,
            &ys,
            &TrainConfig {
                schedule: LrSchedule::constant(60, 0.1),
                loss: Loss::SoftmaxCrossEntropy,
            },
        )
        .unwrap();
        let first = report.epoch_loss[..10].iter().sum::<f64>();
        let last = report.epoch_loss[50..].iter().sum::<f64>();
        assert!(last < first, "first ten epochs {first}, last ten {last}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Spot-check backprop against central differences on a tiny net.
        let (xs, ys) = toy_problem();
        let net = fresh_network(
            &mut StdRng::seed_from_u64(2),
            &[2, 3, 2],
            Activation::ReLU,
            Init::XavierUniform,
        );
        for loss in [Loss::MeanSquaredError, Loss::SoftmaxCrossEntropy] {
            let (grads, _) = batch_gradients(&net, &xs, &ys, loss).unwrap();
            let eps = 1e-6;
            for (li, ridx, cidx) in [(0usize, 0usize, 1usize), (1, 1, 2), (0, 2, 0)] {
                let mut plus = net.clone();
                plus.layers_mut()[li].weights_mut()[(ridx, cidx)] += eps;
                let mut minus = net.clone();
                minus.layers_mut()[li].weights_mut()[(ridx, cidx)] -= eps;
                let lp: f64 = total_loss(&plus, &xs, &ys, loss);
                let lm: f64 = total_loss(&minus, &xs, &ys, loss);
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads.weights[li][(ridx, cidx)];
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "layer {li} ({ridx},{cidx}) loss {loss:?}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    fn total_loss(net: &Network<f64>, xs: &[Vec<f64>], ys: &[usize], loss: Loss) -> f64 {
        xs.iter()
            .zip(ys)
            .map(|(x, &y)| output_delta(&net.forward(x).unwrap(), y, loss).0)
            .sum()
    }

    #[test]
    fn accuracy_helper() {
        let (xs, ys) = toy_problem();
        let mut net = fresh_network(
            &mut StdRng::seed_from_u64(11),
            &[2, 8, 2],
            Activation::ReLU,
            Init::XavierUniform,
        );
        train(&mut net, &xs, &ys, &TrainConfig::paper()).unwrap();
        assert_eq!(accuracy(&net, &xs, &ys).unwrap(), 1.0);
        assert_eq!(accuracy(&net, &[], &[]).unwrap(), 0.0);
        let flipped: Vec<usize> = ys.iter().map(|&y| 1 - y).collect();
        assert_eq!(accuracy(&net, &xs, &flipped).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "labels must be <")]
    fn out_of_range_label_panics() {
        let (xs, _) = toy_problem();
        let mut net = fresh_network(
            &mut StdRng::seed_from_u64(11),
            &[2, 4, 2],
            Activation::ReLU,
            Init::XavierUniform,
        );
        let bad = vec![9usize; xs.len()];
        let _ = train(&mut net, &xs, &bad, &TrainConfig::paper());
    }
}
