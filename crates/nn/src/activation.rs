//! Activation functions.
//!
//! The paper's case-study network uses **ReLU** in the hidden layer and a
//! **maxpool** readout over the output nodes (i.e. the predicted class is the
//! index of the maximal output, see Fig. 3a of the paper). The maxpool
//! readout is modelled at the network level ([`crate::Readout`]); this module
//! covers the per-neuron nonlinearities, including the sigmoid/softmax
//! helpers used only during `f64` training.

use fannet_numeric::Scalar;
use serde::{Deserialize, Serialize};

/// A per-neuron activation function.
///
/// Only piecewise-linear activations (`Identity`, `ReLU`) are admitted on
/// the verification path; `Sigmoid` exists for training experiments and is
/// rejected by the exact verifier (it is not closed over rationals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// `f(x) = x` — used on output layers (classification happens in the
    /// readout).
    Identity,
    /// `f(x) = max(0, x)` — the paper's hidden-layer activation.
    ReLU,
    /// `f(x) = 1/(1+e^{-x})` — training-only; not piecewise-linear.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to one value.
    ///
    /// # Panics
    ///
    /// Panics for [`Activation::Sigmoid`] with a non-`f64` scalar: sigmoid
    /// is transcendental, so it only exists on the `f64` training path. The
    /// check is indirect (sigmoid is computed in `f64` and converted back),
    /// so for exact scalars use [`Activation::is_piecewise_linear`] to
    /// validate first.
    #[must_use]
    pub fn apply<S: Scalar>(self, x: S) -> S {
        match self {
            Activation::Identity => x,
            Activation::ReLU => x.relu(),
            Activation::Sigmoid => S::from_f64(sigmoid(x.to_f64())),
        }
    }

    /// Applies the activation elementwise.
    #[must_use]
    pub fn apply_vec<S: Scalar>(self, xs: &[S]) -> Vec<S> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }

    /// Derivative with respect to the pre-activation, evaluated in `f64`
    /// (training path only). For ReLU the subgradient at 0 is taken as 0.
    #[must_use]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::ReLU => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
        }
    }

    /// `true` if the function is piecewise linear and therefore admissible
    /// for exact verification.
    #[must_use]
    pub const fn is_piecewise_linear(self) -> bool {
        matches!(self, Activation::Identity | Activation::ReLU)
    }
}

/// Numerically stable logistic sigmoid.
#[must_use]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable softmax (training/reporting only).
///
/// Returns an empty vector for empty input.
///
/// # Examples
///
/// ```
/// use fannet_nn::activation::softmax;
/// let p = softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    let Some(max) = xs.iter().copied().reduce(f64::max) else {
        return Vec::new();
    };
    let exps: Vec<f64> = xs.iter().map(|&x| (x - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fannet_numeric::Rational;

    #[test]
    fn identity_passes_through() {
        assert_eq!(Activation::Identity.apply(-3.5f64), -3.5);
        assert_eq!(
            Activation::Identity.apply(Rational::new(-7, 2)),
            Rational::new(-7, 2)
        );
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::ReLU.apply(-1.0f64), 0.0);
        assert_eq!(Activation::ReLU.apply(2.5f64), 2.5);
        assert_eq!(Activation::ReLU.apply(Rational::new(-1, 3)), Rational::ZERO);
        assert_eq!(
            Activation::ReLU.apply(Rational::new(1, 3)),
            Rational::new(1, 3)
        );
    }

    #[test]
    fn apply_vec_elementwise() {
        assert_eq!(
            Activation::ReLU.apply_vec(&[-1.0, 0.0, 1.0]),
            vec![0.0, 0.0, 1.0]
        );
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // Stability at extremes: no NaN.
        assert!(sigmoid(1e9).is_finite());
        assert!(sigmoid(-1e9).is_finite());
        // Symmetry: σ(-x) = 1 - σ(x).
        for x in [-3.0, -0.5, 0.7, 4.2] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn derivatives() {
        assert_eq!(Activation::Identity.derivative(5.0), 1.0);
        assert_eq!(Activation::ReLU.derivative(2.0), 1.0);
        assert_eq!(Activation::ReLU.derivative(-2.0), 0.0);
        assert_eq!(Activation::ReLU.derivative(0.0), 0.0);
        let d = Activation::Sigmoid.derivative(0.0);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn softmax_normalizes() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Shift invariance.
        let q = softmax(&[11.0, 12.0, 13.0]);
        for (a, b) in p.iter().zip(&q) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(softmax(&[]).is_empty());
        // Large values do not overflow.
        let r = softmax(&[1e300_f64.ln(), 0.0]);
        assert!(r[0].is_finite() && r[1].is_finite());
    }

    #[test]
    fn piecewise_linear_flags() {
        assert!(Activation::Identity.is_piecewise_linear());
        assert!(Activation::ReLU.is_piecewise_linear());
        assert!(!Activation::Sigmoid.is_piecewise_linear());
    }

    #[test]
    fn serde_round_trip() {
        for a in [Activation::Identity, Activation::ReLU, Activation::Sigmoid] {
            let json = serde_json::to_string(&a).unwrap();
            let back: Activation = serde_json::from_str(&json).unwrap();
            assert_eq!(back, a);
        }
    }
}
