//! Folding an input normalization into the first network layer.
//!
//! Training happens on standardized features, but FANNet's noise model is
//! relative to the **raw integer gene expressions** (`x' = x ± x·Δ/100`,
//! paper Fig. 1/2). Given a per-feature affine normalization
//! `x_norm[j] = (x[j] − offset[j]) · scale[j]`, this module rewrites the
//! first layer so the composed network consumes raw inputs directly:
//!
//! ```text
//! z = W·x_norm + b = (W·diag(scale))·x + (b − W·diag(scale)·offset)
//! ```
//!
//! The rewrite is exact in real arithmetic, so the folded network is
//! semantically identical to normalize-then-forward — which the tests
//! verify — and the verifier can apply relative noise to raw inputs exactly
//! as nuXmv does in the paper.

use fannet_tensor::{Matrix, ShapeError};

use crate::layer::DenseLayer;
use crate::network::Network;

/// Returns a network accepting *raw* inputs, equivalent to applying the
/// affine normalization `(x − offset) · scale` and then `net`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `scale`/`offset` lengths differ from
/// `net.inputs()`.
///
/// # Examples
///
/// ```
/// use fannet_nn::{fold, init, Activation};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let net = init::fresh_network(&mut rng, &[2, 4, 2], Activation::ReLU,
///                               init::Init::XavierUniform);
/// let scale = [0.5, 0.25];
/// let offset = [10.0, -4.0];
/// let raw_net = fold::fold_input_affine(&net, &scale, &offset)?;
///
/// let raw = [12.0, 0.0];
/// let normalized: Vec<f64> = raw.iter().zip(scale.iter().zip(&offset))
///     .map(|(&x, (&s, &o))| (x - o) * s).collect();
/// // Exact in real arithmetic; f64 evaluation may differ by rounding only.
/// for (a, b) in raw_net.forward(&raw)?.iter().zip(&net.forward(&normalized)?) {
///     assert!((a - b).abs() < 1e-9, "{a} vs {b}");
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fold_input_affine(
    net: &Network<f64>,
    scale: &[f64],
    offset: &[f64],
) -> Result<Network<f64>, ShapeError> {
    let inputs = net.inputs();
    if scale.len() != inputs || offset.len() != inputs {
        return Err(ShapeError::new(format!(
            "affine of width {}/{} against network with {inputs} inputs",
            scale.len(),
            offset.len()
        )));
    }
    let first = &net.layers()[0];
    let w = first.weights();
    let mut folded_w = Matrix::zeros(w.rows(), w.cols());
    let mut folded_b = first.biases().to_vec();
    for r in 0..w.rows() {
        for c in 0..w.cols() {
            let scaled = w[(r, c)] * scale[c];
            folded_w[(r, c)] = scaled;
            folded_b[r] -= scaled * offset[c];
        }
    }
    let mut layers = Vec::with_capacity(net.layers().len());
    layers.push(DenseLayer::new(folded_w, folded_b, first.activation())?);
    layers.extend(net.layers()[1..].iter().cloned());
    Network::new(layers, net.readout())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::{fresh_network, Init};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn folded_network_matches_normalize_then_forward() {
        let mut rng = StdRng::seed_from_u64(17);
        let net = fresh_network(&mut rng, &[5, 20, 2], Activation::ReLU, Init::XavierUniform);
        let scale: Vec<f64> = (0..5).map(|_| rng.gen_range(0.001..0.1)).collect();
        let offset: Vec<f64> = (0..5).map(|_| rng.gen_range(-500.0..3000.0)).collect();
        let folded = fold_input_affine(&net, &scale, &offset).unwrap();

        for _ in 0..100 {
            let raw: Vec<f64> = (0..5).map(|_| rng.gen_range(-100.0..8000.0)).collect();
            let normalized: Vec<f64> = raw
                .iter()
                .zip(scale.iter().zip(&offset))
                .map(|(&x, (&s, &o))| (x - o) * s)
                .collect();
            let a = folded.forward(&raw).unwrap();
            let b = net.forward(&normalized).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9, "folded {x} vs normalized {y}");
            }
            assert_eq!(
                folded.classify(&raw).unwrap(),
                net.classify(&normalized).unwrap()
            );
        }
    }

    #[test]
    fn identity_affine_is_noop() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = fresh_network(&mut rng, &[3, 4, 2], Activation::ReLU, Init::XavierUniform);
        let folded = fold_input_affine(&net, &[1.0; 3], &[0.0; 3]).unwrap();
        assert_eq!(folded, net);
    }

    #[test]
    fn only_first_layer_changes() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = fresh_network(
            &mut rng,
            &[3, 4, 4, 2],
            Activation::ReLU,
            Init::XavierUniform,
        );
        let folded = fold_input_affine(&net, &[2.0; 3], &[1.0; 3]).unwrap();
        assert_eq!(folded.layers()[1], net.layers()[1]);
        assert_eq!(folded.layers()[2], net.layers()[2]);
        assert_ne!(folded.layers()[0], net.layers()[0]);
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = fresh_network(&mut rng, &[3, 4, 2], Activation::ReLU, Init::XavierUniform);
        assert!(fold_input_affine(&net, &[1.0; 2], &[0.0; 3]).is_err());
        assert!(fold_input_affine(&net, &[1.0; 3], &[0.0; 4]).is_err());
    }
}
