//! Saving and loading trained networks.
//!
//! Models serialize to a small self-describing JSON document (via serde),
//! so a network trained by one example binary can be re-analysed by
//! another, and regression tests can pin exact trained weights.

use std::fmt;
use std::fs;
use std::path::Path;

use fannet_numeric::Scalar;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::network::Network;

/// Error raised while saving or loading a model.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Malformed or incompatible model document.
    Format(String),
}

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "model i/o failed: {e}"),
            ModelIoError::Format(msg) => write!(f, "invalid model document: {msg}"),
        }
    }
}

impl std::error::Error for ModelIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelIoError::Io(e) => Some(e),
            ModelIoError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

/// Serializes a network to a pretty-printed JSON string.
///
/// # Errors
///
/// Returns [`ModelIoError::Format`] if serialization fails (should not
/// happen for well-formed networks).
pub fn to_json<S: Scalar + Serialize>(net: &Network<S>) -> Result<String, ModelIoError> {
    serde_json::to_string_pretty(net).map_err(|e| ModelIoError::Format(e.to_string()))
}

/// Parses a network from JSON produced by [`to_json`].
///
/// # Errors
///
/// Returns [`ModelIoError::Format`] on malformed input.
pub fn from_json<S: Scalar + DeserializeOwned>(json: &str) -> Result<Network<S>, ModelIoError> {
    serde_json::from_str(json).map_err(|e| ModelIoError::Format(e.to_string()))
}

/// Writes a network to `path` as JSON.
///
/// # Errors
///
/// Returns [`ModelIoError`] on serialization or filesystem failure.
pub fn save<S: Scalar + Serialize>(
    net: &Network<S>,
    path: impl AsRef<Path>,
) -> Result<(), ModelIoError> {
    fs::write(path, to_json(net)?)?;
    Ok(())
}

/// Reads a network from a JSON file written by [`save`].
///
/// # Errors
///
/// Returns [`ModelIoError`] on filesystem or parse failure.
pub fn load<S: Scalar + DeserializeOwned>(
    path: impl AsRef<Path>,
) -> Result<Network<S>, ModelIoError> {
    let text = fs::read_to_string(path)?;
    from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::{fresh_network, Init};
    use fannet_numeric::Rational;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::error::Error as _;

    fn sample() -> Network<f64> {
        fresh_network(
            &mut StdRng::seed_from_u64(1),
            &[3, 4, 2],
            Activation::ReLU,
            Init::XavierUniform,
        )
    }

    #[test]
    fn json_round_trip_f64() {
        let net = sample();
        let json = to_json(&net).unwrap();
        let back: Network<f64> = from_json(&json).unwrap();
        assert_eq!(back, net);
    }

    #[test]
    fn json_round_trip_rational_is_exact() {
        let net = crate::quantize::to_rational(&sample(), 16);
        let json = to_json(&net).unwrap();
        let back: Network<Rational> = from_json(&json).unwrap();
        assert_eq!(back, net);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fannet-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let net = sample();
        save(&net, &path).unwrap();
        let back: Network<f64> = load(&path).unwrap();
        assert_eq!(back, net);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(from_json::<f64>("{not json").is_err());
        assert!(from_json::<f64>("{\"layers\": []}").is_err());
        let err = from_json::<f64>("null").unwrap_err();
        assert!(err.to_string().contains("invalid model document"));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load::<f64>("/nonexistent/path/model.json").unwrap_err();
        assert!(matches!(err, ModelIoError::Io(_)));
        assert!(err.source().is_some());
    }
}
