//! Offline shim for `proptest`: the `proptest!` macro, `prop_assert*!`,
//! `prop_assume!`, range and tuple strategies, and `Strategy::prop_map`.
//!
//! Differences from crates.io proptest (deliberate, documented):
//!
//! * cases are generated from a per-test deterministic seed (FNV hash of
//!   the test name), so failures reproduce exactly on re-run;
//! * no shrinking — a failure reports the failing assertion and case
//!   number.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Per-test configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the case is a counterexample.
    Fail(String),
    /// `prop_assume!` filtered the case out; it does not count.
    Reject,
}

impl TestCaseError {
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
        }
    }
}

/// The deterministic RNG driving generation.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the test name, so every run explores the same cases.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, f64);

// i128 ranges back onto i64 spans (the workspace only uses spans < 2^64).
impl Strategy for Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u128;
        assert!(span <= u128::from(u64::MAX), "i128 span too wide for shim");
        self.start + i128::from(rng.next_u64() % span as u64)
    }
}
impl Strategy for RangeInclusive<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u128 + 1;
        assert!(span <= u128::from(u64::MAX), "i128 span too wide for shim");
        lo + i128::from(rng.next_u64() % span as u64)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+)),* $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Runs `f` over `config.cases` generated cases; used by the `proptest!`
/// macro expansion.
///
/// # Panics
///
/// Panics (failing the test) on the first case whose closure returns
/// [`TestCaseError::Fail`], or when the rejection budget is exhausted.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut f: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::deterministic(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let reject_budget = config.cases.saturating_mul(16).max(1024);
    while accepted < config.cases {
        match f(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < reject_budget,
                    "{name}: too many cases rejected by prop_assume! ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed at case {accepted}: {msg}")
            }
        }
    }
}

/// Declares deterministic property tests (see module docs for the shim's
/// semantics).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &__config, |__rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed: {:?} != {:?}", __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed: {:?} != {:?}: {}", __a, __b, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed: both sides are {:?}", __a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed: both sides are {:?}: {}", __a, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = i64> {
        (0i64..100).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps(a in 0i64..10, b in evens(), (c, d) in (0u32..5, 0.0f64..1.0)) {
            prop_assert!((0..10).contains(&a));
            prop_assert_eq!(b % 2, 0);
            prop_assert!(c < 5, "c was {}", c);
            prop_assert!((0.0..1.0).contains(&d));
        }

        #[test]
        fn assume_rejects(v in 0i64..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
            prop_assert_ne!(v, 1);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        crate::run_cases("failures_panic", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("forced".into()))
        });
    }

    #[test]
    fn deterministic_generation() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let s = 0i64..1000;
        let va: Vec<i64> = (0..10).map(|_| Strategy::generate(&s, &mut a)).collect();
        let vb: Vec<i64> = (0..10).map(|_| Strategy::generate(&s, &mut b)).collect();
        assert_eq!(va, vb);
    }
}
