//! Offline shim for `serde`: the trait architecture (`Serialize`,
//! `Deserialize`, `Serializer`, `Deserializer`, error traits) over a single
//! JSON-shaped [`Value`] data model.
//!
//! The surface mirrors real serde closely enough that the workspace's
//! manual impls (`impl Serialize for Rational` etc.) and the derive output
//! from the sibling `serde_derive` shim compile unchanged against it. The
//! one simplification is on the deserialization side: instead of serde's
//! visitor machinery, a [`Deserializer`] hands out an owned [`Value`] tree
//! and `Deserialize` impls pattern-match on it.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every (de)serializer in this workspace
/// flows through — deliberately JSON-shaped.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All integers, signed or not, normalize to `i128` (covers `u64`).
    Int(i128),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

pub mod ser {
    use super::Value;
    use std::fmt::Display;

    /// Error raised by a serializer.
    pub trait Error: Sized + std::error::Error {
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// serde-compatible struct-serialization handle.
    pub trait SerializeStruct {
        type Ok;
        type Error: Error;
        fn serialize_field<T: ?Sized + super::Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// serde-compatible sequence-serialization handle.
    pub trait SerializeSeq {
        type Ok;
        type Error: Error;
        fn serialize_element<T: ?Sized + super::Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// serde-compatible tuple-serialization handle.
    pub trait SerializeTuple {
        type Ok;
        type Error: Error;
        fn serialize_element<T: ?Sized + super::Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// serde-compatible tuple-variant handle.
    pub trait SerializeTupleVariant {
        type Ok;
        type Error: Error;
        fn serialize_field<T: ?Sized + super::Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// serde-compatible struct-variant handle.
    pub trait SerializeStructVariant {
        type Ok;
        type Error: Error;
        fn serialize_field<T: ?Sized + super::Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// The concrete error of the in-tree [`ValueSerializer`].
    #[derive(Debug, Clone)]
    pub struct ValueError(pub String);

    impl Display for ValueError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
    impl std::error::Error for ValueError {}
    impl Error for ValueError {
        fn custom<T: Display>(msg: T) -> Self {
            ValueError(msg.to_string())
        }
    }

    /// The single concrete [`super::Serializer`]: builds a [`Value`] tree.
    pub struct ValueSerializer;

    pub struct ValueSeq(Vec<Value>);
    pub struct ValueStruct(Vec<(String, Value)>);
    pub struct ValueTupleVariant(&'static str, Vec<Value>);
    pub struct ValueStructVariant(&'static str, Vec<(String, Value)>);

    impl super::Serializer for ValueSerializer {
        type Ok = Value;
        type Error = ValueError;
        type SerializeSeq = ValueSeq;
        type SerializeTuple = ValueSeq;
        type SerializeStruct = ValueStruct;
        type SerializeTupleVariant = ValueTupleVariant;
        type SerializeStructVariant = ValueStructVariant;

        fn serialize_bool(self, v: bool) -> Result<Value, ValueError> {
            Ok(Value::Bool(v))
        }
        fn serialize_i128(self, v: i128) -> Result<Value, ValueError> {
            Ok(Value::Int(v))
        }
        fn serialize_u64(self, v: u64) -> Result<Value, ValueError> {
            Ok(Value::Int(i128::from(v)))
        }
        fn serialize_f64(self, v: f64) -> Result<Value, ValueError> {
            Ok(Value::Float(v))
        }
        fn serialize_str(self, v: &str) -> Result<Value, ValueError> {
            Ok(Value::Str(v.to_owned()))
        }
        fn serialize_unit(self) -> Result<Value, ValueError> {
            Ok(Value::Null)
        }
        fn serialize_none(self) -> Result<Value, ValueError> {
            Ok(Value::Null)
        }
        fn serialize_some<T: ?Sized + super::Serialize>(
            self,
            value: &T,
        ) -> Result<Value, ValueError> {
            value.serialize(ValueSerializer)
        }
        fn serialize_unit_variant(
            self,
            _name: &'static str,
            _index: u32,
            variant: &'static str,
        ) -> Result<Value, ValueError> {
            Ok(Value::Str(variant.to_owned()))
        }
        fn serialize_newtype_variant<T: ?Sized + super::Serialize>(
            self,
            _name: &'static str,
            _index: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<Value, ValueError> {
            Ok(Value::Map(vec![(
                variant.to_owned(),
                value.serialize(ValueSerializer)?,
            )]))
        }
        fn serialize_seq(self, len: Option<usize>) -> Result<ValueSeq, ValueError> {
            Ok(ValueSeq(Vec::with_capacity(len.unwrap_or(0))))
        }
        fn serialize_tuple(self, len: usize) -> Result<ValueSeq, ValueError> {
            Ok(ValueSeq(Vec::with_capacity(len)))
        }
        fn serialize_struct(
            self,
            _name: &'static str,
            len: usize,
        ) -> Result<ValueStruct, ValueError> {
            Ok(ValueStruct(Vec::with_capacity(len)))
        }
        fn serialize_tuple_variant(
            self,
            _name: &'static str,
            _index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<ValueTupleVariant, ValueError> {
            Ok(ValueTupleVariant(variant, Vec::with_capacity(len)))
        }
        fn serialize_struct_variant(
            self,
            _name: &'static str,
            _index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<ValueStructVariant, ValueError> {
            Ok(ValueStructVariant(variant, Vec::with_capacity(len)))
        }
    }

    impl SerializeSeq for ValueSeq {
        type Ok = Value;
        type Error = ValueError;
        fn serialize_element<T: ?Sized + super::Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), ValueError> {
            self.0.push(value.serialize(ValueSerializer)?);
            Ok(())
        }
        fn end(self) -> Result<Value, ValueError> {
            Ok(Value::Seq(self.0))
        }
    }

    impl SerializeTuple for ValueSeq {
        type Ok = Value;
        type Error = ValueError;
        fn serialize_element<T: ?Sized + super::Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), ValueError> {
            self.0.push(value.serialize(ValueSerializer)?);
            Ok(())
        }
        fn end(self) -> Result<Value, ValueError> {
            Ok(Value::Seq(self.0))
        }
    }

    impl SerializeStruct for ValueStruct {
        type Ok = Value;
        type Error = ValueError;
        fn serialize_field<T: ?Sized + super::Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), ValueError> {
            self.0
                .push((key.to_owned(), value.serialize(ValueSerializer)?));
            Ok(())
        }
        fn end(self) -> Result<Value, ValueError> {
            Ok(Value::Map(self.0))
        }
    }

    impl SerializeTupleVariant for ValueTupleVariant {
        type Ok = Value;
        type Error = ValueError;
        fn serialize_field<T: ?Sized + super::Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), ValueError> {
            self.1.push(value.serialize(ValueSerializer)?);
            Ok(())
        }
        fn end(self) -> Result<Value, ValueError> {
            Ok(Value::Map(vec![(self.0.to_owned(), Value::Seq(self.1))]))
        }
    }

    impl SerializeStructVariant for ValueStructVariant {
        type Ok = Value;
        type Error = ValueError;
        fn serialize_field<T: ?Sized + super::Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), ValueError> {
            self.1
                .push((key.to_owned(), value.serialize(ValueSerializer)?));
            Ok(())
        }
        fn end(self) -> Result<Value, ValueError> {
            Ok(Value::Map(vec![(self.0.to_owned(), Value::Map(self.1))]))
        }
    }

    /// Serializes any `T: Serialize` into the [`Value`] tree.
    pub fn to_value<T: ?Sized + super::Serialize>(value: &T) -> Result<Value, ValueError> {
        value.serialize(ValueSerializer)
    }
}

pub mod de {
    use super::Value;
    use std::fmt::Display;

    /// Error raised by a deserializer.
    pub trait Error: Sized + std::error::Error {
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// `T` deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}

    /// The concrete error of the in-tree [`ValueDeserializer`].
    #[derive(Debug, Clone)]
    pub struct ValueError(pub String);

    impl Display for ValueError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
    impl std::error::Error for ValueError {}
    impl Error for ValueError {
        fn custom<T: Display>(msg: T) -> Self {
            ValueError(msg.to_string())
        }
    }

    /// The single concrete [`super::Deserializer`]: yields an owned
    /// [`Value`].
    pub struct ValueDeserializer(pub Value);

    impl<'de> super::Deserializer<'de> for ValueDeserializer {
        type Error = ValueError;
        fn take_value(self) -> Result<Value, ValueError> {
            Ok(self.0)
        }
    }

    /// Deserializes a `T` out of an owned [`Value`] tree.
    pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, ValueError> {
        T::deserialize(ValueDeserializer(value))
    }

    /// Removes `key` from an in-order map representation, if present.
    #[must_use]
    pub fn take_entry(entries: &mut Vec<(String, Value)>, key: &str) -> Option<Value> {
        let idx = entries.iter().position(|(k, _)| k == key)?;
        Some(entries.remove(idx).1)
    }
}

/// A type serializable into the shim's [`Value`] data model.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serde-shaped serializer (one concrete impl:
/// [`ser::ValueSerializer`]).
pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;
    type SerializeSeq: ser::SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTuple: ser::SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStruct: ser::SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTupleVariant: ser::SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStructVariant: ser::SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    // Integer convenience defaults, all funnelled through `serialize_i128`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_i128(i128::from(v))
    }
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_i128(i128::from(v))
    }
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_i128(i128::from(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_i128(i128::from(v))
    }
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_f64(f64::from(v))
    }
}

/// A type deserializable from the shim's [`Value`] data model.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A serde-shaped deserializer, simplified to a value-pull model: the
/// deserializer hands over an owned [`Value`] and impls pattern-match on it.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
    fn take_value(self) -> Result<Value, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives / std types
// ---------------------------------------------------------------------------

macro_rules! impl_ser_int {
    ($($t:ty => $m:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$m(*self as _)
            }
        }
    )*};
}
impl_ser_int!(
    i8 => serialize_i8, i16 => serialize_i16, i32 => serialize_i32,
    i64 => serialize_i64, i128 => serialize_i128,
    u8 => serialize_u8, u16 => serialize_u16, u32 => serialize_u32,
    u64 => serialize_u64,
);

impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = i128::try_from(*self)
            .unwrap_or_else(|_| panic!("u128 value {self} exceeds the shim's i128 data model"));
        serializer.serialize_i128(v)
    }
}
impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}
impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}
impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}
impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f32(*self)
    }
}
impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}
impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}
impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}
impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_none(),
            Some(v) => serializer.serialize_some(v),
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}
impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq as _;
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                use ser::SerializeTuple as _;
                let mut t = serializer.serialize_tuple(0 $(+ { let _ = &self.$n; 1 })+)?;
                $(t.serialize_element(&self.$n)?;)+
                t.end()
            }
        }
    )*};
}
impl_ser_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

// ---------------------------------------------------------------------------
// Deserialize impls for primitives / std types
// ---------------------------------------------------------------------------

fn expect_int<'de, D: Deserializer<'de>>(d: D, what: &str) -> Result<i128, D::Error> {
    match d.take_value()? {
        Value::Int(v) => Ok(v),
        other => Err(de::Error::custom(format!(
            "expected {what}, found {other:?}"
        ))),
    }
}

macro_rules! impl_de_int {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = expect_int(d, stringify!($t))?;
                <$t>::try_from(v)
                    .map_err(|_| de::Error::custom(format!("integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for u128 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = expect_int(d, "u128")?;
        u128::try_from(v)
            .map_err(|_| de::Error::custom(format!("integer {v} out of range for u128")))
    }
}
impl<'de> Deserialize<'de> for i128 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        expect_int(d, "i128")
    }
}
impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(v) => Ok(v),
            other => Err(de::Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Float(v) => Ok(v),
            // JSON renders e.g. 1.0 as "1"; accept integer-shaped floats.
            Value::Int(v) => Ok(v as f64),
            other => Err(de::Error::custom(format!(
                "expected float, found {other:?}"
            ))),
        }
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}
impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!(
                "expected string, found {other:?}"
            ))),
        }
    }
}
impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => de::from_value(v).map(Some).map_err(de::Error::custom),
        }
    }
}
impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        de::from_value(d.take_value()?)
            .map(Box::new)
            .map_err(de::Error::custom)
    }
}
impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| de::from_value(v).map_err(de::Error::custom))
                .collect(),
            other => Err(de::Error::custom(format!(
                "expected sequence, found {other:?}"
            ))),
        }
    }
}

impl<'de, T: de::DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(d)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| de::Error::custom(format!("expected array of {N}, found {len} items")))
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr; $($t:ident),+)),* $(,)?) => {$(
        impl<'de, $($t: de::DeserializeOwned),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_value()? {
                    Value::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($(
                            de::from_value::<$t>(it.next().expect("length checked"))
                                .map_err(de::Error::custom)?,
                        )+))
                    }
                    other => Err(de::Error::custom(format!(
                        "expected sequence of {}, found {other:?}", $len
                    ))),
                }
            }
        }
    )*};
}
impl_de_tuple!((1; T0), (2; T0, T1), (3; T0, T1, T2), (4; T0, T1, T2, T3));
