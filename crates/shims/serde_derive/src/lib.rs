//! Offline shim for `serde_derive`: implements `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` by hand-parsing the item's token stream (no
//! `syn`/`quote` available in this environment).
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * named-field structs, optionally with one or more type parameters
//!   (bounds in the declaration are ignored; the generated impls bound each
//!   parameter by `Serialize` / `Deserialize<'de>`);
//! * enums with unit, newtype (1-tuple), tuple and struct variants.
//!
//! The serialized data model matches serde's externally-tagged default:
//! structs become maps, unit variants become strings, payload variants
//! become single-entry maps.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with `arity` unnamed fields (arity ≥ 1).
    Tuple(usize),
    /// Struct variant with named fields.
    Struct(Vec<String>),
}

struct Item {
    name: String,
    /// Type-parameter identifiers, e.g. `["S"]` for `Matrix<S>`.
    generics: Vec<String>,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;

    // Optional generics: collect top-level type-parameter idents.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            let mut expect_param = true;
            while depth > 0 {
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                        // Lifetime parameter: skip the following ident.
                        i += 1;
                        expect_param = false;
                    }
                    Some(TokenTree::Ident(id)) if depth == 1 && expect_param => {
                        let s = id.to_string();
                        if s != "const" {
                            generics.push(s);
                        }
                        expect_param = false;
                    }
                    None => panic!("unbalanced generics in `{name}`"),
                    _ => {}
                }
                i += 1;
            }
        }
    }

    // Skip forward (past any `where` clause) to the body group.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => i += 1,
            None => panic!("`{name}`: derive shim supports only brace-bodied items"),
        }
    };

    let shape = if kind == "struct" {
        Shape::Struct(parse_named_fields(body.stream()))
    } else {
        Shape::Enum(parse_variants(body.stream()))
    };
    Item {
        name,
        generics,
        shape,
    }
}

/// Parses `field: Type, ...` returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        fields.push(name);
        i += 1;
        // Skip `: Type` until a top-level comma (angle-bracket aware; all
        // other bracket kinds arrive as atomic groups).
        let mut depth = 0isize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to the comma separating variants (covers `= discr`).
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
    }
    variants
}

/// Number of fields in a tuple-variant payload: top-level commas + 1,
/// ignoring a trailing comma. Angle-bracket aware.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    assert!(!tokens.is_empty(), "empty tuple variant unsupported");
    let mut commas = 0usize;
    let mut depth = 0isize;
    let mut last_was_comma = false;
    for t in &tokens {
        last_was_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    commas + 1 - usize::from(last_was_comma)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<S: ::serde::Serialize> ::serde::Serialize for Name<S>` header parts.
fn impl_header(item: &Item, trait_bound: &str, extra_lifetime: bool) -> (String, String) {
    let lt = if extra_lifetime {
        "'de".to_string()
    } else {
        String::new()
    };
    let mut params: Vec<String> = Vec::new();
    if extra_lifetime {
        params.push(lt);
    }
    for g in &item.generics {
        params.push(format!("{g}: {trait_bound}"));
    }
    let impl_generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let ty_generics = if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics.join(", "))
    };
    (impl_generics, ty_generics)
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let (impl_generics, ty_generics) = impl_header(item, "::serde::Serialize", false);
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut b = format!(
                "let mut __st = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {}usize)?;\n",
                fields.len()
            );
            for f in fields {
                b.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;\n"
                ));
            }
            b.push_str("::serde::ser::SerializeStruct::end(__st)\n");
            b
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{vn}\"),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vn}\", __f0),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> =
                            (0..*arity).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!(
                            "{name}::{vn}({}) => {{\nlet mut __tv = ::serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {idx}u32, \"{vn}\", {arity}usize)?;\n",
                            binders.join(", ")
                        );
                        for b in &binders {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __tv, {b})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeTupleVariant::end(__tv)\n}\n");
                        arms.push_str(&arm);
                    }
                    VariantKind::Struct(fields) => {
                        let binders = fields.join(", ");
                        let mut arm = format!(
                            "{name}::{vn} {{ {binders} }} => {{\nlet mut __sv = ::serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vn}\", {}usize)?;\n",
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __sv, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(__sv)\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

/// Expression deserializing `T` from the `Value` expression `$v`, mapping
/// the concrete shim error into `__D::Error`.
fn from_value_expr(v_expr: &str) -> String {
    format!(
        "::serde::de::from_value({v_expr}).map_err(|__e| <__D::Error as ::serde::de::Error>::custom(__e))?"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    // `DeserializeOwned` (not `Deserialize<'de>`): nested fields flow
    // through the owned `from_value`, which needs the for<'de> bound.
    let (impl_generics, ty_generics) = impl_header(item, "::serde::de::DeserializeOwned", true);
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut ctor = String::new();
            for f in fields {
                let take = format!(
                    "::serde::de::take_entry(&mut __m, \"{f}\").ok_or_else(|| <__D::Error as ::serde::de::Error>::custom(\"missing field `{f}` in `{name}`\"))?"
                );
                ctor.push_str(&format!("{f}: {},\n", from_value_expr(&take)));
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::Map(mut __m) => ::core::result::Result::Ok({name} {{\n{ctor}}}),\n\
                 _ => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\"expected a map for struct `{name}`\")),\n\
                 }}"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}({})),\n",
                        from_value_expr("__payload")
                    )),
                    VariantKind::Tuple(arity) => {
                        let mut fields = String::new();
                        for k in 0..*arity {
                            fields.push_str(&format!("{},\n", from_value_expr("__seq.remove(0)")));
                            let _ = k;
                        }
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => match __payload {{\n\
                             ::serde::Value::Seq(mut __seq) if __seq.len() == {arity} => ::core::result::Result::Ok({name}::{vn}(\n{fields})),\n\
                             _ => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\"variant `{name}::{vn}` expects a sequence of {arity}\")),\n\
                             }},\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut ctor = String::new();
                        for f in fields {
                            let take = format!(
                                "::serde::de::take_entry(&mut __m, \"{f}\").ok_or_else(|| <__D::Error as ::serde::de::Error>::custom(\"missing field `{f}` in `{name}::{vn}`\"))?"
                            );
                            ctor.push_str(&format!("{f}: {},\n", from_value_expr(&take)));
                        }
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => match __payload {{\n\
                             ::serde::Value::Map(mut __m) => ::core::result::Result::Ok({name}::{vn} {{\n{ctor}}}),\n\
                             _ => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\"variant `{name}::{vn}` expects a map\")),\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(ref __s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(::std::format!(\"unknown unit variant `{{__other}}` for enum `{name}`\"))),\n\
                 }},\n\
                 ::serde::Value::Map(mut __m) if __m.len() == 1 => {{\n\
                 let (__tag, __payload) = __m.pop().expect(\"len checked\");\n\
                 match __tag.as_str() {{\n\
                 {payload_arms}\
                 __other => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(::std::format!(\"unknown variant `{{__other}}` for enum `{name}`\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\"expected a string or single-entry map for enum `{name}`\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize<'de> for {name}{ty_generics} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
         let __value = ::serde::Deserializer::take_value(__deserializer)?;\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}
