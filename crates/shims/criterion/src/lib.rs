//! Offline shim for `criterion`: the macro/group/bencher surface this
//! workspace's benches use, measuring simple wall-clock statistics
//! (min / mean over a fixed number of samples) instead of criterion's
//! statistical analysis.
//!
//! Environment knobs:
//!
//! * `CRITERION_SAMPLES` — override every group's sample count.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context (prints results as they complete).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: default_samples(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        run_one(name, default_samples(), &mut f);
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// A named benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }
}

/// How `iter_batched` amortizes setup; ignored by the shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("CRITERION_SAMPLES").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, &mut f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.0);
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&full, self.sample_size, &mut g);
    }

    pub fn finish(self) {}
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        times: Vec::with_capacity(samples),
    };
    f(&mut b);
    let times = b.times;
    if times.is_empty() {
        println!("{name:<60} (no measurement)");
        return;
    }
    let min = *times.iter().min().expect("non-empty");
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    println!(
        "{name:<60} min {:>12?}  mean {:>12?}  ({} samples)",
        min,
        mean,
        times.len()
    );
}

/// Measures the closure passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f` once per sample (after one untimed warm-up run).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            self.times.push(t.elapsed());
        }
    }

    /// Times `routine` with untimed per-sample `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.times.push(t.elapsed());
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &v| {
            b.iter(|| v * 2)
        });
        group.finish();
        assert!(runs >= 3, "warm-up plus samples must run the closure");
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
    }
}
