//! Offline shim for `serde_json`: `to_string`, `to_string_pretty` and
//! `from_str` over the `serde` shim's [`Value`] data model, with a small
//! recursive-descent JSON parser.
//!
//! Numbers print via Rust's shortest-round-trip float formatting, so
//! `f64 → JSON → f64` is lossless; integer-shaped floats (e.g. `1.0`)
//! print as `1` and are accepted back by `f64::deserialize`.

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};
use std::fmt::{self, Display, Write as _};

/// Error raised while (de)serializing JSON.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}
impl serde::ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}
impl serde::de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let v = serde::ser::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let v = serde::ser::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    serde::de::from_value(v).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    // Match serde_json's "1.0" rendering for integral floats.
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            } else {
                out.push_str("null"); // serde_json's behaviour for non-finite
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            write_compound(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                write_value(out, &items[i], indent, lvl);
            })
        }
        Value::Map(entries) => {
            write_compound(
                out,
                indent,
                level,
                '{',
                '}',
                entries.len(),
                |out, i, lvl| {
                    write_escaped(out, &entries[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, &entries[i].1, indent, lvl);
                },
            );
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(level + 1) * width {
                out.push(' ');
            }
        }
        write_item(out, i, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at pos-1.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    s.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?,
                    );
                    self.pos = start + width;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid float literal `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid integer literal `{text}`")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-2.5f64).unwrap(), "-2.5");
        assert_eq!(from_str::<f64>("-2.5").unwrap(), -2.5);
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(from_str::<f64>("1").unwrap(), 1.0);
        assert_eq!(to_string("a\"b\\c").unwrap(), r#""a\"b\\c""#);
        assert_eq!(from_str::<String>(r#""a\"b\\c""#).unwrap(), "a\"b\\c");
    }

    #[test]
    fn round_trip_f64_shortest() {
        for v in [0.1, 1.0 / 3.0, 6.02214076e23, -1e-300, f64::MIN_POSITIVE] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), v, "round trip of {v} via {s}");
        }
    }

    #[test]
    fn round_trip_compounds() {
        let v: Vec<Option<i64>> = vec![Some(1), None, Some(-3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,-3]");
        assert_eq!(from_str::<Vec<Option<i64>>>(&s).unwrap(), v);

        let t = (1i64, "two".to_string(), 3.5f64);
        let s = to_string(&t).unwrap();
        assert_eq!(from_str::<(i64, String, f64)>(&s).unwrap(), t);
    }

    #[test]
    fn pretty_print_shape() {
        let v = vec![1i64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
