//! Offline shim for `rand` 0.8: the API subset this workspace uses —
//! `Rng::gen_range` over integer/float ranges, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `seq::SliceRandom::shuffle`.
//!
//! `StdRng` here is xoshiro256++ seeded through splitmix64 — deterministic
//! and high quality, but **a different stream from crates.io rand's
//! ChaCha12** (seeded regression numbers are pinned against this PRNG).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a uniform value of a supported type (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}
impl<R: RngCore> Rng for R {}

/// Types with a canonical "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}
impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}
impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled to a `T`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high-quality mantissa bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.abs_diff(self.start) as u128;
                let draw = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = hi.abs_diff(lo) as u128 + 1;
                let draw = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (see module docs for the
    /// deliberate divergence from crates.io `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers driven by an RNG.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        let vc: Vec<f64> = (0..8).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&g));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u: usize = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn inclusive_int_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<i64> = (0..200).map(|_| rng.gen_range(0i64..=1)).collect();
        assert!(draws.contains(&0) && draws.contains(&1));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "49!-to-1 odds");
    }
}
