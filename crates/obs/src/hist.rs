//! Fixed log2-bucket latency histograms (DESIGN.md §14).
//!
//! Bucket `0` holds exactly the value `0`; bucket `b ≥ 1` holds the
//! values `[2^(b-1), 2^b - 1]`, with the last bucket absorbing
//! everything from `2^62` up to `u64::MAX`. Recording is one array
//! increment — no floats, no allocation — and every count is an exact
//! `u64`. Percentiles are *derived* at read time: walk the cumulative
//! counts to the requested rank and report that bucket's upper bound,
//! a conservative (never understated) latency. Merging is elementwise
//! saturating addition, which keeps merge associative even at the
//! `u64` ceiling.

/// Number of buckets; covers the whole `u64` range in powers of two.
pub const BUCKETS: usize = 64;

/// One latency histogram with exact integer bucket counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// The bucket a value lands in.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Smallest value of bucket `b`.
#[must_use]
pub fn bucket_lower(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Largest value of bucket `b` (the percentile representative).
#[must_use]
pub fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// The empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one latency observation. Saturates at `u64::MAX`
    /// observations per bucket instead of wrapping.
    pub fn record_ns(&mut self, ns: u64) {
        let b = bucket_index(ns);
        self.counts[b] = self.counts[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(ns);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations (nanoseconds).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact count of bucket `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= BUCKETS`.
    #[must_use]
    pub fn bucket_count(&self, b: usize) -> u64 {
        self.counts[b]
    }

    /// Accumulates `other` into `self`, elementwise and saturating.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The latency at quantile `q` ∈ [0, 1]: the upper bound of the
    /// bucket containing the `ceil(q · count)`-th smallest observation
    /// (so the estimate never understates). `0` when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count) without float rounding surprises at the ends.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (b, &n) in self.counts.iter().enumerate() {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// The read-time summary block (`latency` in `stats`).
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            p50_ns: self.percentile(0.50),
            p90_ns: self.percentile(0.90),
            p99_ns: self.percentile(0.99),
        }
    }
}

/// Count plus derived percentiles of one histogram, as surfaced in the
/// `stats` op's `latency` block. The percentiles are wall-clock
/// dependent; golden tests mask exactly the three `p*_ns` scalars.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Exact observation count (deterministic under one worker).
    pub count: u64,
    /// Conservative 50th-percentile latency, nanoseconds.
    pub p50_ns: u64,
    /// Conservative 90th-percentile latency, nanoseconds.
    pub p90_ns: u64,
    /// Conservative 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
}

/// Renders one histogram family (plus derived percentile gauges) as
/// Prometheus text exposition.
///
/// `metric` is the family name (e.g. `fannet_op_latency_ns`); each
/// series pairs a label set (the text inside the braces, e.g.
/// `op="check"`) with its histogram. Cumulative `_bucket` lines stop at
/// the highest non-empty bucket before the mandatory `le="+Inf"`;
/// percentile gauges go under `<metric>_p50`/`_p90`/`_p99` so every
/// family stays single-typed.
#[must_use]
pub fn render_prometheus(metric: &str, series: &[(String, Histogram)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE {metric} histogram");
    for (labels, hist) in series {
        let top = (0..BUCKETS).rev().find(|&b| hist.counts[b] > 0);
        let mut cumulative = 0u64;
        if let Some(top) = top {
            for b in 0..=top {
                cumulative = cumulative.saturating_add(hist.counts[b]);
                let _ = writeln!(
                    out,
                    "{metric}_bucket{{{labels},le=\"{}\"}} {cumulative}",
                    bucket_upper(b)
                );
            }
        }
        let _ = writeln!(
            out,
            "{metric}_bucket{{{labels},le=\"+Inf\"}} {}",
            hist.count
        );
        let _ = writeln!(out, "{metric}_sum{{{labels}}} {}", hist.sum);
        let _ = writeln!(out, "{metric}_count{{{labels}}} {}", hist.count);
    }
    for (suffix, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
        let _ = writeln!(out, "# TYPE {metric}_{suffix} gauge");
        for (labels, hist) in series {
            let _ = writeln!(out, "{metric}_{suffix}{{{labels}}} {}", hist.percentile(q));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn percentiles_walk_cumulative_counts() {
        let mut h = Histogram::new();
        // 90 fast observations (≤ 1023 ns), 10 slow ones (~1 ms bucket).
        for _ in 0..90 {
            h.record_ns(1000);
        }
        for _ in 0..10 {
            h.record_ns(1_000_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.50), 1023);
        assert_eq!(h.percentile(0.90), 1023);
        assert_eq!(h.percentile(0.99), bucket_upper(bucket_index(1_000_000)));
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 1023);
        assert!(s.p99_ns >= 1_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn prometheus_text_has_buckets_sum_count_and_quantiles() {
        let mut h = Histogram::new();
        h.record_ns(3);
        h.record_ns(900);
        let text = render_prometheus("fannet_op_latency_ns", &[("op=\"check\"".to_string(), h)]);
        assert!(
            text.contains("# TYPE fannet_op_latency_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains("fannet_op_latency_ns_bucket{op=\"check\",le=\"3\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("fannet_op_latency_ns_bucket{op=\"check\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("fannet_op_latency_ns_sum{op=\"check\"} 903"),
            "{text}"
        );
        assert!(
            text.contains("fannet_op_latency_ns_count{op=\"check\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("fannet_op_latency_ns_p99{op=\"check\"} 1023"),
            "{text}"
        );
        // Every non-comment line is `name{labels} value` — parseable
        // Prometheus exposition.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name_labels, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(name_labels.contains("{op=\"check\""), "{line}");
            assert!(name_labels.ends_with('}'), "{line}");
            assert!(value.parse::<u64>().is_ok(), "{line}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn every_value_lands_inside_its_bucket(v in 0u64..=u64::MAX) {
            let b = bucket_index(v);
            prop_assert!(bucket_lower(b) <= v);
            prop_assert!(v <= bucket_upper(b));
            // The bounds themselves classify into the same bucket.
            prop_assert_eq!(bucket_index(bucket_lower(b)), b);
            prop_assert_eq!(bucket_index(bucket_upper(b)), b);
        }

        #[test]
        fn single_record_round_trips_through_every_percentile(
            v in 0u64..=u64::MAX,
            q in 0.0f64..=1.0,
        ) {
            let mut h = Histogram::new();
            h.record_ns(v);
            // One observation: every quantile reports its bucket's upper
            // bound, which never understates the recorded value.
            let p = h.percentile(q);
            prop_assert_eq!(p, bucket_upper(bucket_index(v)));
            prop_assert!(p >= v);
        }

        #[test]
        fn merge_is_associative_and_count_exact(
            xs in (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX),
        ) {
            let (x, y, z) = xs;
            let single = |v: u64| {
                let mut h = Histogram::new();
                h.record_ns(v);
                h
            };
            let (a, b, c) = (single(x), single(y), single(z));
            let mut left = a;
            left.merge(&b);
            left.merge(&c);
            let mut right = b;
            right.merge(&c);
            let mut a2 = a;
            a2.merge(&right);
            prop_assert_eq!(left, a2);
            prop_assert_eq!(left.count(), 3);
        }

        #[test]
        fn saturated_counts_never_wrap(v in 0u64..=u64::MAX) {
            let mut h = Histogram::new();
            h.record_ns(v);
            // Force every counter to the ceiling, then keep going: the
            // counts must pin at u64::MAX instead of wrapping.
            let mut full = h;
            for _ in 0..3 {
                let snapshot = full;
                full.merge(&snapshot);
            }
            let mut pinned = full;
            pinned.count = u64::MAX;
            pinned.sum = u64::MAX;
            pinned.counts[bucket_index(v)] = u64::MAX;
            let before = pinned;
            pinned.merge(&before);
            prop_assert_eq!(pinned.count, u64::MAX);
            prop_assert_eq!(pinned.counts[bucket_index(v)], u64::MAX);
            pinned.record_ns(v);
            prop_assert_eq!(pinned.count, u64::MAX);
        }
    }
}
