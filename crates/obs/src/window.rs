//! Windowed rates: a fixed ring of per-second buckets (DESIGN.md §15).
//!
//! Lifetime-cumulative counters (`server.qps`, the latency histograms)
//! answer "what happened since start", never "what is happening now".
//! A [`RateWindow`] closes that gap without allocation: [`WINDOW_SECONDS`]
//! pre-sized buckets, each holding the observation count and a
//! log2-bucket [`Histogram`] for one absolute second of the session's
//! monotonic clock. Recording indexes `second % WINDOW_SECONDS` and
//! lazily resets a bucket the first time a new second lands in its slot
//! (the rotate); reads merge the buckets covering the requested trailing
//! window — merge work proportional to the window, never to the
//! observation count.
//!
//! The caller supplies `now_s`, seconds elapsed on a monotonic clock of
//! its choosing (the serving session uses seconds since
//! `ServerMetrics::started`). Wall clocks must never drive the ring:
//! a backwards step would resurrect expired buckets. Feeding a stale
//! `now_s` (time moving backwards) is tolerated — the observation lands
//! in its old bucket if that second is still resident, and is dropped
//! otherwise — so a racy read of a monotonic clock stays safe.

use crate::hist::Histogram;

/// Ring size in seconds: the 60 s window plus slack so a read at
/// `now_s` never collides with the bucket a concurrent writer is about
/// to recycle.
pub const WINDOW_SECONDS: usize = 64;

/// One second of observations.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// The absolute second this slot currently holds (`u64::MAX` when
    /// the slot was never written).
    second: u64,
    hist: Histogram,
}

impl Default for Bucket {
    fn default() -> Self {
        Bucket {
            second: u64::MAX,
            hist: Histogram::default(),
        }
    }
}

/// A rolling window of per-second observation buckets.
#[derive(Debug, Clone)]
pub struct RateWindow {
    buckets: [Bucket; WINDOW_SECONDS],
}

impl Default for RateWindow {
    fn default() -> Self {
        RateWindow {
            buckets: [Bucket::default(); WINDOW_SECONDS],
        }
    }
}

impl RateWindow {
    /// An empty window.
    #[must_use]
    pub fn new() -> Self {
        RateWindow::default()
    }

    /// Records one observation at monotonic second `now_s`, rotating
    /// the slot if it still holds an older second. Observations for a
    /// second that already left the ring (a stale `now_s`) are dropped.
    pub fn record(&mut self, now_s: u64, value_ns: u64) {
        let slot = &mut self.buckets[(now_s as usize) % WINDOW_SECONDS];
        if slot.second != now_s {
            // A stale second that lost its slot to a newer one: drop.
            if slot.second != u64::MAX && slot.second > now_s {
                return;
            }
            slot.second = now_s;
            slot.hist = Histogram::default();
        }
        slot.hist.record_ns(value_ns);
    }

    /// Observations recorded in the trailing `window_s` seconds
    /// (`now_s - window_s + 1 ..= now_s`, the current partial second
    /// included).
    #[must_use]
    pub fn count_last(&self, now_s: u64, window_s: u64) -> u64 {
        self.fold_last(now_s, window_s, 0u64, |acc, hist| {
            acc.saturating_add(hist.count())
        })
    }

    /// The merge of every bucket in the trailing `window_s` seconds —
    /// the histogram behind windowed percentiles.
    #[must_use]
    pub fn merged_last(&self, now_s: u64, window_s: u64) -> Histogram {
        self.fold_last(now_s, window_s, Histogram::default(), |mut acc, hist| {
            acc.merge(hist);
            acc
        })
    }

    /// Mean observations per second over the trailing `window_s`
    /// seconds. The divisor is the full window, so the rate reads low
    /// during the first `window_s` seconds of a session — a deliberate
    /// "cold start reads quiet" convention.
    #[must_use]
    pub fn rate_last(&self, now_s: u64, window_s: u64) -> f64 {
        if window_s == 0 {
            return 0.0;
        }
        self.count_last(now_s, window_s) as f64 / window_s as f64
    }

    fn fold_last<A>(
        &self,
        now_s: u64,
        window_s: u64,
        init: A,
        f: impl Fn(A, &Histogram) -> A,
    ) -> A {
        let window_s = window_s.min(WINDOW_SECONDS as u64);
        let oldest = now_s.saturating_sub(window_s.saturating_sub(1));
        self.buckets
            .iter()
            .filter(|b| b.second != u64::MAX && oldest <= b.second && b.second <= now_s)
            .fold(init, |acc, b| f(acc, &b.hist))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_cover_exactly_the_trailing_window() {
        let mut w = RateWindow::new();
        for s in 0..20u64 {
            w.record(s, 100);
            w.record(s, 200);
        }
        // At second 19: the last 10 seconds are 10..=19, two each.
        assert_eq!(w.count_last(19, 10), 20);
        assert_eq!(w.count_last(19, 1), 2);
        // The full ring still holds all 20 seconds.
        assert_eq!(w.count_last(19, 60), 40);
        assert!((w.rate_last(19, 10) - 2.0).abs() < 1e-12);
        // A quiet stretch ages everything out of the 10 s window.
        assert_eq!(w.count_last(40, 10), 0);
        assert_eq!(w.rate_last(40, 10), 0.0);
    }

    #[test]
    fn rotation_recycles_slots_after_window_seconds() {
        let mut w = RateWindow::new();
        w.record(3, 7);
        assert_eq!(w.count_last(3, 1), 1);
        // The same slot, one full ring later: the old second must be
        // gone, replaced by the new one.
        let later = 3 + WINDOW_SECONDS as u64;
        w.record(later, 9);
        assert_eq!(w.count_last(later, 1), 1);
        assert_eq!(w.count_last(later, WINDOW_SECONDS as u64), 1);
    }

    #[test]
    fn merged_percentiles_track_only_live_buckets() {
        let mut w = RateWindow::new();
        // A slow second that will expire, then fast traffic.
        w.record(0, 1 << 30);
        for s in 20..30u64 {
            w.record(s, 1000);
        }
        let recent = w.merged_last(29, 10);
        assert_eq!(recent.count(), 10);
        assert!(recent.percentile(0.99) < 10_000);
        // A whole-ring read still sees the slow outlier.
        let all = w.merged_last(29, WINDOW_SECONDS as u64);
        assert_eq!(all.count(), 11);
        assert!(all.percentile(0.99) >= 1 << 30);
    }

    #[test]
    fn stale_seconds_never_clobber_newer_buckets() {
        let mut w = RateWindow::new();
        let newer = 5 + WINDOW_SECONDS as u64;
        w.record(newer, 1);
        // Second 5 maps to the same slot but is older: dropped.
        w.record(5, 2);
        assert_eq!(w.count_last(newer, 1), 1);
        // A stale record whose second is still resident lands normally.
        w.record(newer - 1, 3);
        w.record(newer, 4);
        assert_eq!(w.count_last(newer, 2), 3);
    }

    #[test]
    fn windows_wider_than_the_ring_clamp() {
        let mut w = RateWindow::new();
        w.record(1, 10);
        assert_eq!(w.count_last(1, 10_000), 1);
        assert_eq!(w.rate_last(1, 0), 0.0);
    }
}
