//! Exportable trace timelines in Chrome trace-event (catapult) JSON
//! (DESIGN.md §15).
//!
//! A [`TraceWriter`] streams an array of *complete* (`"ph":"X"`) events
//! to any sink — `serve --trace-out <path>` points it at a file that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly. Each event carries microsecond `ts`/`dur` offsets from the
//! writer's creation instant, so every producer in the process shares
//! one time base and the phases of a single request nest visually.
//!
//! Lane conventions (what the viewer shows as process/thread rows):
//!
//! * `pid 1` — request lifecycle. `tid` is the connection id, so each
//!   client connection gets its own row and the `queue` → `service` →
//!   `sequence` → `write` phases of one request line up end to end.
//! * `pid 2` — engine pipeline spans ([`crate::Span`]). `tid` is a
//!   per-thread lane ([`thread_lane`]) so concurrent workers do not
//!   overlap on one row.
//!
//! The JSON array is comma-managed as events stream out and closed by
//! [`TraceWriter::finish`] (idempotent; also run on drop), so the file
//! is valid JSON the moment the server exits. Writers install globally
//! via [`install_global`]; producers that find no writer pay one atomic
//! load and move on.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::log::{escape_into, FieldValue};

/// One trace-event argument; rendered into the event's `args` object.
/// Reuses the logger's [`FieldValue`] scalars so call sites share the
/// same `("key", value.into())` shape as structured logging.
pub type TraceArg = FieldValue;

/// A viewer row in the trace: Chrome trace viewers group events by
/// `pid`, then draw one horizontal row per `tid` within it (see the
/// module docs for the lane conventions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lane {
    /// Row group (`1` = request lifecycle, `2` = engine spans).
    pub pid: u64,
    /// Row within the group: a connection id (requests) or a worker
    /// thread lane (spans).
    pub tid: u64,
}

impl Lane {
    /// The request-lifecycle row of connection `conn`.
    #[must_use]
    pub fn request(conn: u64) -> Lane {
        Lane { pid: 1, tid: conn }
    }

    /// This thread's engine-span row.
    #[must_use]
    pub fn span() -> Lane {
        Lane {
            pid: 2,
            tid: thread_lane(),
        }
    }
}

struct Inner {
    sink: Box<dyn Write + Send>,
    wrote_event: bool,
    finished: bool,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("wrote_event", &self.wrote_event)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

/// A streaming Chrome trace-event JSON writer.
#[derive(Debug)]
pub struct TraceWriter {
    base: Instant,
    inner: Mutex<Inner>,
}

impl TraceWriter {
    /// Wraps `sink`, writing the opening `[` immediately so even an
    /// eventless trace closes to valid JSON.
    ///
    /// # Errors
    ///
    /// Propagates the header write failure.
    pub fn new(mut sink: Box<dyn Write + Send>) -> io::Result<TraceWriter> {
        sink.write_all(b"[")?;
        Ok(TraceWriter {
            base: Instant::now(),
            inner: Mutex::new(Inner {
                sink,
                wrote_event: false,
                finished: false,
            }),
        })
    }

    /// Creates (truncating) `path` and streams the trace there through
    /// a buffered writer.
    ///
    /// # Errors
    ///
    /// Propagates file creation and header write failures.
    pub fn to_file(path: &Path) -> io::Result<TraceWriter> {
        let file = File::create(path)?;
        TraceWriter::new(Box::new(BufWriter::new(file)))
    }

    /// Microseconds from the writer's time base to `at` (zero if `at`
    /// predates the base — e.g. a request enqueued before `--trace-out`
    /// finished installing).
    #[must_use]
    pub fn offset_us(&self, at: Instant) -> u64 {
        u64::try_from(at.saturating_duration_since(self.base).as_micros()).unwrap_or(u64::MAX)
    }

    /// Appends one complete (`"ph":"X"`) event. Events arriving after
    /// [`finish`](TraceWriter::finish) are dropped silently — shutdown
    /// races a final in-flight span, and losing that one tail event
    /// beats corrupting the file.
    pub fn complete_event(
        &self,
        name: &str,
        cat: &str,
        lane: Lane,
        ts_us: u64,
        dur_us: u64,
        args: &[(&str, TraceArg)],
    ) {
        let mut body = String::with_capacity(128);
        body.push_str("\n{\"name\":\"");
        escape_into(&mut body, name);
        body.push_str("\",\"cat\":\"");
        escape_into(&mut body, cat);
        body.push_str("\",\"ph\":\"X\"");
        use std::fmt::Write as _;
        let _ = write!(
            body,
            ",\"ts\":{ts_us},\"dur\":{dur_us},\"pid\":{pid},\"tid\":{tid}",
            pid = lane.pid,
            tid = lane.tid,
        );
        if !args.is_empty() {
            body.push_str(",\"args\":{");
            for (i, (key, value)) in args.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push('"');
                escape_into(&mut body, key);
                body.push_str("\":");
                match value {
                    FieldValue::Bool(v) => {
                        let _ = write!(body, "{v}");
                    }
                    FieldValue::U64(v) => {
                        let _ = write!(body, "{v}");
                    }
                    FieldValue::I64(v) => {
                        let _ = write!(body, "{v}");
                    }
                    FieldValue::F64(v) => {
                        if v.is_finite() {
                            let _ = write!(body, "{v}");
                        } else {
                            body.push_str("null");
                        }
                    }
                    FieldValue::Str(v) => {
                        body.push('"');
                        escape_into(&mut body, v);
                        body.push('"');
                    }
                }
            }
            body.push('}');
        }
        body.push('}');

        let mut inner = self.inner.lock().expect("trace writer lock poisoned");
        if inner.finished {
            return;
        }
        let comma = inner.wrote_event;
        inner.wrote_event = true;
        if comma {
            let _ = inner.sink.write_all(b",");
        }
        let _ = inner.sink.write_all(body.as_bytes());
    }

    /// Closes the JSON array and flushes. Idempotent; later calls (and
    /// the drop-time call) are no-ops.
    pub fn finish(&self) {
        let mut inner = self.inner.lock().expect("trace writer lock poisoned");
        if inner.finished {
            return;
        }
        inner.finished = true;
        let _ = inner.sink.write_all(b"\n]\n");
        let _ = inner.sink.flush();
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        self.finish();
    }
}

static GLOBAL: OnceLock<Arc<TraceWriter>> = OnceLock::new();

/// Installs the process-global trace writer fed by [`crate::Span`]
/// exits and the serving stack. First caller wins; returns whether this
/// writer was installed.
pub fn install_global(writer: Arc<TraceWriter>) -> bool {
    GLOBAL.set(writer).is_ok()
}

/// The installed global trace writer, if any.
#[must_use]
pub fn global() -> Option<Arc<TraceWriter>> {
    GLOBAL.get().cloned()
}

static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LANE: u64 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

/// This thread's stable trace lane (the `tid` for pipeline-span
/// events). Assigned on first use, in thread-first-emission order.
#[must_use]
pub fn thread_lane() -> u64 {
    LANE.with(|lane| *lane)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A sink that hands every write to a channel so tests can inspect
    /// the byte stream without files.
    struct ChannelSink(mpsc::Sender<Vec<u8>>);

    impl Write for ChannelSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let _ = self.0.send(buf.to_vec());
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn collected(rx: &mpsc::Receiver<Vec<u8>>) -> String {
        let mut bytes = Vec::new();
        while let Ok(chunk) = rx.try_recv() {
            bytes.extend_from_slice(&chunk);
        }
        String::from_utf8(bytes).expect("trace output is UTF-8")
    }

    #[test]
    fn events_stream_as_a_comma_managed_json_array() {
        let (tx, rx) = mpsc::channel();
        let writer = TraceWriter::new(Box::new(ChannelSink(tx))).expect("header");
        writer.complete_event(
            "queue",
            "request",
            Lane::request(3),
            10,
            5,
            &[("op", "check".into()), ("id", 7u64.into())],
        );
        writer.complete_event("service", "request", Lane::request(3), 15, 20, &[]);
        writer.finish();
        writer.finish(); // idempotent
        let text = collected(&rx);
        assert!(text.starts_with('['), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 2);
        assert!(
            text.contains(
                "{\"name\":\"queue\",\"cat\":\"request\",\"ph\":\"X\",\
                 \"ts\":10,\"dur\":5,\"pid\":1,\"tid\":3,\
                 \"args\":{\"op\":\"check\",\"id\":7}}"
            ),
            "{text}"
        );
        // Exactly one comma between the two events, none dangling.
        assert_eq!(text.matches("},\n{").count(), 1, "{text}");
    }

    #[test]
    fn empty_traces_close_to_an_empty_array() {
        let (tx, rx) = mpsc::channel();
        let writer = TraceWriter::new(Box::new(ChannelSink(tx))).expect("header");
        drop(writer); // drop runs finish
        let text = collected(&rx);
        assert_eq!(text, "[\n]\n", "{text}");
    }

    #[test]
    fn events_after_finish_are_dropped() {
        let (tx, rx) = mpsc::channel();
        let writer = TraceWriter::new(Box::new(ChannelSink(tx))).expect("header");
        writer.finish();
        writer.complete_event("late", "request", Lane::request(1), 0, 0, &[]);
        let text = collected(&rx);
        assert!(!text.contains("late"), "{text}");
    }

    #[test]
    fn names_and_args_escape_into_valid_json_strings() {
        let (tx, rx) = mpsc::channel();
        let writer = TraceWriter::new(Box::new(ChannelSink(tx))).expect("header");
        writer.complete_event(
            "odd\"name",
            "c",
            Lane::request(1),
            0,
            1,
            &[("peer", "127.0.0.1:80\n".into())],
        );
        writer.finish();
        let text = collected(&rx);
        assert!(text.contains("odd\\\"name"), "{text}");
        assert!(text.contains("127.0.0.1:80\\n"), "{text}");
    }

    #[test]
    fn offsets_clamp_before_the_base_instant() {
        let (tx, _rx) = mpsc::channel();
        let earlier = Instant::now();
        let writer = TraceWriter::new(Box::new(ChannelSink(tx))).expect("header");
        assert_eq!(writer.offset_us(earlier), 0);
        let later = Instant::now();
        // A later instant offsets forward monotonically.
        assert!(writer.offset_us(later) <= writer.offset_us(Instant::now()));
    }

    #[test]
    fn thread_lanes_are_stable_per_thread_and_distinct_across() {
        let here = thread_lane();
        assert_eq!(here, thread_lane());
        let there = std::thread::spawn(thread_lane).join().expect("join");
        assert_ne!(here, there);
    }
}
