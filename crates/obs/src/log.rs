//! The leveled structured logger: one JSON object per line on stderr.
//!
//! Records are `{"ts":<unix ms>,"level":"warn","target":"...",
//! "msg":"...","fields":{...}}`. Stderr is the log stream by contract —
//! stdout carries protocol responses and the `listening on <addr>`
//! readiness line, which scripts parse (DESIGN.md §13), so nothing
//! structured may ever land there.
//!
//! The JSON is hand-escaped here rather than going through the serde
//! shim: the logger must stay dependency-free so every crate in the
//! workspace (including the shims' own dependents) can use it.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    Trace,
    Debug,
    Info,
    Warn,
    Error,
}

impl Level {
    /// Every variant, least severe first.
    pub const ALL: [Level; 5] = [
        Level::Trace,
        Level::Debug,
        Level::Info,
        Level::Warn,
        Level::Error,
    ];

    /// The wire spelling (`--log-level=<name>`, the `level` field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses the wire spelling, case-insensitively and ignoring
    /// surrounding whitespace.
    ///
    /// # Errors
    ///
    /// Returns a message listing every valid level.
    pub fn parse(text: &str) -> Result<Self, String> {
        let lowered = text.trim().to_ascii_lowercase();
        Level::ALL
            .into_iter()
            .find(|level| level.name() == lowered)
            .ok_or_else(|| {
                let names: Vec<&str> = Level::ALL.iter().map(|l| l.name()).collect();
                format!(
                    "unknown log level `{text}` (expected one of: {})",
                    names.join(", ")
                )
            })
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Trace,
            1 => Level::Debug,
            2 => Level::Info,
            3 => Level::Warn,
            _ => Level::Error,
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        Level::parse(text)
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-wide threshold; records below it are dropped.
static THRESHOLD: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process-wide minimum level (`--log-level`).
pub fn set_level(level: Level) {
    THRESHOLD.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide minimum level.
#[must_use]
pub fn level() -> Level {
    Level::from_u8(THRESHOLD.load(Ordering::Relaxed))
}

/// One structured field value; `From` impls cover the common scalars so
/// call sites read `("key", value.into())`.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Appends `text` JSON-string-escaped (without surrounding quotes).
/// Shared with the trace-event writer, which emits the same hand-built
/// JSON for the same dependency-free reason.
pub(crate) fn escape_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders one record as its JSONL line (no trailing newline).
#[must_use]
pub fn render_record(
    ts_ms: u64,
    level: Level,
    target: &str,
    msg: &str,
    fields: &[(&str, FieldValue)],
) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(out, "{{\"ts\":{ts_ms},\"level\":\"{}\",", level.name());
    out.push_str("\"target\":\"");
    escape_into(&mut out, target);
    out.push_str("\",\"msg\":\"");
    escape_into(&mut out, msg);
    out.push('"');
    if !fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, key);
            out.push_str("\":");
            match value {
                FieldValue::Bool(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) => {
                    if v.is_finite() {
                        let _ = write!(out, "{v}");
                    } else {
                        out.push_str("null");
                    }
                }
                FieldValue::Str(v) => {
                    out.push('"');
                    escape_into(&mut out, v);
                    out.push('"');
                }
            }
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Emits one structured record to stderr if `level` clears the
/// process-wide threshold. `eprintln!` locks stderr per call, so
/// concurrent records never interleave within a line.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    if level < self::level() {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    eprintln!("{}", render_record(ts_ms, level, target, msg, fields));
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Warn, target, msg, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Info, target, msg, fields);
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Error, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_round_trip_and_order() {
        for level in Level::ALL {
            assert_eq!(Level::parse(level.name()), Ok(level));
            assert_eq!(level.to_string(), level.name());
        }
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::parse(" WARN "), Ok(Level::Warn));
        let err = Level::parse("loud").unwrap_err();
        for level in Level::ALL {
            assert!(err.contains(level.name()), "{err}");
        }
    }

    #[test]
    fn records_render_as_one_json_object() {
        let line = render_record(
            1700000000123,
            Level::Warn,
            "fannet_verify::bab",
            "ignoring unparsable FANNET_THREADS",
            &[
                ("value", "ten\"cores".into()),
                ("fallback", 8u64.into()),
                ("strict", false.into()),
            ],
        );
        assert_eq!(
            line,
            "{\"ts\":1700000000123,\"level\":\"warn\",\
             \"target\":\"fannet_verify::bab\",\
             \"msg\":\"ignoring unparsable FANNET_THREADS\",\
             \"fields\":{\"value\":\"ten\\\"cores\",\"fallback\":8,\"strict\":false}}"
        );
    }

    #[test]
    fn records_without_fields_omit_the_fields_key() {
        let line = render_record(7, Level::Info, "t", "m", &[]);
        assert_eq!(
            line,
            "{\"ts\":7,\"level\":\"info\",\"target\":\"t\",\"msg\":\"m\"}"
        );
    }

    #[test]
    fn control_characters_escape() {
        let line = render_record(0, Level::Error, "t", "a\nb\t\u{1}", &[]);
        assert!(line.contains("a\\nb\\t\\u0001"), "{line}");
    }

    #[test]
    fn nonfinite_floats_render_null() {
        let line = render_record(0, Level::Info, "t", "m", &[("qps", f64::NAN.into())]);
        assert!(line.contains("\"qps\":null"), "{line}");
    }
}
