//! # fannet-obs
//!
//! The structured observability layer of the FANNet stack
//! (DESIGN.md §14). Hand-rolled like `fannet-server` — this workspace
//! builds offline, so no `tracing`, no `tokio`, no dependencies at all.
//!
//! Three pieces, each usable alone:
//!
//! * [`mod@log`] — a leveled structured logger emitting one JSON object per
//!   line to stderr (`{ts, level, target, msg, fields}`), replacing the
//!   raw `eprintln!` warnings scattered through the stack. Stdout stays
//!   reserved for protocol responses and readiness lines.
//! * [`span`] — a lock-cheap span API: [`Span::enter`] pushes onto a
//!   thread-local stack and clocks the section with a monotonic
//!   [`std::time::Instant`]; on drop the elapsed nanoseconds land in a
//!   shared [`Registry`] histogram keyed by operation name.
//! * [`hist`] — fixed log2-bucket latency histograms with exact `u64`
//!   bucket counts. Percentiles (p50/p90/p99) are derived at read time
//!   from the bucket upper bounds, never stored, so recording stays one
//!   increment. [`render_prometheus`] turns a set of histograms into
//!   Prometheus text exposition for the `metrics` JSONL op.
//! * [`window`] — rolling request-rate and latency windows: a fixed
//!   ring of per-second [`Histogram`] buckets (no allocation, monotonic
//!   seconds as the index) behind the `qps_10s`/`qps_60s` and windowed
//!   p50/p99 fields of the `stats` op (DESIGN.md §15).
//! * [`traceout`] — a streaming Chrome trace-event (catapult) JSON
//!   writer for `--trace-out`: request phases and pipeline spans as
//!   complete events on per-connection and per-thread lanes, loadable
//!   in Perfetto (DESIGN.md §15).
//!
//! Everything is deterministic except the clocks themselves: bucket
//! counts are exact integers, merges are associative (saturating
//! addition), and the logger writes complete lines atomically.

pub mod hist;
pub mod log;
pub mod span;
pub mod traceout;
pub mod window;

pub use hist::{render_prometheus, Histogram, HistogramSummary, BUCKETS};
pub use log::{log, set_level, FieldValue, Level};
pub use span::{global_registry, Registry, Span};
pub use traceout::{install_global, thread_lane, Lane, TraceWriter};
pub use window::{RateWindow, WINDOW_SECONDS};
