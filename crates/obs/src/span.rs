//! Spans: monotonic-clocked sections aggregated into a shared registry
//! (DESIGN.md §14).
//!
//! [`Span::enter`] pushes the operation name onto a thread-local stack
//! and starts an [`Instant`]; dropping the span pops the stack and
//! records the elapsed nanoseconds into the process-global [`Registry`]
//! histogram for that operation. The hot path is two thread-local
//! pushes and one `Instant::now` — the only lock is the registry map
//! on span *exit*, taken once per completed section, never per event.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::hist::{Histogram, HistogramSummary};

/// A named set of latency histograms, safe to share across threads.
///
/// Keys are `&'static str` operation names so recording never
/// allocates; the map is a `BTreeMap` so snapshots iterate in a
/// deterministic order.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl Registry {
    /// An empty registry (sessions own private ones; spans share the
    /// process-global one).
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Records one observation under `name`.
    pub fn record(&self, name: &'static str, ns: u64) {
        self.inner
            .lock()
            .expect("registry lock poisoned")
            .entry(name)
            .or_default()
            .record_ns(ns);
    }

    /// A consistent copy of every histogram, in name order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(&'static str, Histogram)> {
        self.inner
            .lock()
            .expect("registry lock poisoned")
            .iter()
            .map(|(&name, hist)| (name, *hist))
            .collect()
    }

    /// Read-time summaries of every histogram, in name order.
    #[must_use]
    pub fn summaries(&self) -> Vec<(&'static str, HistogramSummary)> {
        self.snapshot()
            .into_iter()
            .map(|(name, hist)| (name, hist.summary()))
            .collect()
    }
}

/// The process-global registry fed by [`Span`] exits.
#[must_use]
pub fn global_registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// One entered section; dropping it records the elapsed time.
#[derive(Debug)]
pub struct Span {
    op: &'static str,
    start: Instant,
}

impl Span {
    /// Enters a section named `op`.
    #[must_use]
    pub fn enter(op: &'static str) -> Span {
        SPAN_STACK.with(|stack| stack.borrow_mut().push(op));
        Span {
            op,
            start: Instant::now(),
        }
    }

    /// The innermost active span name on this thread, if any.
    #[must_use]
    pub fn current() -> Option<&'static str> {
        SPAN_STACK.with(|stack| stack.borrow().last().copied())
    }

    /// Nesting depth of active spans on this thread.
    #[must_use]
    pub fn depth() -> usize {
        SPAN_STACK.with(|stack| stack.borrow().len())
    }

    /// Elapsed nanoseconds so far (saturating at `u64::MAX`).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = self.elapsed_ns();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop this span; out-of-order drops (possible if a span is
            // moved across an await-free scope boundary) remove the
            // matching entry instead.
            if let Some(pos) = stack.iter().rposition(|&op| op == self.op) {
                stack.remove(pos);
            }
        });
        global_registry().record(self.op, ns);
        if let Some(trace) = crate::traceout::global() {
            trace.complete_event(
                self.op,
                "span",
                crate::traceout::Lane::span(),
                trace.offset_us(self.start),
                ns / 1_000,
                &[],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_into_the_global_registry() {
        let before = global_registry()
            .snapshot()
            .into_iter()
            .find(|(name, _)| *name == "obs_test_outer")
            .map(|(_, h)| h.count())
            .unwrap_or(0);
        {
            let _outer = Span::enter("obs_test_outer");
            assert_eq!(Span::current(), Some("obs_test_outer"));
            {
                let _inner = Span::enter("obs_test_inner");
                assert_eq!(Span::current(), Some("obs_test_inner"));
                assert_eq!(Span::depth(), 2);
            }
            assert_eq!(Span::current(), Some("obs_test_outer"));
        }
        assert_eq!(Span::depth(), 0);
        let after = global_registry()
            .snapshot()
            .into_iter()
            .find(|(name, _)| *name == "obs_test_outer")
            .map(|(_, h)| h.count())
            .unwrap_or(0);
        assert_eq!(after, before + 1);
    }

    #[test]
    fn registry_snapshots_are_name_ordered() {
        let registry = Registry::new();
        registry.record("zeta", 10);
        registry.record("alpha", 20);
        registry.record("alpha", 30);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.iter().map(|(name, _)| *name).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(snapshot[0].1.count(), 2);
        let summaries = registry.summaries();
        assert_eq!(summaries[0].0, "alpha");
        assert_eq!(summaries[0].1.count, 2);
    }
}
