//! Labelled datasets: samples, labels and feature projections.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::stats;

/// A labelled classification dataset: `samples[i]` is a feature vector with
/// label `labels[i] < classes`.
///
/// # Examples
///
/// ```
/// use fannet_data::Dataset;
/// let ds = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![0, 1], 2)?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.features(), 2);
/// assert_eq!(ds.class_counts(), vec![1, 1]);
/// # Ok::<(), fannet_data::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<Vec<f64>>,
    labels: Vec<usize>,
    classes: usize,
}

/// Error raised when constructing an inconsistent [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetError {
    message: String,
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid dataset: {}", self.message)
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Creates a dataset after validating shapes and label ranges.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] if samples/labels lengths differ, feature
    /// vectors are ragged or empty, or a label is `>= classes`.
    pub fn new(
        samples: Vec<Vec<f64>>,
        labels: Vec<usize>,
        classes: usize,
    ) -> Result<Self, DatasetError> {
        if samples.len() != labels.len() {
            return Err(DatasetError {
                message: format!("{} samples but {} labels", samples.len(), labels.len()),
            });
        }
        if samples.is_empty() {
            return Err(DatasetError {
                message: "dataset must be non-empty".into(),
            });
        }
        let width = samples[0].len();
        if width == 0 {
            return Err(DatasetError {
                message: "samples must have ≥1 feature".into(),
            });
        }
        if let Some((i, s)) = samples.iter().enumerate().find(|(_, s)| s.len() != width) {
            return Err(DatasetError {
                message: format!("sample {i} has {} features, expected {width}", s.len()),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&y| y >= classes) {
            return Err(DatasetError {
                message: format!("label {bad} out of range for {classes} classes"),
            });
        }
        Ok(Dataset {
            samples,
            labels,
            classes,
        })
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the dataset holds no samples (never true for a validated
    /// instance; present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of features per sample.
    #[must_use]
    pub fn features(&self) -> usize {
        self.samples[0].len()
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The feature vectors.
    #[must_use]
    pub fn samples(&self) -> &[Vec<f64>] {
        &self.samples
    }

    /// The labels, parallel to [`Dataset::samples`].
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Iterates over `(sample, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], usize)> {
        self.samples
            .iter()
            .map(Vec::as_slice)
            .zip(self.labels.iter().copied())
    }

    /// Column-major view: `columns()[j][i]` is feature `j` of sample `i`.
    /// (Feature selection operates on columns.)
    #[must_use]
    pub fn columns(&self) -> Vec<Vec<f64>> {
        let mut cols = vec![Vec::with_capacity(self.len()); self.features()];
        for sample in &self.samples {
            for (j, &v) in sample.iter().enumerate() {
                cols[j].push(v);
            }
        }
        cols
    }

    /// One feature column.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.features()`.
    #[must_use]
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.features(), "feature {j} out of range");
        self.samples.iter().map(|s| s[j]).collect()
    }

    /// Projects every sample onto the given feature indices (in the given
    /// order) — the "keep only the mRMR-selected genes" step.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `features` is empty.
    #[must_use]
    pub fn select_features(&self, features: &[usize]) -> Dataset {
        assert!(!features.is_empty(), "must keep at least one feature");
        assert!(
            features.iter().all(|&j| j < self.features()),
            "feature index out of range"
        );
        Dataset {
            samples: self
                .samples
                .iter()
                .map(|s| features.iter().map(|&j| s[j]).collect())
                .collect(),
            labels: self.labels.clone(),
            classes: self.classes,
        }
    }

    /// Per-class sample counts.
    #[must_use]
    pub fn class_counts(&self) -> Vec<usize> {
        stats::class_counts(&self.labels, self.classes)
    }

    /// Fraction of samples with the given label.
    #[must_use]
    pub fn label_fraction(&self, label: usize) -> f64 {
        stats::label_fraction(&self.labels, label)
    }

    /// The subset at the given sample indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `indices` is empty.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        assert!(!indices.is_empty(), "subset must be non-empty");
        Dataset {
            samples: indices.iter().map(|&i| self.samples[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            classes: self.classes,
        }
    }

    /// A class-balanced subsample: every class is randomly downsampled to
    /// the size of the rarest class. Used by the training-bias ablation
    /// (A1): retraining on a balanced set should erase the bias signal.
    ///
    /// # Panics
    ///
    /// Panics if any class has zero samples.
    #[must_use]
    pub fn balanced_subsample<R: Rng>(&self, rng: &mut R) -> Dataset {
        let counts = self.class_counts();
        let target = *counts.iter().min().expect("≥1 class");
        assert!(
            target > 0,
            "every class needs at least one sample to balance"
        );
        let mut keep: Vec<usize> = Vec::with_capacity(target * self.classes);
        for class in 0..self.classes {
            let mut members: Vec<usize> = (0..self.len())
                .filter(|&i| self.labels[i] == class)
                .collect();
            members.shuffle(rng);
            keep.extend(members.into_iter().take(target));
        }
        keep.sort_unstable();
        self.subset(&keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ds() -> Dataset {
        Dataset::new(
            vec![
                vec![1.0, 10.0, 100.0],
                vec![2.0, 20.0, 200.0],
                vec![3.0, 30.0, 300.0],
                vec![4.0, 40.0, 400.0],
            ],
            vec![0, 1, 1, 1],
            2,
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let d = ds();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.features(), 3);
        assert_eq!(d.classes(), 2);
        assert_eq!(d.class_counts(), vec![1, 3]);
        assert!((d.label_fraction(1) - 0.75).abs() < 1e-12);
        assert_eq!(d.iter().count(), 4);
    }

    #[test]
    fn validation_errors() {
        assert!(Dataset::new(vec![vec![1.0]], vec![0, 1], 2).is_err());
        assert!(Dataset::new(vec![], vec![], 2).is_err());
        assert!(Dataset::new(vec![vec![]], vec![0], 2).is_err());
        assert!(Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 0], 2).is_err());
        let err = Dataset::new(vec![vec![1.0]], vec![5], 2).unwrap_err();
        assert!(err.to_string().contains("label 5"));
    }

    #[test]
    fn columns_and_column() {
        let d = ds();
        let cols = d.columns();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[1], vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(d.column(2), vec![100.0, 200.0, 300.0, 400.0]);
    }

    #[test]
    fn feature_selection_projects_and_orders() {
        let d = ds();
        let p = d.select_features(&[2, 0]);
        assert_eq!(p.features(), 2);
        assert_eq!(p.samples()[0], vec![100.0, 1.0]);
        assert_eq!(p.labels(), d.labels());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_features_bounds_checked() {
        let _ = ds().select_features(&[7]);
    }

    #[test]
    fn subset_picks_rows() {
        let d = ds();
        let s = d.subset(&[0, 2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[0, 1]);
        assert_eq!(s.samples()[1], vec![3.0, 30.0, 300.0]);
    }

    #[test]
    fn balanced_subsample_equalizes_classes() {
        let d = ds();
        let b = d.balanced_subsample(&mut StdRng::seed_from_u64(1));
        assert_eq!(b.class_counts(), vec![1, 1]);
        // Deterministic for a fixed seed.
        let b2 = d.balanced_subsample(&mut StdRng::seed_from_u64(1));
        assert_eq!(b, b2);
    }

    #[test]
    fn serde_round_trip() {
        let d = ds();
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
