//! Feature normalization as an explicit affine map.
//!
//! Training is numerically healthier on standardized inputs, but FANNet's
//! noise model is *relative to the raw integer gene expressions*
//! (`x' = x ± x·Δ/100`). The resolution: fit an [`Affine`] on the training
//! columns, train on normalized data, then **fold the affine map into the
//! first network layer** (`fannet_nn::fold`), producing a network that
//! consumes raw integer inputs with identical semantics. The verifier then
//! applies noise directly to the raw inputs, exactly as the paper does.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::stats::{mean, min_max, std_dev};

/// A per-feature affine normalization `x_norm[j] = (x[j] − offset[j]) · scale[j]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Affine {
    scale: Vec<f64>,
    offset: Vec<f64>,
}

impl Affine {
    /// Creates an affine map from explicit vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any scale is zero/non-finite.
    #[must_use]
    pub fn new(scale: Vec<f64>, offset: Vec<f64>) -> Self {
        assert_eq!(scale.len(), offset.len(), "scale and offset must pair up");
        assert!(
            scale.iter().all(|s| s.is_finite() && *s != 0.0),
            "scales must be finite and non-zero"
        );
        Affine { scale, offset }
    }

    /// The identity map on `n` features.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Affine {
            scale: vec![1.0; n],
            offset: vec![0.0; n],
        }
    }

    /// Fits a z-score map (`offset = μ`, `scale = 1/σ`) on the dataset's
    /// training columns. Constant features get scale 1 to stay invertible.
    #[must_use]
    pub fn fit_zscore(data: &Dataset) -> Self {
        let mut scale = Vec::with_capacity(data.features());
        let mut offset = Vec::with_capacity(data.features());
        for j in 0..data.features() {
            let col = data.column(j);
            let sd = std_dev(&col);
            offset.push(mean(&col));
            scale.push(if sd > 0.0 { 1.0 / sd } else { 1.0 });
        }
        Affine { scale, offset }
    }

    /// Fits a scale-only map (`offset = 0`, `scale = 1/σ`).
    ///
    /// Unlike z-scoring, this keeps the origin fixed: when the map is later
    /// folded into the first layer, no large mean-compensation bias is
    /// introduced, so the network stays approximately scale-equivariant —
    /// the property that lets far-from-boundary inputs survive even ±50 %
    /// relative noise, as the paper's raw-integer-input network does.
    #[must_use]
    pub fn fit_scale_only(data: &Dataset) -> Self {
        let mut scale = Vec::with_capacity(data.features());
        for j in 0..data.features() {
            let col = data.column(j);
            let sd = std_dev(&col);
            scale.push(if sd > 0.0 { 1.0 / sd } else { 1.0 });
        }
        Affine {
            offset: vec![0.0; data.features()],
            scale,
        }
    }

    /// Fits a max-abs map (`offset = 0`, `scale = 1/max|x|`): features land
    /// in `[-1, 1]` with the origin fixed.
    ///
    /// Combines the training stability of bounded features with the
    /// scale-equivariance of [`Affine::fit_scale_only`] (no mean
    /// compensation folded into the first-layer bias).
    #[must_use]
    pub fn fit_max_abs(data: &Dataset) -> Self {
        let mut scale = Vec::with_capacity(data.features());
        for j in 0..data.features() {
            let col = data.column(j);
            let max_abs = col.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            scale.push(if max_abs > 0.0 { 1.0 / max_abs } else { 1.0 });
        }
        Affine {
            offset: vec![0.0; data.features()],
            scale,
        }
    }

    /// Fits a min-max map onto `[0, 1]`. Constant features get scale 1.
    #[must_use]
    pub fn fit_minmax(data: &Dataset) -> Self {
        let mut scale = Vec::with_capacity(data.features());
        let mut offset = Vec::with_capacity(data.features());
        for j in 0..data.features() {
            let col = data.column(j);
            let (lo, hi) = min_max(&col).expect("datasets are non-empty");
            offset.push(lo);
            scale.push(if hi > lo { 1.0 / (hi - lo) } else { 1.0 });
        }
        Affine { scale, offset }
    }

    /// Number of features the map covers.
    #[must_use]
    pub fn features(&self) -> usize {
        self.scale.len()
    }

    /// Per-feature multiplicative factors.
    #[must_use]
    pub fn scale(&self) -> &[f64] {
        &self.scale
    }

    /// Per-feature offsets subtracted before scaling.
    #[must_use]
    pub fn offset(&self) -> &[f64] {
        &self.offset
    }

    /// Applies the map to one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.features()`.
    #[must_use]
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.features(), "sample width mismatch");
        x.iter()
            .zip(self.scale.iter().zip(&self.offset))
            .map(|(&v, (&s, &o))| (v - o) * s)
            .collect()
    }

    /// Inverse map `x = x_norm / scale + offset`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.features()`.
    #[must_use]
    pub fn invert(&self, x_norm: &[f64]) -> Vec<f64> {
        assert_eq!(x_norm.len(), self.features(), "sample width mismatch");
        x_norm
            .iter()
            .zip(self.scale.iter().zip(&self.offset))
            .map(|(&v, (&s, &o))| v / s + o)
            .collect()
    }

    /// Applies the map to a whole dataset, preserving labels.
    #[must_use]
    pub fn apply_dataset(&self, data: &Dataset) -> Dataset {
        let samples = data.samples().iter().map(|s| self.apply(s)).collect();
        Dataset::new(samples, data.labels().to_vec(), data.classes())
            .expect("normalization preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::new(
            vec![vec![0.0, 100.0], vec![10.0, 200.0], vec![20.0, 300.0]],
            vec![0, 1, 0],
            2,
        )
        .unwrap()
    }

    #[test]
    fn zscore_centers_and_scales() {
        let d = ds();
        let z = Affine::fit_zscore(&d);
        let nd = z.apply_dataset(&d);
        for j in 0..nd.features() {
            let col = nd.column(j);
            assert!(mean(&col).abs() < 1e-12);
            assert!((std_dev(&col) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn minmax_hits_unit_interval() {
        let d = ds();
        let m = Affine::fit_minmax(&d);
        let nd = m.apply_dataset(&d);
        for j in 0..nd.features() {
            let (lo, hi) = min_max(&nd.column(j)).unwrap();
            assert_eq!(lo, 0.0);
            assert_eq!(hi, 1.0);
        }
    }

    #[test]
    fn apply_invert_round_trip() {
        let d = ds();
        let z = Affine::fit_zscore(&d);
        let x = vec![7.0, 142.0];
        let back = z.invert(&z.apply(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_feature_stays_finite() {
        let d = Dataset::new(vec![vec![5.0], vec![5.0]], vec![0, 1], 2).unwrap();
        let z = Affine::fit_zscore(&d);
        assert_eq!(z.scale(), &[1.0]);
        let m = Affine::fit_minmax(&d);
        let out = m.apply(&[5.0]);
        assert!(out[0].is_finite());
    }

    #[test]
    fn identity_is_noop() {
        let id = Affine::identity(2);
        assert_eq!(id.apply(&[3.0, 4.0]), vec![3.0, 4.0]);
        assert_eq!(id.features(), 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn apply_checks_width() {
        let _ = Affine::identity(2).apply(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_scale_rejected() {
        let _ = Affine::new(vec![0.0], vec![0.0]);
    }

    #[test]
    fn serde_round_trip() {
        let z = Affine::fit_zscore(&ds());
        let json = serde_json::to_string(&z).unwrap();
        let back: Affine = serde_json::from_str(&json).unwrap();
        assert_eq!(back, z);
    }
}
