//! Discrete entropy and mutual information.
//!
//! These are the primitives behind mRMR feature selection: the *relevance*
//! of a gene is its mutual information with the class label, and the
//! *redundancy* between two genes is their mutual information with each
//! other, both computed over discretized expression levels.
//!
//! All logarithms are natural (nats); mRMR rankings are invariant to the
//! base.

/// Shannon entropy (in nats) of a discrete sample given as level indices.
///
/// # Examples
///
/// ```
/// use fannet_data::mutual_info::entropy;
/// assert_eq!(entropy(&[0, 0, 0]), 0.0);
/// let h = entropy(&[0, 1]);
/// assert!((h - (2.0f64).ln()).abs() < 1e-12); // one fair bit
/// ```
#[must_use]
pub fn entropy(xs: &[usize]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let levels = xs.iter().copied().max().unwrap_or(0) + 1;
    let mut counts = vec![0usize; levels];
    for &x in xs {
        counts[x] += 1;
    }
    let n = xs.len() as f64;
    counts
        .into_iter()
        .filter(|&c| c > 0)
        .map(|c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Joint entropy `H(X, Y)` of two paired discrete samples.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn joint_entropy(xs: &[usize], ys: &[usize]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "joint entropy inputs must pair up");
    if xs.is_empty() {
        return 0.0;
    }
    let y_levels = ys.iter().copied().max().unwrap_or(0) + 1;
    let x_levels = xs.iter().copied().max().unwrap_or(0) + 1;
    let mut counts = vec![0usize; x_levels * y_levels];
    for (&x, &y) in xs.iter().zip(ys) {
        counts[x * y_levels + y] += 1;
    }
    let n = xs.len() as f64;
    counts
        .into_iter()
        .filter(|&c| c > 0)
        .map(|c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Mutual information `I(X; Y) = H(X) + H(Y) − H(X, Y)`, clamped at zero to
/// absorb floating-point residue.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use fannet_data::mutual_info::mutual_information;
/// // Identical variables share all their entropy.
/// let x = [0, 1, 0, 1];
/// let i = mutual_information(&x, &x);
/// assert!((i - (2.0f64).ln()).abs() < 1e-12);
/// // Independent variables share none.
/// let y = [0, 0, 1, 1];
/// assert!(mutual_information(&x, &y).abs() < 1e-12);
/// ```
#[must_use]
pub fn mutual_information(xs: &[usize], ys: &[usize]) -> f64 {
    (entropy(xs) + entropy(ys) - joint_entropy(xs, ys)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_uniform_and_degenerate() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[3, 3, 3]), 0.0);
        let h4 = entropy(&[0, 1, 2, 3]);
        assert!((h4 - (4.0f64).ln()).abs() < 1e-12);
        // Skewed distribution has lower entropy than uniform.
        assert!(entropy(&[0, 0, 0, 1]) < entropy(&[0, 0, 1, 1]));
    }

    #[test]
    fn joint_entropy_bounds() {
        let x = [0, 0, 1, 1];
        let y = [0, 1, 0, 1];
        let hx = entropy(&x);
        let hy = entropy(&y);
        let hxy = joint_entropy(&x, &y);
        // max(H(X), H(Y)) ≤ H(X,Y) ≤ H(X) + H(Y)
        assert!(hxy >= hx.max(hy) - 1e-12);
        assert!(hxy <= hx + hy + 1e-12);
        // Independence: equality with the sum.
        assert!((hxy - (hx + hy)).abs() < 1e-12);
    }

    #[test]
    fn mi_symmetry_and_self() {
        let x = [0, 1, 2, 0, 1, 2, 0, 1];
        let y = [1, 1, 0, 0, 1, 0, 1, 1];
        let ixy = mutual_information(&x, &y);
        let iyx = mutual_information(&y, &x);
        assert!((ixy - iyx).abs() < 1e-12);
        assert!((mutual_information(&x, &x) - entropy(&x)).abs() < 1e-12);
        assert!(ixy >= 0.0);
    }

    #[test]
    fn mi_detects_deterministic_relation() {
        let x = [0, 1, 2, 3, 0, 1, 2, 3];
        let y: Vec<usize> = x.iter().map(|&v| v % 2).collect();
        let i = mutual_information(&x, &y);
        assert!((i - entropy(&y)).abs() < 1e-12, "y is a function of x");
    }

    #[test]
    fn mi_data_processing_inequality_flavour() {
        // Adding noise to a copy reduces MI.
        let x = [0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        let mut noisy = x;
        noisy[0] = 1 - noisy[0];
        noisy[5] = 1 - noisy[5];
        assert!(mutual_information(&x, &noisy) < mutual_information(&x, &x));
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn joint_length_mismatch_panics() {
        let _ = joint_entropy(&[0], &[0, 1]);
    }
}
