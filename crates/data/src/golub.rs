//! Synthetic Golub-leukemia dataset generator.
//!
//! The paper's case study uses the classic Golub et al. ALL/AML microarray
//! dataset: 7129 integer gene-expression attributes, 38 training samples and
//! 34 testing samples, with ≈70 % of the *training* samples labelled ALL —
//! the imbalance whose consequences FANNet's training-bias analysis
//! exposes. The original CSV is a web download; this environment is
//! offline, so [`generate`] synthesizes a dataset with the same published
//! shape (see DESIGN.md §2 for the substitution argument):
//!
//! * 7129 genes, integer expression levels in the Affymetrix-like range;
//! * exact split sizes 38/34 with the published per-class counts
//!   (train 11 AML + 27 ALL ≈ 71 % ALL; test 14 AML + 20 ALL);
//! * a small set of **informative genes** whose class-conditional means
//!   differ (split between up-in-ALL and up-in-AML directions, so input
//!   nodes acquire asymmetric noise sensitivities);
//! * **redundant genes** that are noisy affine copies of informative ones
//!   (so mRMR's redundancy term has real work to do);
//! * background genes with class-independent distributions;
//! * a configurable number of **boundary test samples** drawn slightly on
//!   the wrong side of the class boundary (reproducing the paper's
//!   imperfect 94.12 % test accuracy) and **near-boundary test samples**
//!   on the correct side (giving the noise-tolerance and boundary analyses
//!   their non-trivial structure).
//!
//! Label convention (paper §V-C.3): `L0` = AML (minority), `L1` = ALL
//! (majority).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Label index for AML (the paper's minority class `L0`).
pub const L0_AML: usize = 0;
/// Label index for ALL (the paper's majority class `L1`).
pub const L1_ALL: usize = 1;

/// Configuration for the synthetic Golub generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GolubConfig {
    /// Total number of gene attributes (paper: 7129).
    pub genes: usize,
    /// Training samples per class, `[AML, ALL]` (published split: 11/27).
    pub train_per_class: [usize; 2],
    /// Test samples per class, `[AML, ALL]` (published split: 14/20).
    pub test_per_class: [usize; 2],
    /// Number of genuinely class-informative genes.
    pub informative: usize,
    /// Noisy affine copies per informative gene.
    pub redundant_per_informative: usize,
    /// Class-mean separation in units of the gene's standard deviation.
    pub effect_size: f64,
    /// Test samples drawn slightly on the *wrong* side of the boundary —
    /// the paper's two zero-noise test errors (32/34 = 94.12 %).
    pub boundary_test_samples: usize,
    /// Mix for boundary samples: 1 = exactly on the class midpoint,
    /// values > 1 overshoot onto the wrong side.
    pub boundary_mix: f64,
    /// Test samples near, but on the correct side of, the boundary — these
    /// set the network's measurable noise tolerance.
    pub near_test_samples: usize,
    /// Mix for near samples (0 = at the class mean, 1 = on the midpoint).
    pub near_mix: f64,
    /// RNG seed; the whole dataset is a pure function of this config.
    pub seed: u64,
}

impl GolubConfig {
    /// The published dataset shape with moderate signal strength.
    #[must_use]
    pub fn paper() -> Self {
        GolubConfig {
            genes: 7129,
            train_per_class: [11, 27],
            test_per_class: [14, 20],
            informative: 30,
            redundant_per_informative: 3,
            effect_size: 4.5,
            boundary_test_samples: 2,
            boundary_mix: 1.6,
            near_test_samples: 4,
            // Calibrated against the in-repo PRNG (crates/shims/rand) so the
            // trained case study reproduces the paper's ±11 % tolerance.
            near_mix: 0.30,
            seed: 0x601B,
        }
    }

    /// A reduced-size configuration for fast unit tests (500 genes, same
    /// split sizes).
    #[must_use]
    pub fn small() -> Self {
        GolubConfig {
            genes: 500,
            informative: 10,
            ..Self::paper()
        }
    }

    fn validate(&self) {
        assert!(
            self.genes >= self.informative * (1 + self.redundant_per_informative),
            "genes ({}) must fit {} informative + {} redundant",
            self.genes,
            self.informative,
            self.informative * self.redundant_per_informative
        );
        assert!(self.informative > 0, "need at least one informative gene");
        assert!(self.effect_size > 0.0, "effect size must be positive");
        assert!(
            (0.0..=2.0).contains(&self.boundary_mix) && (0.0..=1.0).contains(&self.near_mix),
            "boundary_mix must be in [0,2], near_mix in [0,1]"
        );
        assert!(
            self.boundary_test_samples + self.near_test_samples
                <= self.test_per_class[0] + self.test_per_class[1],
            "more special samples than test samples"
        );
    }
}

/// The generated dataset plus ground-truth metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct GolubLeukemia {
    /// Training split (38 samples under [`GolubConfig::paper`]).
    pub train: Dataset,
    /// Testing split (34 samples under [`GolubConfig::paper`]).
    pub test: Dataset,
    /// Ground-truth indices of the informative genes (useful for checking
    /// what mRMR recovers).
    pub informative_genes: Vec<usize>,
    /// The configuration that produced this dataset.
    pub config: GolubConfig,
}

/// Per-gene generation plan.
#[derive(Debug, Clone, Copy)]
enum GenePlan {
    /// Same distribution in both classes.
    Background { mean: f64, sd: f64 },
    /// Class-dependent mean: `mean ± direction·shift/2`.
    Informative {
        mean: f64,
        sd: f64,
        shift: f64,
        direction: f64,
    },
    /// Affine copy of another gene plus noise.
    Redundant {
        source: usize,
        a: f64,
        b: f64,
        sd: f64,
    },
}

/// Samples a normal variate via Box–Muller (rand 0.8 has no normal
/// distribution without `rand_distr`).
fn normal<R: Rng>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Rounds to the integer expression level and clamps to the chip range.
fn quantize_expression(v: f64) -> f64 {
    v.round().clamp(-1_000.0, 30_000.0)
}

/// Generates the synthetic dataset. Deterministic in `config` (including
/// its seed).
///
/// # Panics
///
/// Panics if the configuration is inconsistent (see field docs).
#[must_use]
pub fn generate(config: &GolubConfig) -> GolubLeukemia {
    config.validate();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // ---- Assign roles to gene indices ---------------------------------
    let mut plans: Vec<Option<GenePlan>> = vec![None; config.genes];
    // Spread informative genes across the index range deterministically.
    let mut informative_genes = Vec::with_capacity(config.informative);
    let stride = config.genes / (config.informative * (1 + config.redundant_per_informative));
    let mut cursor = rng.gen_range(0..stride.max(1));
    for i in 0..config.informative {
        let mean = rng.gen_range(800.0..4000.0);
        let sd = rng.gen_range(150.0..450.0);
        let shift = config.effect_size * sd;
        // Alternate direction so roughly half the informative genes are
        // up-regulated in ALL and half in AML — this is what later gives
        // the network's input nodes their asymmetric sign sensitivities.
        let direction = if i % 2 == 0 { 1.0 } else { -1.0 };
        plans[cursor] = Some(GenePlan::Informative {
            mean,
            sd,
            shift,
            direction,
        });
        informative_genes.push(cursor);
        // Its redundant copies go right after (realistic: co-regulated
        // genes cluster on chips by probe family).
        let mut at = cursor;
        for _ in 0..config.redundant_per_informative {
            at += 1;
            plans[at] = Some(GenePlan::Redundant {
                source: cursor,
                a: rng.gen_range(0.6..1.4),
                b: rng.gen_range(-200.0..200.0),
                sd: rng.gen_range(50.0..150.0),
            });
        }
        cursor += stride.max(config.redundant_per_informative + 1);
        cursor = cursor.min(config.genes - 1 - config.redundant_per_informative);
    }
    // Remaining genes are background.
    for plan in plans.iter_mut() {
        if plan.is_none() {
            *plan = Some(GenePlan::Background {
                mean: rng.gen_range(100.0..5000.0),
                sd: rng.gen_range(80.0..600.0),
            });
        }
    }
    let plans: Vec<GenePlan> = plans
        .into_iter()
        .map(|p| p.expect("all assigned"))
        .collect();

    // ---- Draw samples ---------------------------------------------------
    let draw_sample = |rng: &mut StdRng, class: usize, mix: f64| -> Vec<f64> {
        let mut sample = vec![0.0f64; plans.len()];
        for (g, plan) in plans.iter().enumerate() {
            let v = match *plan {
                GenePlan::Background { mean, sd } => normal(rng, mean, sd),
                GenePlan::Informative {
                    mean,
                    sd,
                    shift,
                    direction,
                } => {
                    let class_sign = if class == L1_ALL { 1.0 } else { -1.0 };
                    // mix pulls the class mean toward the midpoint (mean).
                    let offset = class_sign * direction * shift / 2.0 * (1.0 - mix);
                    normal(rng, mean + offset, sd)
                }
                GenePlan::Redundant { source, a, b, sd } => normal(rng, a * sample[source] + b, sd),
            };
            sample[g] = quantize_expression(v);
        }
        sample
    };

    let mut train_samples = Vec::new();
    let mut train_labels = Vec::new();
    for class in [L0_AML, L1_ALL] {
        for _ in 0..config.train_per_class[class] {
            train_samples.push(draw_sample(&mut rng, class, 0.0));
            train_labels.push(class);
        }
    }

    let mut test_samples = Vec::new();
    let mut test_labels = Vec::new();
    // Special-sample plan: boundary (wrong-side) samples come from the AML
    // minority class, as do most near-boundary ones — matching the paper's
    // finding that the fragile inputs are predominantly L0. One near sample
    // goes to L1 so the boundary panel has structure on both sides.
    let near_l1 = config.near_test_samples / 4;
    let near_l0 = config.near_test_samples - near_l1;
    let mut mix_plan: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    mix_plan[L0_AML].extend(std::iter::repeat_n(
        config.boundary_mix,
        config.boundary_test_samples,
    ));
    mix_plan[L0_AML].extend(std::iter::repeat_n(config.near_mix, near_l0));
    mix_plan[L1_ALL].extend(std::iter::repeat_n(config.near_mix, near_l1));
    for class in [L0_AML, L1_ALL] {
        for i in 0..config.test_per_class[class] {
            let mix = mix_plan[class].get(i).copied().unwrap_or(0.0);
            test_samples.push(draw_sample(&mut rng, class, mix));
            test_labels.push(class);
        }
    }

    let train = Dataset::new(train_samples, train_labels, 2).expect("generator emits valid data");
    let test = Dataset::new(test_samples, test_labels, 2).expect("generator emits valid data");
    GolubLeukemia {
        train,
        test,
        informative_genes,
        config: config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretizer;
    use crate::mrmr::{select_mrmr, MrmrScheme};
    use crate::stats::mean;

    #[test]
    fn published_shape() {
        let data = generate(&GolubConfig::small());
        assert_eq!(data.train.len(), 38);
        assert_eq!(data.test.len(), 34);
        assert_eq!(data.train.features(), 500);
        assert_eq!(data.train.class_counts(), vec![11, 27]);
        assert_eq!(data.test.class_counts(), vec![14, 20]);
        // ≈71 % of training samples are ALL (L1) — the paper's ~70 % bias.
        let frac = data.train.label_fraction(L1_ALL);
        assert!((frac - 27.0 / 38.0).abs() < 1e-12);
    }

    #[test]
    fn full_size_generation_has_7129_genes() {
        let data = generate(&GolubConfig::paper());
        assert_eq!(data.train.features(), 7129);
        assert_eq!(data.informative_genes.len(), 30);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&GolubConfig::small());
        let b = generate(&GolubConfig::small());
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let mut other = GolubConfig::small();
        other.seed += 1;
        let c = generate(&other);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn expression_levels_are_integers_in_range() {
        let data = generate(&GolubConfig::small());
        for (sample, _) in data.train.iter().chain(data.test.iter()) {
            for &v in sample {
                assert_eq!(v, v.round(), "expression levels are integers");
                assert!((-1000.0..=30000.0).contains(&v));
            }
        }
    }

    #[test]
    fn informative_genes_separate_classes() {
        let data = generate(&GolubConfig::small());
        let cols = data.train.columns();
        let labels = data.train.labels();
        for &g in &data.informative_genes {
            let class0: Vec<f64> = labels
                .iter()
                .zip(&cols[g])
                .filter(|(&y, _)| y == L0_AML)
                .map(|(_, &v)| v)
                .collect();
            let class1: Vec<f64> = labels
                .iter()
                .zip(&cols[g])
                .filter(|(&y, _)| y == L1_ALL)
                .map(|(_, &v)| v)
                .collect();
            let gap = (mean(&class0) - mean(&class1)).abs();
            assert!(
                gap > 100.0,
                "gene {g} gap {gap} too small to be informative"
            );
        }
    }

    #[test]
    fn mrmr_recovers_informative_structure() {
        let data = generate(&GolubConfig::small());
        let cols = data.train.columns();
        let sel = select_mrmr(
            &cols,
            data.train.labels(),
            5,
            MrmrScheme::Difference,
            Discretizer::SigmaBands,
        );
        // Every selected gene should be informative or a redundant copy of
        // one (copies carry the same signal).
        let informative_or_copy = |g: usize| {
            data.informative_genes
                .iter()
                .any(|&i| g >= i && g <= i + data.config.redundant_per_informative)
        };
        let hits = sel
            .features
            .iter()
            .filter(|&&g| informative_or_copy(g))
            .count();
        assert!(
            hits >= 4,
            "mRMR found only {hits}/5 signal genes: {:?} (informative: {:?})",
            sel.features,
            data.informative_genes
        );
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn invalid_config_panics() {
        let bad = GolubConfig {
            genes: 10,
            ..GolubConfig::paper()
        };
        let _ = generate(&bad);
    }
}
