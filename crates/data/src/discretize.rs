//! Discretization of continuous gene-expression values into a small number
//! of levels, as required by mutual-information estimation.
//!
//! The mRMR literature (Peng et al., 2005) discretizes microarray data into
//! three states around the mean: below `μ − σ/2`, within `μ ± σ/2`, above
//! `μ + σ/2`. [`Discretizer::SigmaBands`] reproduces that; an equal-width
//! binning is provided as an alternative.

use crate::stats::{mean, min_max, std_dev};

/// A discretization rule mapping `f64` values to level indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Discretizer {
    /// Three levels split at `μ ± k·σ` with `k = 0.5` (the mRMR convention).
    SigmaBands,
    /// `n` equal-width bins across the observed range.
    EqualWidth(usize),
}

impl Discretizer {
    /// Number of levels this rule produces.
    #[must_use]
    pub fn levels(self) -> usize {
        match self {
            Discretizer::SigmaBands => 3,
            Discretizer::EqualWidth(n) => n,
        }
    }

    /// Discretizes one feature column into level indices
    /// `0..self.levels()`.
    ///
    /// Constant columns map to level 0 everywhere.
    ///
    /// # Panics
    ///
    /// Panics for `EqualWidth(0)`.
    #[must_use]
    pub fn apply(self, column: &[f64]) -> Vec<usize> {
        match self {
            Discretizer::SigmaBands => {
                let m = mean(column);
                let s = std_dev(column);
                if s == 0.0 {
                    return vec![0; column.len()];
                }
                let lo = m - 0.5 * s;
                let hi = m + 0.5 * s;
                column
                    .iter()
                    .map(|&x| {
                        if x < lo {
                            0
                        } else if x > hi {
                            2
                        } else {
                            1
                        }
                    })
                    .collect()
            }
            Discretizer::EqualWidth(n) => {
                assert!(n > 0, "equal-width binning needs at least one bin");
                let Some((lo, hi)) = min_max(column) else {
                    return Vec::new();
                };
                if lo == hi {
                    return vec![0; column.len()];
                }
                let width = (hi - lo) / n as f64;
                column
                    .iter()
                    .map(|&x| (((x - lo) / width) as usize).min(n - 1))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_bands_three_levels() {
        // mean 0, std 1: thresholds at ±0.5.
        let col = [-2.0, -0.4, 0.0, 0.4, 2.0];
        let d = Discretizer::SigmaBands.apply(&col);
        assert_eq!(d[0], 0);
        assert_eq!(d[2], 1);
        assert_eq!(d[4], 2);
        assert_eq!(Discretizer::SigmaBands.levels(), 3);
    }

    #[test]
    fn sigma_bands_constant_column() {
        assert_eq!(Discretizer::SigmaBands.apply(&[5.0; 4]), vec![0; 4]);
    }

    #[test]
    fn equal_width_bins() {
        let col = [0.0, 1.0, 2.0, 3.0, 4.0];
        let d = Discretizer::EqualWidth(5).apply(&col);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        // Max value lands in the last bin, not out of range.
        assert_eq!(*d.last().unwrap(), 4);
        assert_eq!(Discretizer::EqualWidth(7).levels(), 7);
    }

    #[test]
    fn equal_width_constant_and_empty() {
        assert_eq!(Discretizer::EqualWidth(4).apply(&[2.0; 3]), vec![0; 3]);
        assert!(Discretizer::EqualWidth(4).apply(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Discretizer::EqualWidth(0).apply(&[1.0]);
    }

    #[test]
    fn all_levels_in_range() {
        let col: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        for disc in [Discretizer::SigmaBands, Discretizer::EqualWidth(6)] {
            let levels = disc.apply(&col);
            assert!(levels.iter().all(|&l| l < disc.levels()));
            assert_eq!(levels.len(), col.len());
        }
    }
}
