//! Minimum-Redundancy Maximum-Relevance (mRMR) feature selection.
//!
//! The paper selects "the top five most significant genes … using the
//! Minimum Redundancy and Maximum Relevance (mRMR) feature selection
//! method" (§V-A). This module implements the incremental mRMR algorithm of
//! Peng, Long & Ding (2005) in both classic flavours:
//!
//! * **MID** (difference): maximize `I(f; c) − mean_{s∈S} I(f; s)`
//! * **MIQ** (quotient):   maximize `I(f; c) / mean_{s∈S} I(f; s)`
//!
//! plus two baselines used by the A3 ablation bench: variance ranking and
//! seeded random selection.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::discretize::Discretizer;
use crate::mutual_info::mutual_information;
use crate::stats::variance;

/// mRMR scoring scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MrmrScheme {
    /// Mutual-information difference: relevance − redundancy.
    Difference,
    /// Mutual-information quotient: relevance / redundancy.
    Quotient,
}

/// Result of a feature-selection run.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Indices of the chosen features, in selection order.
    pub features: Vec<usize>,
    /// Relevance `I(f; class)` of each chosen feature.
    pub relevance: Vec<f64>,
}

/// Selects `k` features by incremental mRMR over discretized columns.
///
/// `columns[j]` is the `j`-th feature across all samples; `labels` are the
/// class indices. The first feature picked is the one with maximal
/// relevance; each subsequent pick maximizes the MID/MIQ criterion against
/// the already-selected set.
///
/// # Panics
///
/// Panics if `k == 0`, `k > columns.len()`, or any column length differs
/// from `labels.len()`.
#[must_use]
pub fn select_mrmr(
    columns: &[Vec<f64>],
    labels: &[usize],
    k: usize,
    scheme: MrmrScheme,
    discretizer: Discretizer,
) -> Selection {
    assert!(k > 0, "must select at least one feature");
    assert!(
        k <= columns.len(),
        "cannot select {k} features out of {}",
        columns.len()
    );
    for (j, col) in columns.iter().enumerate() {
        assert_eq!(
            col.len(),
            labels.len(),
            "column {j} has {} values for {} labels",
            col.len(),
            labels.len()
        );
    }

    // Discretize once.
    let discrete: Vec<Vec<usize>> = columns.iter().map(|c| discretizer.apply(c)).collect();
    let relevance: Vec<f64> = discrete
        .iter()
        .map(|col| mutual_information(col, labels))
        .collect();

    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let mut selected_relevance: Vec<f64> = Vec::with_capacity(k);
    // Cached pairwise redundancy sums against the selected set.
    let mut redundancy_sum = vec![0.0f64; columns.len()];
    let mut in_set = vec![false; columns.len()];

    for round in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..columns.len() {
            if in_set[j] {
                continue;
            }
            let score = if round == 0 {
                relevance[j]
            } else {
                let mean_red = redundancy_sum[j] / round as f64;
                match scheme {
                    MrmrScheme::Difference => relevance[j] - mean_red,
                    // The denominator is floored so that near-zero sampled
                    // redundancy (inevitable at microarray sample sizes)
                    // cannot catapult an irrelevant gene to the top — the
                    // usual guard in MIQ implementations.
                    MrmrScheme::Quotient => relevance[j] / mean_red.max(1e-3),
                }
            };
            let better = match best {
                None => true,
                Some((bj, bs)) => score > bs || (score == bs && j < bj),
            };
            if better {
                best = Some((j, score));
            }
        }
        let (j, _) = best.expect("k ≤ columns.len() leaves a candidate");
        in_set[j] = true;
        selected.push(j);
        selected_relevance.push(relevance[j]);
        // Update redundancy sums with the new member.
        for (cand, sum) in redundancy_sum.iter_mut().enumerate() {
            if !in_set[cand] {
                *sum += mutual_information(&discrete[cand], &discrete[j]);
            }
        }
    }

    Selection {
        features: selected,
        relevance: selected_relevance,
    }
}

/// Baseline: the `k` features with the largest variance.
///
/// # Panics
///
/// Panics if `k > columns.len()`.
#[must_use]
pub fn select_by_variance(columns: &[Vec<f64>], k: usize) -> Selection {
    assert!(k <= columns.len(), "cannot select {k} of {}", columns.len());
    let mut order: Vec<usize> = (0..columns.len()).collect();
    let vars: Vec<f64> = columns.iter().map(|c| variance(c)).collect();
    order.sort_by(|&a, &b| vars[b].partial_cmp(&vars[a]).expect("variances are finite"));
    order.truncate(k);
    let relevance = order.iter().map(|&j| vars[j]).collect();
    Selection {
        features: order,
        relevance,
    }
}

/// Baseline: `k` features chosen uniformly at random with a fixed seed.
///
/// # Panics
///
/// Panics if `k > feature_count`.
#[must_use]
pub fn select_random(feature_count: usize, k: usize, seed: u64) -> Selection {
    assert!(k <= feature_count, "cannot select {k} of {feature_count}");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut all: Vec<usize> = (0..feature_count).collect();
    all.shuffle(&mut rng);
    all.truncate(k);
    Selection {
        features: all,
        relevance: vec![0.0; k],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Builds a tiny dataset where features 0 and 1 are informative (and
    /// mutually redundant), feature 2 is weakly informative, and the rest is
    /// noise.
    pub(super) fn toy_columns() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 200;
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        // f0 is informative but imperfect: its class clusters overlap.
        let f0: Vec<f64> = labels
            .iter()
            .map(|&y| y as f64 * 5.0 + rng.gen_range(-3.0..3.0))
            .collect();
        // f1 = near-copy of f0, sharing f0's *noise* → far more redundant
        // with f0 than any independently drawn feature can be.
        let f1: Vec<f64> = f0.iter().map(|&v| v + rng.gen_range(-1.0..1.0)).collect();
        // f2 = independently drawn signal of similar strength: equally
        // relevant, but its noise is fresh, so redundancy with f0 is low.
        let f2: Vec<f64> = labels
            .iter()
            .map(|&y| y as f64 * 4.0 + rng.gen_range(-3.0..3.0))
            .collect();
        let f3: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let f4: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        (vec![f0, f1, f2, f3, f4], labels)
    }

    #[test]
    fn first_pick_is_most_relevant() {
        let (cols, labels) = toy_columns();
        for scheme in [MrmrScheme::Difference, MrmrScheme::Quotient] {
            let sel = select_mrmr(&cols, &labels, 1, scheme, Discretizer::SigmaBands);
            assert!(
                sel.features[0] == 0 || sel.features[0] == 1,
                "{scheme:?} picked {:?}",
                sel.features
            );
        }
    }

    #[test]
    fn redundancy_pushes_copy_down() {
        let (cols, labels) = toy_columns();
        let sel = select_mrmr(
            &cols,
            &labels,
            3,
            MrmrScheme::Difference,
            Discretizer::SigmaBands,
        );
        // After picking one of {0,1}, the redundant twin should NOT be the
        // second pick; the weak-but-novel feature 2 should precede it.
        assert_eq!(sel.features.len(), 3);
        let first = sel.features[0];
        let twin = 1 - first;
        let twin_pos = sel.features.iter().position(|&f| f == twin);
        let weak_pos = sel.features.iter().position(|&f| f == 2);
        match (weak_pos, twin_pos) {
            (Some(w), Some(t)) => assert!(w < t, "selection {:?}", sel.features),
            (Some(_), None) => {} // twin excluded entirely — even stronger
            other => panic!("unexpected selection {:?} ({other:?})", sel.features),
        }
    }

    #[test]
    fn relevance_recorded_and_ordered_sensibly() {
        let (cols, labels) = toy_columns();
        let sel = select_mrmr(
            &cols,
            &labels,
            5,
            MrmrScheme::Quotient,
            Discretizer::SigmaBands,
        );
        assert_eq!(sel.features.len(), 5);
        assert_eq!(sel.relevance.len(), 5);
        // All five distinct.
        let mut sorted = sel.features.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        // The first pick has the globally maximal relevance.
        assert!(sel.relevance[0] >= sel.relevance[1]);
    }

    #[test]
    fn variance_baseline() {
        let cols = vec![
            vec![0.0, 0.0, 0.0],
            vec![1.0, -1.0, 1.0],
            vec![0.1, -0.1, 0.1],
        ];
        let sel = select_by_variance(&cols, 2);
        assert_eq!(sel.features, vec![1, 2]);
        assert!(sel.relevance[0] > sel.relevance[1]);
    }

    #[test]
    fn random_baseline_deterministic_per_seed() {
        let a = select_random(100, 5, 7);
        let b = select_random(100, 5, 7);
        assert_eq!(a, b);
        let c = select_random(100, 5, 8);
        assert_ne!(a.features, c.features);
        assert_eq!(a.features.len(), 5);
        let mut sorted = a.features.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "no duplicates");
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn zero_k_panics() {
        let (cols, labels) = toy_columns();
        let _ = select_mrmr(
            &cols,
            &labels,
            0,
            MrmrScheme::Difference,
            Discretizer::SigmaBands,
        );
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn oversized_k_panics() {
        let (cols, labels) = toy_columns();
        let _ = select_mrmr(
            &cols,
            &labels,
            99,
            MrmrScheme::Difference,
            Discretizer::SigmaBands,
        );
    }
}
