//! # fannet-data
//!
//! Dataset substrate for the FANNet (DATE 2020) reproduction: the synthetic
//! Golub-leukemia generator ([`golub`]), labelled [`Dataset`]s,
//! normalization ([`normalize`]), discretization ([`discretize`]),
//! mutual-information estimation ([`mutual_info`]) and mRMR feature
//! selection ([`mrmr`]) — everything needed to rebuild the paper's
//! 7129-gene → 5-input preprocessing pipeline offline.
//!
//! ## Example: the paper's preprocessing pipeline
//!
//! ```
//! use fannet_data::{golub, mrmr, discretize::Discretizer};
//!
//! let data = golub::generate(&golub::GolubConfig::small());
//! let selection = mrmr::select_mrmr(
//!     &data.train.columns(),
//!     data.train.labels(),
//!     5,
//!     mrmr::MrmrScheme::Quotient,
//!     Discretizer::SigmaBands,
//! );
//! let train5 = data.train.select_features(&selection.features);
//! assert_eq!(train5.features(), 5);
//! assert_eq!(train5.len(), 38);
//! ```

pub mod dataset;
pub mod discretize;
pub mod golub;
pub mod mrmr;
pub mod mutual_info;
pub mod normalize;
pub mod stats;

pub use dataset::{Dataset, DatasetError};
pub use golub::{GolubConfig, GolubLeukemia};
pub use normalize::Affine;
