//! Small statistics helpers shared by the dataset and feature-selection
//! modules.

/// Arithmetic mean; `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// use fannet_data::stats::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(mean(&[]), 0.0);
/// ```
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for slices with fewer than two elements.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum and maximum; `None` for an empty slice.
#[must_use]
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    let mut iter = xs.iter().copied();
    let first = iter.next()?;
    Some(iter.fold((first, first), |(lo, hi), x| (lo.min(x), hi.max(x))))
}

/// Pearson correlation coefficient; `0.0` when either side is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson inputs must pair up");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Counts occurrences of each label `0..classes`.
///
/// # Panics
///
/// Panics if any label is `>= classes`.
#[must_use]
pub fn class_counts(labels: &[usize], classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; classes];
    for &y in labels {
        assert!(y < classes, "label {y} out of range for {classes} classes");
        counts[y] += 1;
    }
    counts
}

/// Fraction of samples carrying `label`; `0.0` for an empty slice.
#[must_use]
pub fn label_fraction(labels: &[usize], label: usize) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    labels.iter().filter(|&&y| y == label).count() as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert_eq!(variance(&[42.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn min_max_cases() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), Some((-1.0, 3.0)));
        assert_eq!(min_max(&[5.0]), Some((5.0, 5.0)));
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn class_counting() {
        assert_eq!(class_counts(&[0, 1, 1, 0, 1], 2), vec![2, 3]);
        assert_eq!(class_counts(&[], 3), vec![0, 0, 0]);
        assert!((label_fraction(&[0, 1, 1, 1], 1) - 0.75).abs() < 1e-12);
        assert_eq!(label_fraction(&[], 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_counts_rejects_bad_label() {
        let _ = class_counts(&[2], 2);
    }
}
