//! Exact evaluation of SMV expressions under a variable environment.
//!
//! The evaluator is the semantic core shared by the flattener (labelling
//! states), the explicit-state checker (deciding invariants) and the
//! NN-translation validation (property **P1**). All arithmetic is exact
//! rational arithmetic — the same soundness discipline as `fannet-verify`.

use std::collections::HashMap;
use std::fmt;

use fannet_numeric::Rational;

use crate::ast::{BinOp, Define, Expr, Value};

/// Error raised during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    message: String,
}

impl EvalError {
    fn new(message: impl Into<String>) -> Self {
        EvalError {
            message: message.into(),
        }
    }

    /// Wraps an arbitrary message (used by the flattener to add context).
    pub(crate) fn from_message(message: String) -> Self {
        EvalError { message }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "smv evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// A variable/define environment mapping names to values.
pub type Env = HashMap<String, Value>;

/// Evaluates an expression under `env`.
///
/// `Set`/`IntRange` right-hand sides are nondeterministic and have no
/// single value; evaluating one is an error (expand with
/// [`Expr::choices`] first).
///
/// # Errors
///
/// Returns [`EvalError`] on unbound variables, type mismatches, division by
/// zero, fall-through `case` without a matching arm, or nondeterministic
/// expressions.
pub fn eval(expr: &Expr, env: &Env) -> Result<Value, EvalError> {
    match expr {
        Expr::Int(v) => Ok(Value::int(*v)),
        Expr::Rat(r) => Ok(Value::Rat(*r)),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::new(format!("unbound identifier `{name}`"))),
        Expr::Neg(inner) => {
            let r = num(eval(inner, env)?, "unary -")?;
            Ok(Value::Rat(-r))
        }
        Expr::Not(inner) => {
            let b = boolean(eval(inner, env)?, "!")?;
            Ok(Value::Bool(!b))
        }
        Expr::Bin(op, a, b) => {
            let lhs = eval(a, env)?;
            let rhs = eval(b, env)?;
            apply_bin(*op, lhs, rhs)
        }
        Expr::Max(a, b) => {
            let lhs = num(eval(a, env)?, "max")?;
            let rhs = num(eval(b, env)?, "max")?;
            Ok(Value::Rat(lhs.max(rhs)))
        }
        Expr::Case(arms) => {
            for (cond, val) in arms {
                if boolean(eval(cond, env)?, "case condition")? {
                    return eval(val, env);
                }
            }
            Err(EvalError::new(
                "no case arm matched (missing TRUE default?)",
            ))
        }
        Expr::Set(_) | Expr::IntRange(_, _) => Err(EvalError::new(
            "nondeterministic expression has no single value; expand choices first",
        )),
    }
}

fn num(v: Value, ctx: &str) -> Result<Rational, EvalError> {
    v.as_rat()
        .ok_or_else(|| EvalError::new(format!("{ctx} expects a numeric operand")))
}

fn boolean(v: Value, ctx: &str) -> Result<bool, EvalError> {
    v.as_bool()
        .ok_or_else(|| EvalError::new(format!("{ctx} expects a boolean operand")))
}

fn apply_bin(op: BinOp, lhs: Value, rhs: Value) -> Result<Value, EvalError> {
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            let a = num(lhs, "arithmetic")?;
            let b = num(rhs, "arithmetic")?;
            let r = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b.is_zero() {
                        return Err(EvalError::new("division by zero"));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Value::Rat(r))
        }
        BinOp::Eq | BinOp::Ne => {
            let equal = match (&lhs, &rhs) {
                (Value::Rat(a), Value::Rat(b)) => a == b,
                (Value::Bool(a), Value::Bool(b)) => a == b,
                _ => return Err(EvalError::new("= compares values of the same type")),
            };
            Ok(Value::Bool(if op == BinOp::Eq { equal } else { !equal }))
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let a = num(lhs, "comparison")?;
            let b = num(rhs, "comparison")?;
            let r = match op {
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            };
            Ok(Value::Bool(r))
        }
        BinOp::And | BinOp::Or => {
            let a = boolean(lhs, "boolean operator")?;
            let b = boolean(rhs, "boolean operator")?;
            Ok(Value::Bool(if op == BinOp::And { a && b } else { a || b }))
        }
    }
}

/// Extends `env` with every `DEFINE`, evaluated in order (defines may
/// reference variables and *earlier* defines, as in SMV).
///
/// # Errors
///
/// Returns [`EvalError`] if any define fails to evaluate.
pub fn bind_defines(defines: &[Define], env: &mut Env) -> Result<(), EvalError> {
    for d in defines {
        let v =
            eval(&d.expr, env).map_err(|e| EvalError::new(format!("in DEFINE {}: {e}", d.name)))?;
        env.insert(d.name.clone(), v);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn env(pairs: &[(&str, Value)]) -> Env {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect()
    }

    fn eval_str(src: &str, e: &Env) -> Result<Value, EvalError> {
        eval(&parse_expr(src).unwrap(), e)
    }

    #[test]
    fn arithmetic_is_exact() {
        let e = env(&[("n", Value::int(-11))]);
        // The paper's noise expression at x = 1234, p = -11.
        let v = eval_str("1234 * (100 + n) / 100", &e).unwrap();
        assert_eq!(v, Value::Rat(Rational::new(1234 * 89, 100)));
    }

    #[test]
    fn comparisons_and_booleans() {
        let e = env(&[("a", Value::int(3)), ("b", Value::int(5))]);
        assert_eq!(eval_str("a < b", &e).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("a >= b", &e).unwrap(), Value::Bool(false));
        assert_eq!(eval_str("a != b & TRUE", &e).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("a = b | b = 5", &e).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("!(a = 3)", &e).unwrap(), Value::Bool(false));
    }

    #[test]
    fn max_and_case() {
        let e = env(&[("z", Value::int(-4))]);
        assert_eq!(eval_str("max(0, z)", &e).unwrap(), Value::int(0));
        assert_eq!(eval_str("max(z, -10)", &e).unwrap(), Value::int(-4));
        let c = eval_str("case z > 0 : 1; TRUE : 0; esac", &e).unwrap();
        assert_eq!(c, Value::int(0));
    }

    #[test]
    fn error_cases() {
        let e = env(&[("b", Value::Bool(true))]);
        assert!(eval_str("missing + 1", &e).is_err());
        assert!(eval_str("b + 1", &e).is_err());
        assert!(eval_str("1 / 0", &e).is_err());
        assert!(eval_str("case FALSE : 1; esac", &e).is_err());
        assert!(eval_str("1 = TRUE", &e).is_err());
        assert!(eval_str("{1, 2}", &e).is_err());
        assert!(eval_str("!(1)", &e).is_err());
        assert!(eval_str("max(TRUE, 1)", &e).is_err());
    }

    #[test]
    fn defines_bind_in_order() {
        let mut e = env(&[("n", Value::int(2))]);
        let defines = vec![
            Define {
                name: "a".into(),
                expr: parse_expr("n * 10").unwrap(),
            },
            Define {
                name: "b".into(),
                expr: parse_expr("a + 1").unwrap(),
            },
        ];
        bind_defines(&defines, &mut e).unwrap();
        assert_eq!(e["a"], Value::int(20));
        assert_eq!(e["b"], Value::int(21));
        // A define referencing a later define fails.
        let bad = vec![
            Define {
                name: "p".into(),
                expr: parse_expr("q + 1").unwrap(),
            },
            Define {
                name: "q".into(),
                expr: parse_expr("1").unwrap(),
            },
        ];
        let mut e2 = Env::new();
        let err = bind_defines(&bad, &mut e2).unwrap_err();
        assert!(err.to_string().contains("in DEFINE p"));
    }
}
