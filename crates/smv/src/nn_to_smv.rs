//! Behaviour extraction: translating a trained network into an SMV model.
//!
//! This is the first stage of the FANNet methodology (paper Fig. 2): the
//! weights and activations of the trained network, one concrete test input
//! `X`, its true label `Sx`, and the noise range are compiled into a
//! `MODULE main` whose `INVARSPEC` is the paper's property
//! **P2**: `OCn = Sx`. Setting the noise range to zero degenerates P2 into
//! **P1** (`OC = Sx`), the translation-validation property.
//!
//! The generated model mirrors the paper's network equations (Fig. 3a):
//!
//! ```text
//! VAR    noise_k : -Δ..Δ;                        -- nondeterministic noise
//! DEFINE x_k  := Xₖ * (100 + noise_k) / 100;     -- relative noise
//!        h1_j := max(0, b_j + Σ w_jk * x_k);     -- FC + ReLU
//!        out_i := c_i + Σ v_ij * h1_j;           -- FC output
//!        oc := case … esac;                      -- maxpool readout
//! INVARSPEC oc = Sx;                             -- P2
//! ```

use fannet_nn::{Activation, Network};
use fannet_numeric::Rational;

use crate::ast::{Assign, Define, Expr, SmvModule, Sort, VarDecl};

/// Renders a rational as the smallest matching literal: `Expr::Int` for
/// integers (so printed models round-trip through the parser), `Expr::Rat`
/// otherwise.
fn rat_expr(r: Rational) -> Expr {
    if r.is_integer() {
        if let Ok(v) = i64::try_from(r.numer()) {
            return Expr::Int(v);
        }
    }
    Expr::Rat(r)
}

/// Options for the NN → SMV translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslationConfig {
    /// Symmetric noise range `±delta` (integer percent) on every input.
    pub delta: i64,
    /// Also add a noise variable for the bias node (the paper's Fig. 3a
    /// input layer has six nodes: five inputs plus the constant-1 bias, and
    /// Fig. 3c's 65-state FSM perturbs all six).
    pub bias_noise: bool,
    /// Name of the generated module.
    pub module_name: String,
}

impl TranslationConfig {
    /// A `±delta` translation without bias noise, module name `main`.
    #[must_use]
    pub fn symmetric(delta: i64) -> Self {
        TranslationConfig {
            delta,
            bias_noise: false,
            module_name: "main".into(),
        }
    }
}

/// Translates `net` (exact rational parameters), one input `x` and its true
/// label into an SMV module with the P2 invariant.
///
/// # Panics
///
/// Panics if widths mismatch, `label` is out of range, `delta` is negative,
/// or the network is not piecewise-linear (sigmoid has no SMV encoding in
/// this subset).
#[must_use]
pub fn network_to_smv(
    net: &Network<Rational>,
    x: &[Rational],
    label: usize,
    config: &TranslationConfig,
) -> SmvModule {
    assert_eq!(x.len(), net.inputs(), "input width must match the network");
    assert!(label < net.outputs(), "label {label} out of range");
    assert!(config.delta >= 0, "noise range must be non-negative");
    assert!(
        net.is_piecewise_linear(),
        "SMV translation supports ReLU/Identity networks only"
    );

    let mut module = SmvModule::new(config.module_name.clone());
    let range = Expr::IntRange(-config.delta, config.delta);

    // --- noise variables (nondeterministic init and next) ---------------
    let mut noise_names: Vec<String> = (0..net.inputs()).map(|k| format!("noise_{k}")).collect();
    if config.bias_noise {
        noise_names.push("noise_bias".into());
    }
    for name in &noise_names {
        module.vars.push(VarDecl {
            name: name.clone(),
            sort: Sort::Range(-config.delta, config.delta),
        });
        module.assigns.push(Assign {
            var: name.clone(),
            init: Some(range.clone()),
            next: Some(range.clone()),
        });
    }

    // --- noisy inputs ----------------------------------------------------
    for (k, &xk) in x.iter().enumerate() {
        module.defines.push(Define {
            name: format!("x_{k}"),
            expr: noisy_factor(rat_expr(xk), &format!("noise_{k}")),
        });
    }

    // --- layers ------------------------------------------------------------
    let mut prev_names: Vec<String> = (0..net.inputs()).map(|k| format!("x_{k}")).collect();
    let last = net.layers().len() - 1;
    for (l, layer) in net.layers().iter().enumerate() {
        let mut names = Vec::with_capacity(layer.outputs());
        for j in 0..layer.outputs() {
            let name = if l == last {
                format!("out_{j}")
            } else {
                format!("h{}_{j}", l + 1)
            };
            let mut sum = bias_term(layer.biases()[j], l == 0 && config.bias_noise);
            for (k, prev) in prev_names.iter().enumerate() {
                let w = layer.weights()[(j, k)];
                if w.is_zero() {
                    continue;
                }
                sum = Expr::add(sum, Expr::mul(rat_expr(w), Expr::var(prev.clone())));
            }
            let body = match layer.activation() {
                Activation::Identity => sum,
                Activation::ReLU => Expr::max(Expr::Int(0), sum),
                Activation::Sigmoid => unreachable!("checked piecewise-linear above"),
            };
            module.defines.push(Define {
                name: name.clone(),
                expr: body,
            });
            names.push(name);
        }
        prev_names = names;
    }

    // --- maxpool readout (argmax, ties toward the lower index) ----------
    let outputs = prev_names;
    let mut arms = Vec::with_capacity(outputs.len());
    for (i, oi) in outputs.iter().enumerate() {
        if i + 1 == outputs.len() {
            arms.push((Expr::Bool(true), Expr::Int(i as i64)));
            break;
        }
        let mut cond: Option<Expr> = None;
        for (j, oj) in outputs.iter().enumerate() {
            if i == j {
                continue;
            }
            // Lower rivals win ties, so i must beat j < i strictly.
            let cmp = if j < i {
                Expr::Bin(
                    crate::ast::BinOp::Gt,
                    Box::new(Expr::var(oi.clone())),
                    Box::new(Expr::var(oj.clone())),
                )
            } else {
                Expr::ge(Expr::var(oi.clone()), Expr::var(oj.clone()))
            };
            cond = Some(match cond {
                None => cmp,
                Some(c) => Expr::Bin(crate::ast::BinOp::And, Box::new(c), Box::new(cmp)),
            });
        }
        arms.push((cond.expect("≥2 outputs"), Expr::Int(i as i64)));
    }
    module.defines.push(Define {
        name: "oc".into(),
        expr: Expr::Case(arms),
    });

    // --- property P2 (P1 when delta = 0) ---------------------------------
    module
        .invarspecs
        .push(Expr::eq(Expr::var("oc"), Expr::Int(label as i64)));

    module
}

/// `base * (100 + noise)/100` with the division kept non-constant so it
/// survives parsing untouched.
fn noisy_factor(base: Expr, noise_var: &str) -> Expr {
    Expr::div(
        Expr::mul(base, Expr::add(Expr::Int(100), Expr::var(noise_var))),
        Expr::Int(100),
    )
}

fn bias_term(bias: Rational, noisy_bias: bool) -> Expr {
    if noisy_bias && !bias.is_zero() {
        noisy_factor(rat_expr(bias), "noise_bias")
    } else {
        rat_expr(bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{bind_defines, Env};
    use crate::parser::parse_module;
    use crate::printer::print_module;
    use fannet_nn::{DenseLayer, Readout};
    use fannet_tensor::Matrix;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn tiny_net() -> Network<Rational> {
        let hidden = DenseLayer::new(
            Matrix::from_rows(vec![
                vec![Rational::new(1, 2), r(-1)],
                vec![r(1), Rational::new(1, 4)],
            ])
            .unwrap(),
            vec![r(1), r(-2)],
            Activation::ReLU,
        )
        .unwrap();
        let output = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(1), r(-1)], vec![r(-1), r(1)]]).unwrap(),
            vec![r(0), r(0)],
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![hidden, output], Readout::MaxPool).unwrap()
    }

    #[test]
    fn structure_of_generated_module() {
        let net = tiny_net();
        let x = [r(100), r(40)];
        let m = network_to_smv(&net, &x, 0, &TranslationConfig::symmetric(5));
        assert_eq!(m.vars.len(), 2);
        assert_eq!(m.vars[0].sort, Sort::Range(-5, 5));
        // 2 inputs + 2 hidden + 2 outputs + oc = 7 defines.
        assert_eq!(m.defines.len(), 7);
        assert!(m.define("x_0").is_some());
        assert!(m.define("h1_1").is_some());
        assert!(m.define("out_0").is_some());
        assert!(m.define("oc").is_some());
        assert_eq!(m.invarspecs.len(), 1);
        // init and next both nondeterministic over the range.
        let a = m.assign("noise_0").unwrap();
        assert_eq!(a.init, Some(Expr::IntRange(-5, 5)));
        assert_eq!(a.next, Some(Expr::IntRange(-5, 5)));
    }

    #[test]
    fn bias_noise_adds_sixth_node() {
        let net = tiny_net();
        let x = [r(100), r(40)];
        let mut cfg = TranslationConfig::symmetric(1);
        cfg.bias_noise = true;
        let m = network_to_smv(&net, &x, 0, &cfg);
        assert_eq!(m.vars.len(), 3);
        assert!(m.var("noise_bias").is_some());
        let text = print_module(&m);
        assert!(text.contains("noise_bias"), "{text}");
    }

    #[test]
    fn printed_model_parses_back() {
        let net = tiny_net();
        let x = [r(100), r(40)];
        let m = network_to_smv(&net, &x, 1, &TranslationConfig::symmetric(3));
        let text = print_module(&m);
        let back = parse_module(&text).unwrap();
        assert_eq!(back, m, "translation must round-trip through the printer");
    }

    #[test]
    fn model_semantics_match_network_exactly() {
        // Evaluate the generated defines under concrete noise and compare
        // with direct exact network evaluation — the P1 validation step.
        let net = tiny_net();
        let x = [r(100), r(40)];
        let m = network_to_smv(&net, &x, 0, &TranslationConfig::symmetric(10));
        for noise in [[0i64, 0], [10, -10], [-7, 3], [5, 5]] {
            let mut env = Env::new();
            env.insert("noise_0".into(), crate::ast::Value::int(noise[0]));
            env.insert("noise_1".into(), crate::ast::Value::int(noise[1]));
            bind_defines(&m.defines, &mut env).unwrap();
            // Exact reference computation.
            let noisy: Vec<Rational> = x
                .iter()
                .zip(noise)
                .map(|(&xk, p)| xk * Rational::new(100 + i128::from(p), 100))
                .collect();
            let expected_out = net.forward(&noisy).unwrap();
            for (i, &eo) in expected_out.iter().enumerate() {
                let got = env[&format!("out_{i}")].as_rat().unwrap();
                assert_eq!(got, eo, "out_{i} under noise {noise:?}");
            }
            let oc = env["oc"].as_rat().unwrap();
            let expected_label = net.classify(&noisy).unwrap();
            assert_eq!(oc, r(expected_label as i128), "oc under noise {noise:?}");
        }
    }

    #[test]
    fn zero_weights_are_omitted_from_sums() {
        let layer = DenseLayer::new(
            Matrix::from_rows(vec![vec![r(0), r(2)], vec![r(3), r(0)]]).unwrap(),
            vec![r(0), r(0)],
            Activation::Identity,
        )
        .unwrap();
        let net = Network::new(vec![layer], Readout::MaxPool).unwrap();
        let m = network_to_smv(&net, &[r(1), r(1)], 0, &TranslationConfig::symmetric(0));
        let text = print_module(&m);
        // out_0 references x_1 only.
        let line = text.lines().find(|l| l.contains("out_0 :=")).unwrap();
        assert!(!line.contains("x_0"), "{line}");
        assert!(line.contains("x_1"), "{line}");
    }

    #[test]
    #[should_panic(expected = "width must match")]
    fn width_mismatch_panics() {
        let net = tiny_net();
        let _ = network_to_smv(&net, &[r(1)], 0, &TranslationConfig::symmetric(1));
    }
}
