//! Lexer and recursive-descent parser for the SMV subset.
//!
//! Accepts everything [`crate::printer`] emits (round-trip tested), plus
//! `--` line comments and flexible whitespace. Constant folding is applied
//! to literal negation and literal division, so `3/4` parses to the exact
//! rational `3/4` rather than a division node — mirroring how nuXmv treats
//! real constants.

use std::fmt;

use fannet_numeric::Rational;

use crate::ast::{Assign, BinOp, Define, Expr, SmvModule, Sort, VarDecl};

/// Error produced by the lexer or parser, with 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSmvError {
    message: String,
    line: usize,
    col: usize,
}

impl fmt::Display for ParseSmvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "smv parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseSmvError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    // symbols
    Colon,
    Semi,
    Comma,
    Assign, // :=
    DotDot,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Plus,
    Minus,
    Star,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Amp,
    Pipe,
    Bang,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(src: &str) -> Result<Vec<Spanned>, ParseSmvError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    let err = |msg: &str, line: usize, col: usize| ParseSmvError {
        message: msg.to_string(),
        line,
        col,
    };
    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        let push = |tok: Tok, out: &mut Vec<Spanned>| {
            out.push(Spanned {
                tok,
                line: tline,
                col: tcol,
            });
        };
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
                continue;
            }
            c if c.is_whitespace() => {}
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '-' => {
                // line comment
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            ':' if i + 1 < bytes.len() && bytes[i + 1] == '=' => {
                push(Tok::Assign, &mut out);
                i += 1;
                col += 1;
            }
            ':' => push(Tok::Colon, &mut out),
            ';' => push(Tok::Semi, &mut out),
            ',' => push(Tok::Comma, &mut out),
            '.' if i + 1 < bytes.len() && bytes[i + 1] == '.' => {
                push(Tok::DotDot, &mut out);
                i += 1;
                col += 1;
            }
            '{' => push(Tok::LBrace, &mut out),
            '}' => push(Tok::RBrace, &mut out),
            '(' => push(Tok::LParen, &mut out),
            ')' => push(Tok::RParen, &mut out),
            '+' => push(Tok::Plus, &mut out),
            '-' => push(Tok::Minus, &mut out),
            '*' => push(Tok::Star, &mut out),
            '/' => push(Tok::Slash, &mut out),
            '=' => push(Tok::Eq, &mut out),
            '!' if i + 1 < bytes.len() && bytes[i + 1] == '=' => {
                push(Tok::Ne, &mut out);
                i += 1;
                col += 1;
            }
            '!' => push(Tok::Bang, &mut out),
            '<' if i + 1 < bytes.len() && bytes[i + 1] == '=' => {
                push(Tok::Le, &mut out);
                i += 1;
                col += 1;
            }
            '<' => push(Tok::Lt, &mut out),
            '>' if i + 1 < bytes.len() && bytes[i + 1] == '=' => {
                push(Tok::Ge, &mut out);
                i += 1;
                col += 1;
            }
            '>' => push(Tok::Gt, &mut out),
            '&' => push(Tok::Amp, &mut out),
            '|' => push(Tok::Pipe, &mut out),
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let v: i64 = text.parse().map_err(|_| {
                    err(&format!("integer literal `{text}` too large"), tline, tcol)
                })?;
                out.push(Spanned {
                    tok: Tok::Int(v),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '.')
                {
                    // Identifiers with dots exist in full SMV; our subset
                    // allows plain idents only, but '.' here would be
                    // ambiguous with `..`, so stop before '..'.
                    if bytes[i] == '.' && i + 1 < bytes.len() && bytes[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                    col += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.push(Spanned {
                    tok: Tok::Ident(text),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            other => return Err(err(&format!("unexpected character `{other}`"), line, col)),
        }
        i += 1;
        col += 1;
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn error(&self, msg: impl Into<String>) -> ParseSmvError {
        let (line, col) = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or((0, 0), |s| (s.line, s.col));
        ParseSmvError {
            message: msg.into(),
            line,
            col,
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseSmvError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseSmvError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn signed_int(&mut self) -> Result<i64, ParseSmvError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(v),
            Some(Tok::Minus) => match self.bump() {
                Some(Tok::Int(v)) => Ok(-v),
                other => Err(self.error(format!("expected integer after `-`, found {other:?}"))),
            },
            other => Err(self.error(format!("expected integer, found {other:?}"))),
        }
    }

    // ---- expressions -------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseSmvError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseSmvError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Tok::Pipe) {
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseSmvError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == Some(&Tok::Amp) {
            self.pos += 1;
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseSmvError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Eq) => BinOp::Eq,
                Some(Tok::Ne) => BinOp::Ne,
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::Le) => BinOp::Le,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::Ge) => BinOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.add_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseSmvError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseSmvError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            // Constant-fold literal division into exact rationals so the
            // printed form `3/4` round-trips to `Expr::Rat`.
            lhs = match (op, &lhs, &rhs) {
                (BinOp::Div, Expr::Int(a), Expr::Int(b)) if *b != 0 => {
                    Expr::Rat(Rational::new(i128::from(*a), i128::from(*b)))
                }
                (BinOp::Div, Expr::Rat(a), Expr::Int(b)) if *b != 0 => {
                    Expr::Rat(*a / Rational::from_integer(i128::from(*b)))
                }
                _ => Expr::Bin(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseSmvError> {
        match self.peek() {
            Some(Tok::Minus) => {
                // `-5..5` is a range literal, not negation of a range.
                if let (Some(Tok::Int(lo)), Some(Tok::DotDot)) =
                    (self.peek2(), self.toks.get(self.pos + 2).map(|s| &s.tok))
                {
                    let lo = -lo;
                    self.pos += 3; // minus, int, dotdot
                    let hi = self.signed_int()?;
                    return Ok(Expr::IntRange(lo, hi));
                }
                self.pos += 1;
                let inner = self.unary_expr()?;
                Ok(match inner {
                    // Fold literal negation.
                    Expr::Int(v) => Expr::Int(-v),
                    Expr::Rat(r) => Expr::Rat(-r),
                    other => Expr::Neg(Box::new(other)),
                })
            }
            Some(Tok::Bang) => {
                self.pos += 1;
                let inner = self.unary_expr()?;
                Ok(Expr::Not(Box::new(inner)))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseSmvError> {
        match self.bump() {
            Some(Tok::Int(v)) => {
                if self.peek() == Some(&Tok::DotDot) {
                    self.pos += 1;
                    let hi = self.signed_int()?;
                    Ok(Expr::IntRange(v, hi))
                } else {
                    Ok(Expr::Int(v))
                }
            }
            Some(Tok::LParen) => {
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(inner)
            }
            Some(Tok::LBrace) => {
                let mut items = vec![self.expr()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                    items.push(self.expr()?);
                }
                self.expect(&Tok::RBrace, "`}`")?;
                Ok(Expr::Set(items))
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "TRUE" => Ok(Expr::Bool(true)),
                "FALSE" => Ok(Expr::Bool(false)),
                "max" => {
                    self.expect(&Tok::LParen, "`(` after max")?;
                    let a = self.expr()?;
                    self.expect(&Tok::Comma, "`,` in max")?;
                    let b = self.expr()?;
                    self.expect(&Tok::RParen, "`)` after max")?;
                    Ok(Expr::Max(Box::new(a), Box::new(b)))
                }
                "case" => {
                    let mut arms = Vec::new();
                    while !self.at_keyword("esac") {
                        let cond = self.expr()?;
                        self.expect(&Tok::Colon, "`:` in case arm")?;
                        let val = self.expr()?;
                        self.expect(&Tok::Semi, "`;` after case arm")?;
                        arms.push((cond, val));
                    }
                    self.pos += 1; // esac
                    if arms.is_empty() {
                        return Err(self.error("case expression needs at least one arm"));
                    }
                    Ok(Expr::Case(arms))
                }
                _ => Ok(Expr::Var(name)),
            },
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }

    // ---- module structure ---------------------------------------------

    fn sort(&mut self) -> Result<Sort, ParseSmvError> {
        if self.eat_keyword("boolean") {
            return Ok(Sort::Boolean);
        }
        if self.peek() == Some(&Tok::LBrace) {
            self.pos += 1;
            let mut vs = vec![self.signed_int()?];
            while self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
                vs.push(self.signed_int()?);
            }
            self.expect(&Tok::RBrace, "`}`")?;
            return Ok(Sort::IntSet(vs));
        }
        let lo = self.signed_int()?;
        self.expect(&Tok::DotDot, "`..` in range sort")?;
        let hi = self.signed_int()?;
        Ok(Sort::Range(lo, hi))
    }

    fn module(&mut self) -> Result<SmvModule, ParseSmvError> {
        if !self.eat_keyword("MODULE") {
            return Err(self.error("expected MODULE"));
        }
        let name = self.expect_ident()?;
        let mut module = SmvModule::new(name);
        loop {
            if self.eat_keyword("VAR") {
                while matches!(self.peek(), Some(Tok::Ident(s)) if !is_section(s)) {
                    let vname = self.expect_ident()?;
                    self.expect(&Tok::Colon, "`:` in VAR declaration")?;
                    let sort = self.sort()?;
                    self.expect(&Tok::Semi, "`;` after VAR declaration")?;
                    module.vars.push(VarDecl { name: vname, sort });
                }
            } else if self.eat_keyword("DEFINE") {
                while matches!(self.peek(), Some(Tok::Ident(s)) if !is_section(s)) {
                    let dname = self.expect_ident()?;
                    self.expect(&Tok::Assign, "`:=` in DEFINE")?;
                    let expr = self.expr()?;
                    self.expect(&Tok::Semi, "`;` after DEFINE")?;
                    module.defines.push(Define { name: dname, expr });
                }
            } else if self.eat_keyword("ASSIGN") {
                while self.at_keyword("init") || self.at_keyword("next") {
                    let kind = self.expect_ident()?;
                    self.expect(&Tok::LParen, "`(`")?;
                    let var = self.expect_ident()?;
                    self.expect(&Tok::RParen, "`)`")?;
                    self.expect(&Tok::Assign, "`:=`")?;
                    let expr = self.expr()?;
                    self.expect(&Tok::Semi, "`;` after assignment")?;
                    let entry = module.assigns.iter_mut().find(|a| a.var == var);
                    let entry = match entry {
                        Some(e) => e,
                        None => {
                            module.assigns.push(Assign {
                                var: var.clone(),
                                init: None,
                                next: None,
                            });
                            module.assigns.last_mut().expect("just pushed")
                        }
                    };
                    if kind == "init" {
                        entry.init = Some(expr);
                    } else {
                        entry.next = Some(expr);
                    }
                }
            } else if self.eat_keyword("INVARSPEC") {
                let spec = self.expr()?;
                self.expect(&Tok::Semi, "`;` after INVARSPEC")?;
                module.invarspecs.push(spec);
            } else if self.peek().is_none() {
                break;
            } else {
                return Err(self.error(format!("unexpected token {:?}", self.peek())));
            }
        }
        Ok(module)
    }
}

fn is_section(s: &str) -> bool {
    matches!(s, "VAR" | "DEFINE" | "ASSIGN" | "INVARSPEC" | "MODULE")
}

/// Parses a full module from SMV text.
///
/// # Errors
///
/// Returns [`ParseSmvError`] with a 1-based source location on malformed
/// input.
///
/// # Examples
///
/// ```
/// use fannet_smv::parser::parse_module;
/// let m = parse_module("MODULE main\nVAR n : -1..1;\nINVARSPEC n <= 1;")?;
/// assert_eq!(m.vars.len(), 1);
/// assert_eq!(m.invarspecs.len(), 1);
/// # Ok::<(), fannet_smv::parser::ParseSmvError>(())
/// ```
pub fn parse_module(src: &str) -> Result<SmvModule, ParseSmvError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let m = p.module()?;
    Ok(m)
}

/// Parses a single expression (useful for tests and property strings).
///
/// # Errors
///
/// Returns [`ParseSmvError`] on malformed input or trailing tokens.
pub fn parse_expr(src: &str) -> Result<Expr, ParseSmvError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.peek().is_some() {
        return Err(p.error("trailing tokens after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::{print_expr, print_module};

    #[test]
    fn literals_and_vars() {
        assert_eq!(parse_expr("42").unwrap(), Expr::Int(42));
        assert_eq!(parse_expr("-42").unwrap(), Expr::Int(-42));
        assert_eq!(parse_expr("TRUE").unwrap(), Expr::Bool(true));
        assert_eq!(parse_expr("oc_n").unwrap(), Expr::var("oc_n"));
    }

    #[test]
    fn rational_folding() {
        assert_eq!(parse_expr("3/4").unwrap(), Expr::Rat(Rational::new(3, 4)));
        assert_eq!(parse_expr("-3/4").unwrap(), Expr::Rat(Rational::new(-3, 4)));
        // Non-constant division is preserved.
        assert!(matches!(
            parse_expr("x / 100").unwrap(),
            Expr::Bin(BinOp::Div, _, _)
        ));
    }

    #[test]
    fn precedence_matches_printer() {
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(print_expr(&e), "a + b * c");
        let f = parse_expr("(a + b) * c").unwrap();
        assert_eq!(print_expr(&f), "(a + b) * c");
        let g = parse_expr("a = 1 & b = 2 | !c").unwrap();
        assert_eq!(print_expr(&g), "a = 1 & b = 2 | !c");
    }

    #[test]
    fn ranges_and_sets() {
        assert_eq!(parse_expr("-5..5").unwrap(), Expr::IntRange(-5, 5));
        assert_eq!(parse_expr("0..3").unwrap(), Expr::IntRange(0, 3));
        assert_eq!(parse_expr("2..-1").unwrap(), Expr::IntRange(2, -1));
        assert_eq!(
            parse_expr("{-1, 0, 1}").unwrap(),
            Expr::Set(vec![Expr::Int(-1), Expr::Int(0), Expr::Int(1)])
        );
    }

    #[test]
    fn max_and_case() {
        let m = parse_expr("max(0, b + 2)").unwrap();
        assert!(matches!(m, Expr::Max(_, _)));
        let c = parse_expr("case L0 >= L1 : 0; TRUE : 1; esac").unwrap();
        match c {
            Expr::Case(arms) => assert_eq!(arms.len(), 2),
            other => panic!("expected case, got {other:?}"),
        }
        assert!(parse_expr("case esac").is_err());
    }

    #[test]
    fn comments_and_whitespace() {
        let m = parse_module(
            "MODULE main -- the model\nVAR\n  n : -1..1; -- noise\nINVARSPEC n >= -1;",
        )
        .unwrap();
        assert_eq!(m.vars.len(), 1);
    }

    #[test]
    fn full_module_round_trip() {
        let src = "\
MODULE main
VAR
  noise_0 : -1..1;
  flag : boolean;
  pick : {0, 2, 4};
DEFINE
  x_0 := 1234 * (100 + noise_0) / 100;
  oc := case x_0 >= 0 : 0; TRUE : 1; esac;
ASSIGN
  init(noise_0) := -1..1;
  next(noise_0) := {-1, 0, 1};
INVARSPEC oc = 0;
";
        let m = parse_module(src).unwrap();
        let printed = print_module(&m);
        let reparsed = parse_module(&printed).unwrap();
        assert_eq!(m, reparsed, "print→parse must be the identity on the AST");
    }

    #[test]
    fn error_positions() {
        let err = parse_module("MODULE main\nVAR\n  n : ???;").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("3:"), "error should point at line 3: {msg}");
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("max(1)").is_err());
        assert!(parse_expr("1 2").is_err(), "trailing tokens rejected");
        assert!(
            parse_module("VAR x : boolean;").is_err(),
            "must start with MODULE"
        );
    }

    #[test]
    fn assign_merging() {
        let m = parse_module(
            "MODULE main\nVAR n : 0..1;\nASSIGN\n  init(n) := 0;\n  next(n) := {0, 1};",
        )
        .unwrap();
        let a = m.assign("n").unwrap();
        assert_eq!(a.init, Some(Expr::Int(0)));
        assert!(matches!(a.next, Some(Expr::Set(_))));
    }
}
