//! Flattening an [`SmvModule`] into an explicit finite transition system.
//!
//! The state space is the Cartesian product of the `VAR` domains; `init`
//! assignments carve out the initial states and `next` assignments define
//! the transition relation (omitted `init`/`next` means unconstrained, as
//! in SMV). `DEFINE`s are evaluated per state to label it.
//!
//! Flattening is exponential in the number of variables — exactly the
//! state-space explosion the paper's Fig. 3 illustrates (3 states → 65
//! states, 6 → 4160 transitions for a \[0,1\] % noise range). The `max_states`
//! guard turns that explosion into a typed error instead of an OOM; the
//! branch-and-bound engine in `fannet-verify` exists because real noise
//! ranges blow far past any explicit limit.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{Expr, SmvModule, Value};
use crate::eval::{bind_defines, eval, Env, EvalError};

/// Error raised while flattening a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlattenError {
    /// The Cartesian product exceeds the configured state limit.
    TooManyStates {
        /// Number of states the product would have (saturating).
        needed: u128,
        /// The configured cap.
        limit: usize,
    },
    /// An expression failed to evaluate.
    Eval(EvalError),
    /// An `init`/`next` choice produced a value outside the variable's
    /// domain.
    OutOfDomain {
        /// The variable concerned.
        var: String,
    },
}

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlattenError::TooManyStates { needed, limit } => write!(
                f,
                "state space of {needed} states exceeds the explicit limit of {limit} \
                 (use the branch-and-bound verifier for large noise ranges)"
            ),
            FlattenError::Eval(e) => write!(f, "flattening failed: {e}"),
            FlattenError::OutOfDomain { var } => {
                write!(f, "assignment for `{var}` leaves its declared domain")
            }
        }
    }
}

impl std::error::Error for FlattenError {}

impl From<EvalError> for FlattenError {
    fn from(e: EvalError) -> Self {
        FlattenError::Eval(e)
    }
}

/// An explicit finite transition system.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionSystem {
    var_names: Vec<String>,
    states: Vec<Vec<Value>>,
    index: HashMap<Vec<Value>, usize>,
    initial: Vec<usize>,
    successors: Vec<Vec<usize>>,
    module: SmvModule,
}

impl TransitionSystem {
    /// Flattens `module`, refusing products larger than `max_states`.
    ///
    /// # Errors
    ///
    /// Returns [`FlattenError`] on state explosion, evaluation failure, or
    /// domain violations.
    pub fn from_module(module: &SmvModule, max_states: usize) -> Result<Self, FlattenError> {
        // ---- state product ---------------------------------------------
        let mut needed: u128 = 1;
        for v in &module.vars {
            needed = needed.saturating_mul(v.sort.cardinality() as u128);
        }
        if needed > max_states as u128 {
            return Err(FlattenError::TooManyStates {
                needed,
                limit: max_states,
            });
        }
        let var_names: Vec<String> = module.vars.iter().map(|v| v.name.clone()).collect();
        let domains: Vec<Vec<Value>> = module.vars.iter().map(|v| v.sort.values()).collect();
        let states = cartesian(&domains);
        let index: HashMap<Vec<Value>, usize> = states
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i))
            .collect();

        // ---- initial states ---------------------------------------------
        let mut init_choices: Vec<Vec<Value>> = Vec::with_capacity(module.vars.len());
        for (v, domain) in module.vars.iter().zip(&domains) {
            let choices = match module.assign(&v.name).and_then(|a| a.init.as_ref()) {
                None => domain.clone(),
                Some(e) => constant_choices(e, &v.name)?,
            };
            for c in &choices {
                if !domain.contains(c) {
                    return Err(FlattenError::OutOfDomain {
                        var: v.name.clone(),
                    });
                }
            }
            init_choices.push(choices);
        }
        let initial: Vec<usize> = cartesian(&init_choices)
            .into_iter()
            .map(|s| index[&s])
            .collect();

        // ---- transition relation ---------------------------------------
        let mut successors = Vec::with_capacity(states.len());
        for state in &states {
            let mut env: Env = var_names
                .iter()
                .cloned()
                .zip(state.iter().cloned())
                .collect();
            bind_defines(&module.defines, &mut env)?;
            let mut per_var: Vec<Vec<Value>> = Vec::with_capacity(module.vars.len());
            for (v, domain) in module.vars.iter().zip(&domains) {
                let choices = match module.assign(&v.name).and_then(|a| a.next.as_ref()) {
                    None => domain.clone(),
                    Some(e) => {
                        let mut vals = Vec::new();
                        for choice in e.choices() {
                            vals.push(eval(&choice, &env)?);
                        }
                        vals
                    }
                };
                for c in &choices {
                    if !domain.contains(c) {
                        return Err(FlattenError::OutOfDomain {
                            var: v.name.clone(),
                        });
                    }
                }
                per_var.push(choices);
            }
            let succ: Vec<usize> = cartesian(&per_var).into_iter().map(|s| index[&s]).collect();
            successors.push(succ);
        }

        Ok(TransitionSystem {
            var_names,
            states,
            index,
            initial,
            successors,
            module: module.clone(),
        })
    }

    /// Number of states (the full variable product).
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Total number of transitions (sum of out-degrees).
    #[must_use]
    pub fn transition_count(&self) -> u64 {
        self.successors.iter().map(|s| s.len() as u64).sum()
    }

    /// Indices of the initial states.
    #[must_use]
    pub fn initial_states(&self) -> &[usize] {
        &self.initial
    }

    /// Successor state indices of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn successors(&self, state: usize) -> &[usize] {
        &self.successors[state]
    }

    /// The variable valuation of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn state_values(&self, state: usize) -> &[Value] {
        &self.states[state]
    }

    /// Variable names, in state-vector order.
    #[must_use]
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// The environment (variables + defines) of a state.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if a define fails to evaluate in this state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn state_env(&self, state: usize) -> Result<Env, EvalError> {
        let mut env: Env = self
            .var_names
            .iter()
            .cloned()
            .zip(self.states[state].iter().cloned())
            .collect();
        bind_defines(&self.module.defines, &mut env)?;
        Ok(env)
    }

    /// The module this system was flattened from.
    #[must_use]
    pub fn module(&self) -> &SmvModule {
        &self.module
    }
}

/// `init`/`next` choice expressions must be constants in our subset when
/// used for initial states (they cannot see any prior state).
fn constant_choices(e: &Expr, var: &str) -> Result<Vec<Value>, FlattenError> {
    let empty = Env::new();
    let mut out = Vec::new();
    for choice in e.choices() {
        let v = eval(&choice, &empty).map_err(|err| {
            FlattenError::Eval(EvalError::from_message(format!(
                "init({var}) must be constant: {err}"
            )))
        })?;
        out.push(v);
    }
    Ok(out)
}

fn cartesian(domains: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = vec![Vec::new()];
    for domain in domains {
        let mut next = Vec::with_capacity(out.len() * domain.len());
        for prefix in &out {
            for v in domain {
                let mut s = prefix.clone();
                s.push(v.clone());
                next.push(s);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    #[test]
    fn paper_fig3c_dimensions_from_semantics() {
        // Six input nodes with noise domain {0, 1}: the variable product has
        // 2^6 = 64 states and, with unconstrained re-selection, 64
        // successors each → 4096 transitions. Together with the paper's
        // distinguished Initial node (see `statespace`), this yields the
        // published 65 states / 4160 transitions.
        let mut src = String::from("MODULE main\nVAR\n");
        for k in 0..6 {
            src.push_str(&format!("  n{k} : 0..1;\n"));
        }
        let m = parse_module(&src).unwrap();
        let ts = TransitionSystem::from_module(&m, 1 << 20).unwrap();
        assert_eq!(ts.state_count(), 64);
        assert_eq!(ts.transition_count(), 64 * 64);
        assert_eq!(ts.initial_states().len(), 64);
    }

    #[test]
    fn init_constrains_initial_states() {
        let m = parse_module(
            "MODULE main\nVAR a : 0..2; b : 0..1;\nASSIGN\n  init(a) := {0, 2};\n  init(b) := 1;",
        )
        .unwrap();
        let ts = TransitionSystem::from_module(&m, 100).unwrap();
        assert_eq!(ts.state_count(), 6);
        assert_eq!(ts.initial_states().len(), 2);
        for &s in ts.initial_states() {
            let vals = ts.state_values(s);
            assert_ne!(vals[0], Value::int(1));
            assert_eq!(vals[1], Value::int(1));
        }
    }

    #[test]
    fn next_constrains_transitions() {
        // A counter that can only stay or step up to its cap.
        let m = parse_module(
            "MODULE main\nVAR c : 0..2;\nASSIGN\n  init(c) := 0;\n  next(c) := case c < 2 : c + 1; TRUE : c; esac;",
        )
        .unwrap();
        let ts = TransitionSystem::from_module(&m, 100).unwrap();
        assert_eq!(ts.state_count(), 3);
        // Deterministic next → exactly one successor per state.
        assert_eq!(ts.transition_count(), 3);
        let idx0 = ts.initial_states()[0];
        assert_eq!(ts.state_values(idx0), &[Value::int(0)]);
        let s1 = ts.successors(idx0)[0];
        assert_eq!(ts.state_values(s1), &[Value::int(1)]);
        let s2 = ts.successors(s1)[0];
        assert_eq!(ts.state_values(s2), &[Value::int(2)]);
        assert_eq!(ts.successors(s2), &[s2], "cap state self-loops");
    }

    #[test]
    fn defines_label_states() {
        let m = parse_module("MODULE main\nVAR n : -1..1;\nDEFINE doubled := 2 * n;").unwrap();
        let ts = TransitionSystem::from_module(&m, 100).unwrap();
        for s in 0..ts.state_count() {
            let env = ts.state_env(s).unwrap();
            let n = env["n"].as_rat().unwrap();
            let d = env["doubled"].as_rat().unwrap();
            assert_eq!(d, n * fannet_numeric::Rational::from_integer(2));
        }
    }

    #[test]
    fn state_limit_enforced() {
        let mut src = String::from("MODULE main\nVAR\n");
        for k in 0..10 {
            src.push_str(&format!("  n{k} : 0..9;\n"));
        }
        let m = parse_module(&src).unwrap();
        let err = TransitionSystem::from_module(&m, 1 << 20).unwrap_err();
        match err {
            FlattenError::TooManyStates { needed, .. } => {
                assert_eq!(needed, 10u128.pow(10));
            }
            other => panic!("expected TooManyStates, got {other:?}"),
        }
    }

    #[test]
    fn out_of_domain_assignment_rejected() {
        let m = parse_module("MODULE main\nVAR c : 0..1;\nASSIGN\n  next(c) := c + 5;").unwrap();
        let err = TransitionSystem::from_module(&m, 100).unwrap_err();
        assert!(matches!(err, FlattenError::OutOfDomain { .. }));
        let m2 = parse_module("MODULE main\nVAR c : 0..1;\nASSIGN\n  init(c) := 7;").unwrap();
        assert!(matches!(
            TransitionSystem::from_module(&m2, 100),
            Err(FlattenError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn boolean_variables_flatten() {
        let m = parse_module("MODULE main\nVAR b : boolean;").unwrap();
        let ts = TransitionSystem::from_module(&m, 10).unwrap();
        assert_eq!(ts.state_count(), 2);
        assert_eq!(ts.var_names(), &["b".to_string()]);
    }
}
