//! Abstract syntax for the SMV subset used by FANNet's behaviour
//! extraction.
//!
//! The paper translates the trained network into "the SMV language" of
//! nuXmv (Fig. 2). This module models the fragment that translation needs:
//!
//! * `MODULE main` with `VAR`, `DEFINE`, `ASSIGN` and `INVARSPEC` sections;
//! * finite integer variable domains (ranges and explicit sets) — the noise
//!   variables;
//! * arithmetic over exact rationals (nuXmv's `real`), `max`, comparison,
//!   boolean connectives and `case … esac` — the network equations;
//! * non-deterministic `init`/`next` assignments — the noise selection.
//!
//! Deviations from full SMV are purely restrictive except one notational
//! convenience: rational constants print as `num/den` (nuXmv would accept
//! the equivalent `f'num/den`).

use fannet_numeric::Rational;
use serde::{Deserialize, Serialize};

/// A variable's finite domain.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sort {
    /// `boolean`.
    Boolean,
    /// Integer range `lo..hi` (inclusive).
    Range(i64, i64),
    /// Explicit integer enumeration `{v1, v2, …}`.
    IntSet(Vec<i64>),
}

impl Sort {
    /// The concrete values of the domain, in declaration order.
    #[must_use]
    pub fn values(&self) -> Vec<Value> {
        match self {
            Sort::Boolean => vec![Value::Bool(false), Value::Bool(true)],
            Sort::Range(lo, hi) => (*lo..=*hi).map(Value::int).collect(),
            Sort::IntSet(vs) => vs.iter().map(|&v| Value::int(v)).collect(),
        }
    }

    /// Number of values in the domain.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        match self {
            Sort::Boolean => 2,
            Sort::Range(lo, hi) => usize::try_from(hi - lo + 1).unwrap_or(0),
            Sort::IntSet(vs) => vs.len(),
        }
    }
}

/// A runtime value: exact rational or boolean.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// Numeric value (integers are rationals with denominator 1).
    Rat(Rational),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Integer shorthand.
    #[must_use]
    pub fn int(v: i64) -> Self {
        Value::Rat(Rational::from_integer(i128::from(v)))
    }

    /// The rational payload, if numeric.
    #[must_use]
    pub fn as_rat(&self) -> Option<Rational> {
        match self {
            Value::Rat(r) => Some(*r),
            Value::Bool(_) => None,
        }
    }

    /// The boolean payload, if boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Rat(_) => None,
        }
    }
}

/// Binary operators of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (exact rational division)
    Div,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&`
    And,
    /// `|`
    Or,
}

/// An expression of the SMV subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Rational literal (printed `num/den`).
    Rat(Rational),
    /// Boolean literal (`TRUE`/`FALSE`).
    Bool(bool),
    /// Variable or DEFINE reference.
    Var(String),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Boolean negation (`!`).
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `max(a, b)`.
    Max(Box<Expr>, Box<Expr>),
    /// `case c1 : e1; …; TRUE : eN; esac`.
    Case(Vec<(Expr, Expr)>),
    /// Non-deterministic choice `{e1, e2, …}` (assign right-hand sides).
    Set(Vec<Expr>),
    /// Non-deterministic integer range `lo..hi` (assign right-hand sides).
    IntRange(i64, i64),
}

// Associated constructors, not operator impls: these build AST nodes from
// owned children and are called by name in the translator.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Variable reference shorthand.
    #[must_use]
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Var(name.into())
    }

    /// `a + b`.
    #[must_use]
    pub fn add(a: Expr, b: Expr) -> Self {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// `a * b`.
    #[must_use]
    pub fn mul(a: Expr, b: Expr) -> Self {
        Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }

    /// `a / b`.
    #[must_use]
    pub fn div(a: Expr, b: Expr) -> Self {
        Expr::Bin(BinOp::Div, Box::new(a), Box::new(b))
    }

    /// `a = b`.
    #[must_use]
    pub fn eq(a: Expr, b: Expr) -> Self {
        Expr::Bin(BinOp::Eq, Box::new(a), Box::new(b))
    }

    /// `a >= b`.
    #[must_use]
    pub fn ge(a: Expr, b: Expr) -> Self {
        Expr::Bin(BinOp::Ge, Box::new(a), Box::new(b))
    }

    /// `max(a, b)`.
    #[must_use]
    pub fn max(a: Expr, b: Expr) -> Self {
        Expr::Max(Box::new(a), Box::new(b))
    }

    /// All nondeterministic choices this expression denotes when used as an
    /// assignment right-hand side (deterministic expressions denote
    /// themselves).
    #[must_use]
    pub fn choices(&self) -> Vec<Expr> {
        match self {
            Expr::Set(es) => es.clone(),
            Expr::IntRange(lo, hi) => (*lo..=*hi).map(Expr::Int).collect(),
            other => vec![other.clone()],
        }
    }
}

/// A state variable declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Finite domain.
    pub sort: Sort,
}

/// A `DEFINE name := expr;` item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Define {
    /// Defined symbol.
    pub name: String,
    /// Definition body (may reference variables and earlier defines).
    pub expr: Expr,
}

/// An `ASSIGN` item for one variable: `init(v) := e;` and
/// `next(v) := e;` (either may be omitted; omitted means "any domain
/// value", SMV's implicit nondeterminism).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assign {
    /// Target variable name.
    pub var: String,
    /// Initial-state constraint, if any.
    pub init: Option<Expr>,
    /// Transition constraint, if any.
    pub next: Option<Expr>,
}

/// A `MODULE main` of the subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmvModule {
    /// Module name (conventionally `main`).
    pub name: String,
    /// State variables.
    pub vars: Vec<VarDecl>,
    /// Defines, in dependency order.
    pub defines: Vec<Define>,
    /// Assignments.
    pub assigns: Vec<Assign>,
    /// `INVARSPEC` properties.
    pub invarspecs: Vec<Expr>,
}

impl SmvModule {
    /// An empty module with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        SmvModule {
            name: name.into(),
            vars: Vec::new(),
            defines: Vec::new(),
            assigns: Vec::new(),
            invarspecs: Vec::new(),
        }
    }

    /// Looks up a variable declaration by name.
    #[must_use]
    pub fn var(&self, name: &str) -> Option<&VarDecl> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Looks up a define by name.
    #[must_use]
    pub fn define(&self, name: &str) -> Option<&Define> {
        self.defines.iter().find(|d| d.name == name)
    }

    /// Looks up the assignment block for a variable.
    #[must_use]
    pub fn assign(&self, var: &str) -> Option<&Assign> {
        self.assigns.iter().find(|a| a.var == var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_values_and_cardinality() {
        assert_eq!(Sort::Boolean.cardinality(), 2);
        assert_eq!(Sort::Range(-2, 2).cardinality(), 5);
        assert_eq!(Sort::Range(-2, 2).values().len(), 5);
        assert_eq!(Sort::IntSet(vec![0, 5, 9]).cardinality(), 3);
        assert_eq!(Sort::IntSet(vec![7]).values(), vec![Value::int(7)]);
        assert_eq!(
            Sort::Boolean.values(),
            vec![Value::Bool(false), Value::Bool(true)]
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::int(3).as_rat(), Some(Rational::from_integer(3)));
        assert_eq!(Value::int(3).as_bool(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Bool(true).as_rat(), None);
    }

    #[test]
    fn expr_builders() {
        let e = Expr::add(Expr::var("a"), Expr::Int(1));
        assert_eq!(
            e,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Var("a".into())),
                Box::new(Expr::Int(1))
            )
        );
        assert!(matches!(
            Expr::max(Expr::Int(0), Expr::var("z")),
            Expr::Max(_, _)
        ));
    }

    #[test]
    fn choices_expand_nondeterminism() {
        assert_eq!(Expr::Int(5).choices(), vec![Expr::Int(5)]);
        assert_eq!(
            Expr::Set(vec![Expr::Int(1), Expr::Int(2)]).choices().len(),
            2
        );
        assert_eq!(Expr::IntRange(-1, 1).choices().len(), 3);
        assert_eq!(Expr::IntRange(-1, 1).choices()[0], Expr::Int(-1));
    }

    #[test]
    fn module_lookups() {
        let mut m = SmvModule::new("main");
        m.vars.push(VarDecl {
            name: "n0".into(),
            sort: Sort::Range(-5, 5),
        });
        m.defines.push(Define {
            name: "x0".into(),
            expr: Expr::Int(42),
        });
        m.assigns.push(Assign {
            var: "n0".into(),
            init: Some(Expr::IntRange(-5, 5)),
            next: None,
        });
        assert!(m.var("n0").is_some());
        assert!(m.var("n1").is_none());
        assert!(m.define("x0").is_some());
        assert!(m.assign("n0").is_some());
        assert_eq!(m.name, "main");
    }
}
