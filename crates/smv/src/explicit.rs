//! Explicit-state invariant checking (`INVARSPEC`) over a flattened
//! transition system.
//!
//! This is the "model checker" half of the nuXmv substitute: breadth-first
//! reachability from the initial states, evaluating the invariant in every
//! reached state and reconstructing a counterexample trace on violation —
//! the standard algorithm BDD/SAT engines implement symbolically.

use std::collections::VecDeque;

use crate::ast::{Expr, Value};
use crate::eval::{eval, EvalError};
use crate::flatten::TransitionSystem;

/// Result of checking one `INVARSPEC`.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantResult {
    /// The property holds in every reachable state; `reachable` is the
    /// number of states explored (the proof's coverage).
    Holds {
        /// States reached from the initial set.
        reachable: usize,
    },
    /// A reachable state violates the property; the trace runs from an
    /// initial state (index 0 of the vector) to the violating state.
    Violated {
        /// State indices along a shortest path initial → violation.
        trace: Vec<usize>,
    },
}

impl InvariantResult {
    /// `true` when the property holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, InvariantResult::Holds { .. })
    }

    /// The violating trace, if any.
    #[must_use]
    pub fn trace(&self) -> Option<&[usize]> {
        match self {
            InvariantResult::Holds { .. } => None,
            InvariantResult::Violated { trace } => Some(trace),
        }
    }
}

/// Checks `AG spec` (SMV `INVARSPEC spec`) on the flattened system.
///
/// # Errors
///
/// Returns [`EvalError`] if the spec fails to evaluate or is non-boolean in
/// some state.
pub fn check_invariant(ts: &TransitionSystem, spec: &Expr) -> Result<InvariantResult, EvalError> {
    let mut visited = vec![false; ts.state_count()];
    let mut parent: Vec<Option<usize>> = vec![None; ts.state_count()];
    let mut queue = VecDeque::new();

    let violated_at = |state: usize| -> Result<bool, EvalError> {
        let env = ts.state_env(state)?;
        match eval(spec, &env)? {
            Value::Bool(ok) => Ok(!ok),
            Value::Rat(_) => Err(EvalError::from_message(
                "INVARSPEC must evaluate to a boolean".to_string(),
            )),
        }
    };

    for &s in ts.initial_states() {
        if !visited[s] {
            visited[s] = true;
            queue.push_back(s);
        }
    }

    let mut reachable = 0usize;
    while let Some(s) = queue.pop_front() {
        reachable += 1;
        if violated_at(s)? {
            // Reconstruct the shortest path back to an initial state.
            let mut trace = vec![s];
            let mut cur = s;
            while let Some(p) = parent[cur] {
                trace.push(p);
                cur = p;
            }
            trace.reverse();
            return Ok(InvariantResult::Violated { trace });
        }
        for &t in ts.successors(s) {
            if !visited[t] {
                visited[t] = true;
                parent[t] = Some(s);
                queue.push_back(t);
            }
        }
    }
    Ok(InvariantResult::Holds { reachable })
}

/// Checks every `INVARSPEC` of the flattened module, in order.
///
/// # Errors
///
/// Returns [`EvalError`] if any spec fails to evaluate.
pub fn check_all_invariants(ts: &TransitionSystem) -> Result<Vec<InvariantResult>, EvalError> {
    ts.module()
        .invarspecs
        .clone()
        .iter()
        .map(|spec| check_invariant(ts, spec))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_module};

    fn system(src: &str) -> TransitionSystem {
        TransitionSystem::from_module(&parse_module(src).unwrap(), 1 << 16).unwrap()
    }

    #[test]
    fn invariant_holds_on_safe_counter() {
        let ts = system(
            "MODULE main\nVAR c : 0..3;\nASSIGN\n  init(c) := 0;\n  next(c) := case c < 3 : c + 1; TRUE : c; esac;",
        );
        let res = check_invariant(&ts, &parse_expr("c <= 3").unwrap()).unwrap();
        assert!(res.holds());
        match res {
            InvariantResult::Holds { reachable } => assert_eq!(reachable, 4),
            InvariantResult::Violated { .. } => unreachable!(),
        }
    }

    #[test]
    fn violation_produces_shortest_trace() {
        let ts = system(
            "MODULE main\nVAR c : 0..5;\nASSIGN\n  init(c) := 0;\n  next(c) := case c < 5 : c + 1; TRUE : c; esac;",
        );
        let res = check_invariant(&ts, &parse_expr("c < 3").unwrap()).unwrap();
        let trace = res.trace().expect("c reaches 3");
        // Path 0 → 1 → 2 → 3: four states, last one violating.
        assert_eq!(trace.len(), 4);
        let last = *trace.last().unwrap();
        assert_eq!(ts.state_values(last), &[Value::int(3)]);
        let first = trace[0];
        assert!(ts.initial_states().contains(&first));
        // Consecutive trace states are really connected.
        for w in trace.windows(2) {
            assert!(ts.successors(w[0]).contains(&w[1]));
        }
    }

    #[test]
    fn initial_state_violation_gives_unit_trace() {
        let ts = system("MODULE main\nVAR n : 0..1;\nASSIGN\n  init(n) := 1;");
        let res = check_invariant(&ts, &parse_expr("n = 0").unwrap()).unwrap();
        assert_eq!(res.trace().map(<[usize]>::len), Some(1));
    }

    #[test]
    fn unreachable_violations_do_not_count() {
        // Domain contains 2 but it is never reachable.
        let ts = system("MODULE main\nVAR c : 0..2;\nASSIGN\n  init(c) := 0;\n  next(c) := 0;");
        let res = check_invariant(&ts, &parse_expr("c != 2").unwrap()).unwrap();
        assert!(res.holds());
        match res {
            InvariantResult::Holds { reachable } => assert_eq!(reachable, 1),
            InvariantResult::Violated { .. } => unreachable!(),
        }
    }

    #[test]
    fn non_boolean_spec_is_error() {
        let ts = system("MODULE main\nVAR c : 0..1;");
        assert!(check_invariant(&ts, &parse_expr("c + 1").unwrap()).is_err());
    }

    #[test]
    fn check_all_runs_every_spec() {
        let ts = system(
            "MODULE main\nVAR c : 0..1;\nASSIGN\n  init(c) := 0;\n  next(c) := c;\nINVARSPEC c = 0;\nINVARSPEC c = 1;",
        );
        let results = check_all_invariants(&ts).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].holds());
        assert!(!results[1].holds());
    }
}
