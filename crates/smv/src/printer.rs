//! Pretty-printer emitting SMV text from the AST.
//!
//! Output is accepted back by [`crate::parser`] (round-trip tested) and is
//! close enough to nuXmv's input language that the generated models document
//! exactly what the paper's "translation to SMV" step produces.

use std::fmt::Write as _;

use crate::ast::{Assign, BinOp, Expr, SmvModule, Sort};

/// Operator precedence; higher binds tighter.
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Mul | BinOp::Div => 5,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::And => 2,
        BinOp::Or => 1,
    }
}

fn op_token(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Eq => "=",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&",
        BinOp::Or => "|",
    }
}

/// Renders an expression as SMV text.
///
/// # Examples
///
/// ```
/// use fannet_smv::ast::Expr;
/// use fannet_smv::printer::print_expr;
///
/// let e = Expr::add(Expr::mul(Expr::Int(2), Expr::var("n")), Expr::Int(1));
/// assert_eq!(print_expr(&e), "2 * n + 1");
/// let f = Expr::mul(Expr::Int(2), Expr::add(Expr::var("n"), Expr::Int(1)));
/// assert_eq!(print_expr(&f), "2 * (n + 1)");
/// ```
#[must_use]
pub fn print_expr(expr: &Expr) -> String {
    print_prec(expr, 0)
}

fn print_prec(expr: &Expr, parent: u8) -> String {
    match expr {
        Expr::Int(v) => v.to_string(),
        Expr::Rat(r) => {
            if r.is_integer() {
                r.to_string()
            } else if r.is_negative() {
                // Keep unary minus outside the fraction: -(a/b).
                format!("-{}/{}", -r.numer(), r.denom())
            } else {
                format!("{}/{}", r.numer(), r.denom())
            }
        }
        Expr::Bool(true) => "TRUE".to_string(),
        Expr::Bool(false) => "FALSE".to_string(),
        Expr::Var(name) => name.clone(),
        Expr::Neg(inner) => {
            let s = format!("-{}", print_prec(inner, 6));
            if parent > 5 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Not(inner) => {
            let s = format!("!{}", print_prec(inner, 6));
            if parent > 5 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Bin(op, a, b) => {
            let p = precedence(*op);
            // Left-associative: right child needs strictly higher context.
            let s = format!(
                "{} {} {}",
                print_prec(a, p),
                op_token(*op),
                print_prec(b, p + 1)
            );
            if p < parent {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Max(a, b) => format!("max({}, {})", print_prec(a, 0), print_prec(b, 0)),
        Expr::Case(arms) => {
            let mut s = String::from("case ");
            for (cond, val) in arms {
                let _ = write!(s, "{} : {}; ", print_prec(cond, 0), print_prec(val, 0));
            }
            s.push_str("esac");
            s
        }
        Expr::Set(items) => {
            let inner: Vec<String> = items.iter().map(|e| print_prec(e, 0)).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::IntRange(lo, hi) => format!("{lo}..{hi}"),
    }
}

fn print_sort(sort: &Sort) -> String {
    match sort {
        Sort::Boolean => "boolean".to_string(),
        Sort::Range(lo, hi) => format!("{lo}..{hi}"),
        Sort::IntSet(vs) => {
            let inner: Vec<String> = vs.iter().map(i64::to_string).collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

/// Renders a whole module as SMV text.
#[must_use]
pub fn print_module(module: &SmvModule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "MODULE {}", module.name);
    if !module.vars.is_empty() {
        let _ = writeln!(out, "VAR");
        for v in &module.vars {
            let _ = writeln!(out, "  {} : {};", v.name, print_sort(&v.sort));
        }
    }
    if !module.defines.is_empty() {
        let _ = writeln!(out, "DEFINE");
        for d in &module.defines {
            let _ = writeln!(out, "  {} := {};", d.name, print_expr(&d.expr));
        }
    }
    if !module.assigns.is_empty() {
        let _ = writeln!(out, "ASSIGN");
        for Assign { var, init, next } in &module.assigns {
            if let Some(e) = init {
                let _ = writeln!(out, "  init({var}) := {};", print_expr(e));
            }
            if let Some(e) = next {
                let _ = writeln!(out, "  next({var}) := {};", print_expr(e));
            }
        }
    }
    for spec in &module.invarspecs {
        let _ = writeln!(out, "INVARSPEC {};", print_expr(spec));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Define, VarDecl};
    use fannet_numeric::Rational;

    #[test]
    fn literals() {
        assert_eq!(print_expr(&Expr::Int(-3)), "-3");
        assert_eq!(print_expr(&Expr::Bool(true)), "TRUE");
        assert_eq!(print_expr(&Expr::Bool(false)), "FALSE");
        assert_eq!(print_expr(&Expr::Rat(Rational::new(3, 4))), "3/4");
        assert_eq!(print_expr(&Expr::Rat(Rational::new(-3, 4))), "-3/4");
        assert_eq!(print_expr(&Expr::Rat(Rational::from_integer(7))), "7");
        assert_eq!(print_expr(&Expr::var("oc")), "oc");
    }

    #[test]
    fn precedence_parenthesization() {
        // (a + b) * c needs parens; a + b * c does not.
        let sum = Expr::add(Expr::var("a"), Expr::var("b"));
        let prod = Expr::mul(sum.clone(), Expr::var("c"));
        assert_eq!(print_expr(&prod), "(a + b) * c");
        let plain = Expr::add(Expr::var("a"), Expr::mul(Expr::var("b"), Expr::var("c")));
        assert_eq!(print_expr(&plain), "a + b * c");
    }

    #[test]
    fn left_associativity() {
        // a - b - c means (a - b) - c; a - (b - c) needs parens.
        let l = Expr::Bin(
            BinOp::Sub,
            Box::new(Expr::Bin(
                BinOp::Sub,
                Box::new(Expr::var("a")),
                Box::new(Expr::var("b")),
            )),
            Box::new(Expr::var("c")),
        );
        assert_eq!(print_expr(&l), "a - b - c");
        let r = Expr::Bin(
            BinOp::Sub,
            Box::new(Expr::var("a")),
            Box::new(Expr::Bin(
                BinOp::Sub,
                Box::new(Expr::var("b")),
                Box::new(Expr::var("c")),
            )),
        );
        assert_eq!(print_expr(&r), "a - (b - c)");
    }

    #[test]
    fn boolean_structure() {
        let e = Expr::Bin(
            BinOp::Or,
            Box::new(Expr::Bin(
                BinOp::And,
                Box::new(Expr::eq(Expr::var("oc"), Expr::Int(1))),
                Box::new(Expr::Bool(true)),
            )),
            Box::new(Expr::Not(Box::new(Expr::var("e0")))),
        );
        assert_eq!(print_expr(&e), "oc = 1 & TRUE | !e0");
    }

    #[test]
    fn max_and_case() {
        let m = Expr::max(Expr::Int(0), Expr::var("n1"));
        assert_eq!(print_expr(&m), "max(0, n1)");
        let c = Expr::Case(vec![
            (Expr::ge(Expr::var("L0"), Expr::var("L1")), Expr::Int(0)),
            (Expr::Bool(true), Expr::Int(1)),
        ]);
        assert_eq!(print_expr(&c), "case L0 >= L1 : 0; TRUE : 1; esac");
    }

    #[test]
    fn sets_and_ranges() {
        assert_eq!(
            print_expr(&Expr::Set(vec![Expr::Int(-1), Expr::Int(0), Expr::Int(1)])),
            "{-1, 0, 1}"
        );
        assert_eq!(print_expr(&Expr::IntRange(-5, 5)), "-5..5");
    }

    #[test]
    fn whole_module() {
        let mut m = SmvModule::new("main");
        m.vars.push(VarDecl {
            name: "noise_0".into(),
            sort: Sort::Range(-1, 1),
        });
        m.defines.push(Define {
            name: "x_0".into(),
            expr: Expr::div(
                Expr::mul(
                    Expr::Int(1234),
                    Expr::add(Expr::Int(100), Expr::var("noise_0")),
                ),
                Expr::Int(100),
            ),
        });
        m.assigns.push(Assign {
            var: "noise_0".into(),
            init: Some(Expr::IntRange(-1, 1)),
            next: Some(Expr::IntRange(-1, 1)),
        });
        m.invarspecs.push(Expr::eq(Expr::var("oc"), Expr::Int(1)));
        let text = print_module(&m);
        assert!(text.starts_with("MODULE main\n"));
        assert!(text.contains("VAR\n  noise_0 : -1..1;"));
        assert!(text.contains("DEFINE\n  x_0 := 1234 * (100 + noise_0) / 100;"));
        assert!(text.contains("ASSIGN\n  init(noise_0) := -1..1;"));
        assert!(text.contains("next(noise_0) := -1..1;"));
        assert!(text.contains("INVARSPEC oc = 1;"));
    }
}
