//! # fannet-smv
//!
//! The model-checking front end of the FANNet (DATE 2020) reproduction —
//! the half of the nuXmv substitute that deals with *models* (the other
//! half, the decision procedure, is `fannet-verify`; DESIGN.md §2 gives the
//! substitution argument).
//!
//! * [`ast`] / [`printer`] / [`parser`] — an SMV-language subset with a
//!   round-tripping pretty-printer, rich enough for the paper's network
//!   translation.
//! * [`nn_to_smv`] — behaviour extraction: compiles a trained rational
//!   network, a test input and a noise range into a `MODULE main` whose
//!   `INVARSPEC` is the paper's property P2 (P1 at zero noise).
//! * [`eval`] — exact rational evaluation of SMV expressions.
//! * [`flatten`] — explicit transition systems from modules (with a
//!   state-explosion guard).
//! * [`explicit`] — BFS invariant checking with counterexample traces.
//! * [`statespace`] — the paper-style FSM accounting that reproduces
//!   Fig. 3's *3 states / 6 transitions* → *65 states / 4160 transitions*
//!   growth.
//!
//! ## Example: translate and print a model
//!
//! ```
//! use fannet_numeric::Rational;
//! use fannet_nn::{Activation, DenseLayer, Network, Readout};
//! use fannet_smv::{nn_to_smv, printer};
//! use fannet_tensor::Matrix;
//!
//! let r = |n: i128| Rational::from_integer(n);
//! let net = Network::new(vec![DenseLayer::new(
//!     Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)]])?,
//!     vec![r(0), r(0)],
//!     Activation::Identity,
//! )?], Readout::MaxPool)?;
//!
//! let module = nn_to_smv::network_to_smv(
//!     &net,
//!     &[r(120), r(80)],
//!     0,
//!     &nn_to_smv::TranslationConfig::symmetric(5),
//! );
//! let text = printer::print_module(&module);
//! assert!(text.contains("INVARSPEC oc = 0;"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod eval;
pub mod explicit;
pub mod flatten;
pub mod nn_to_smv;
pub mod parser;
pub mod printer;
pub mod statespace;

pub use ast::{Expr, SmvModule};
pub use explicit::InvariantResult;
pub use flatten::TransitionSystem;
pub use statespace::PaperFsm;
