//! Paper-style FSM state/transition accounting (Fig. 3b/3c).
//!
//! The paper draws the analysed network as an FSM with one distinguished
//! **Initial** node plus one node per "configuration" and reports, for the
//! 5-input (plus bias) leukemia network:
//!
//! * without noise: **3 states, 6 transitions** (Initial + the two decision
//!   states L0/L1);
//! * with noise range [0, 1] % on all six input-layer nodes: **65 states,
//!   4160 transitions** (Initial + 2⁶ = 64 noise configurations).
//!
//! The transition counts follow from the FSM semantics: the Initial node
//! fans out to every configuration (the nondeterministic `init`), and each
//! configuration steps to every configuration including itself (the
//! nondeterministic `next` re-selects the noise each step):
//!
//! ```text
//! states      = 1 + n
//! transitions = n + n²      (n = number of configurations)
//! ```
//!
//! `n = 2`: 3 states, 6 transitions. `n = 64`: 65 states, 4160 transitions —
//! exactly the published numbers. [`PaperFsm`] implements this accounting
//! and cross-checks it against the flattened SMV semantics in tests.

use serde::{Deserialize, Serialize};

/// Paper-style FSM size accounting over `n` configuration states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PaperFsm {
    configurations: u128,
}

impl PaperFsm {
    /// FSM whose configurations are the output decisions of a noise-free
    /// network (`labels` of them) — Fig. 3b.
    #[must_use]
    pub fn without_noise(labels: usize) -> Self {
        PaperFsm {
            configurations: labels as u128,
        }
    }

    /// FSM whose configurations are the noise assignments: one value from
    /// `domain_per_node` for each of `nodes` input-layer nodes — Fig. 3c.
    ///
    /// For the paper's [0, 1] % range, `domain_per_node` = 2 (the integer
    /// percents {0, 1}) and `nodes` = 6 (five inputs plus the bias node).
    #[must_use]
    pub fn with_noise(domain_per_node: usize, nodes: usize) -> Self {
        PaperFsm {
            configurations: (domain_per_node as u128).saturating_pow(nodes as u32),
        }
    }

    /// FSM over an explicit per-node symmetric integer range `±delta`
    /// (domain size `2·delta + 1` per node).
    #[must_use]
    pub fn with_symmetric_noise(delta: u32, nodes: usize) -> Self {
        Self::with_noise(2 * delta as usize + 1, nodes)
    }

    /// Number of configuration states (excluding Initial).
    #[must_use]
    pub const fn configurations(&self) -> u128 {
        self.configurations
    }

    /// Total FSM states: Initial + configurations (saturating).
    #[must_use]
    pub fn states(&self) -> u128 {
        self.configurations.saturating_add(1)
    }

    /// Total FSM transitions: Initial fan-out + complete digraph with
    /// self-loops over the configurations (saturating).
    #[must_use]
    pub fn transitions(&self) -> u128 {
        self.configurations
            .saturating_mul(self.configurations)
            .saturating_add(self.configurations)
    }
}

/// One row of the paper's state-space growth narrative: FSM size as a
/// function of the symmetric noise range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrowthRow {
    /// The symmetric range `±delta` (integer percent).
    pub delta: u32,
    /// FSM states.
    pub states: u128,
    /// FSM transitions.
    pub transitions: u128,
}

/// Tabulates FSM growth for `±delta` over each `delta` in `deltas`, on
/// `nodes` input-layer nodes — the "state space expands exponentially with
/// noise" series of Fig. 3.
#[must_use]
pub fn growth_table(deltas: &[u32], nodes: usize) -> Vec<GrowthRow> {
    deltas
        .iter()
        .map(|&delta| {
            let fsm = PaperFsm::with_symmetric_noise(delta, nodes);
            GrowthRow {
                delta,
                states: fsm.states(),
                transitions: fsm.transitions(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::TransitionSystem;
    use crate::parser::parse_module;

    #[test]
    fn fig3b_published_numbers() {
        let fsm = PaperFsm::without_noise(2);
        assert_eq!(fsm.states(), 3);
        assert_eq!(fsm.transitions(), 6);
    }

    #[test]
    fn fig3c_published_numbers() {
        // Noise range [0, 1]% ⇒ domain {0, 1} per node, 6 input-layer nodes.
        let fsm = PaperFsm::with_noise(2, 6);
        assert_eq!(fsm.configurations(), 64);
        assert_eq!(fsm.states(), 65);
        assert_eq!(fsm.transitions(), 4160);
    }

    #[test]
    fn accounting_matches_flattened_smv_semantics() {
        // The formula must agree with the actual SMV transition system:
        // configurations = flattened states, and
        // transitions = |init| (Initial fan-out) + flattened transitions.
        let mut src = String::from("MODULE main\nVAR\n");
        for k in 0..6 {
            src.push_str(&format!("  n{k} : 0..1;\n"));
        }
        let ts = TransitionSystem::from_module(&parse_module(&src).unwrap(), 1 << 20).unwrap();
        let fsm = PaperFsm::with_noise(2, 6);
        assert_eq!(fsm.configurations(), ts.state_count() as u128);
        assert_eq!(
            fsm.transitions(),
            ts.initial_states().len() as u128 + u128::from(ts.transition_count())
        );
    }

    #[test]
    fn symmetric_range_domains() {
        // ±1% ⇒ {-1, 0, 1} ⇒ 3 values per node.
        let fsm = PaperFsm::with_symmetric_noise(1, 5);
        assert_eq!(fsm.configurations(), 243);
        assert_eq!(fsm.states(), 244);
        let zero = PaperFsm::with_symmetric_noise(0, 5);
        assert_eq!(zero.configurations(), 1);
    }

    #[test]
    fn growth_is_exponential() {
        let rows = growth_table(&[0, 1, 2, 5, 11], 5);
        assert_eq!(rows.len(), 5);
        for w in rows.windows(2) {
            assert!(w[1].states > w[0].states);
            assert!(w[1].transitions > w[0].transitions);
        }
        // 11% on 5 nodes: 23^5 configurations.
        assert_eq!(rows[4].states, 23u128.pow(5) + 1);
        // Exponent check: doubling the per-node domain multiplies
        // configurations by 2^nodes.
        let a = PaperFsm::with_noise(2, 5);
        let b = PaperFsm::with_noise(4, 5);
        assert_eq!(b.configurations(), a.configurations() * 32);
    }

    #[test]
    fn saturation_does_not_panic() {
        let huge = PaperFsm::with_noise(usize::MAX, 4);
        assert!(huge.states() > 0);
    }
}
