//! Property-based tests for the verification engine.
//!
//! These pin the two claims the whole reproduction rests on:
//!
//! 1. **Soundness of the abstraction** — interval propagation encloses the
//!    exact output of every grid point of every region, for arbitrary
//!    quantized ReLU networks;
//! 2. **Equivalence of the counterexample engines** — the single-pass
//!    collector, the paper-faithful P3 restart loop and brute-force grid
//!    filtering all produce the same counterexample sets.

use fannet_nn::{init, quantize, Activation, Network};
use fannet_numeric::Rational;
use fannet_verify::bab::{collect_region_counterexamples, find_counterexample};
use fannet_verify::enumerate::CounterexampleEnumerator;
use fannet_verify::exact::classify_noisy;
use fannet_verify::propagate::output_intervals;
use fannet_verify::region::NoiseRegion;
use proptest::prelude::*;
use rand::SeedableRng;
use std::collections::HashSet;

fn random_net(seed: u64, shape: &[usize]) -> Network<Rational> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let net = init::fresh_network(&mut rng, shape, Activation::ReLU, init::Init::Uniform(1.0));
    quantize::to_rational(&net, 10)
}

fn rational_point(values: &[i64]) -> Vec<Rational> {
    values
        .iter()
        .map(|&v| Rational::from_integer(i128::from(v)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every concrete output of every grid point lies inside the interval
    /// enclosure — the soundness lemma behind all pruning.
    #[test]
    fn enclosure_sound_on_random_networks(
        seed in 0u64..1000,
        x0 in -50i64..50,
        x1 in -50i64..50,
        delta in 0i64..4,
    ) {
        let net = random_net(seed, &[2, 4, 2]);
        let x = rational_point(&[x0, x1]);
        let region = NoiseRegion::symmetric(delta, 2);
        let enclosure = output_intervals(&net, &x, &region).expect("widths");
        for nv in region.iter_points() {
            let out = net.forward(&nv.apply(&x)).expect("width");
            for (iv, v) in enclosure.iter().zip(&out) {
                prop_assert!(iv.contains(*v), "{v} escapes {iv} under {nv}");
            }
        }
    }

    /// The single-pass collector finds exactly the brute-force
    /// counterexample set (uncapped).
    #[test]
    fn collector_matches_bruteforce(
        seed in 0u64..1000,
        x0 in -40i64..40,
        x1 in -40i64..40,
        delta in 1i64..4,
    ) {
        let net = random_net(seed, &[2, 3, 2]);
        let x = rational_point(&[x0, x1]);
        let label = net.classify(&x).expect("width");
        let region = NoiseRegion::symmetric(delta, 2);

        let (found, exhausted, _) =
            collect_region_counterexamples(&net, &x, label, &region, usize::MAX)
                .expect("widths");
        prop_assert!(exhausted);
        let ours: HashSet<Vec<i64>> =
            found.iter().map(|ce| ce.noise.percents().to_vec()).collect();
        prop_assert_eq!(ours.len(), found.len(), "no duplicates");

        let brute: HashSet<Vec<i64>> = region
            .iter_points()
            .filter(|nv| classify_noisy(&net, &x, nv).expect("width") != label)
            .map(|nv| nv.percents().to_vec())
            .collect();
        prop_assert_eq!(ours, brute);
    }

    /// The paper-faithful restart loop produces the same set as the
    /// single-pass collector.
    #[test]
    fn restart_loop_matches_collector(
        seed in 0u64..500,
        x0 in -30i64..30,
        x1 in -30i64..30,
        delta in 1i64..3,
    ) {
        let net = random_net(seed, &[2, 3, 2]);
        let x = rational_point(&[x0, x1]);
        let label = net.classify(&x).expect("width");
        let region = NoiseRegion::symmetric(delta, 2);

        let (collected, _, _) =
            collect_region_counterexamples(&net, &x, label, &region, usize::MAX)
                .expect("widths");
        let restarted: Vec<_> =
            CounterexampleEnumerator::new(&net, &x, label, region).collect();

        let a: HashSet<Vec<i64>> =
            collected.iter().map(|ce| ce.noise.percents().to_vec()).collect();
        let b: HashSet<Vec<i64>> =
            restarted.iter().map(|ce| ce.noise.percents().to_vec()).collect();
        prop_assert_eq!(a, b);
    }

    /// Robustness verdicts are monotone in the noise range: if ±Δ is
    /// unsafe, every ±Δ' ⊇ ±Δ is unsafe too.
    #[test]
    fn verdicts_monotone_in_delta(
        seed in 0u64..500,
        x0 in -30i64..30,
        x1 in -30i64..30,
        delta in 1i64..5,
    ) {
        let net = random_net(seed, &[2, 3, 2]);
        let x = rational_point(&[x0, x1]);
        let label = net.classify(&x).expect("width");
        let small = NoiseRegion::symmetric(delta, 2);
        let large = NoiseRegion::symmetric(delta + 1, 2);
        let (small_out, _) = find_counterexample(&net, &x, label, &small).expect("widths");
        let (large_out, _) = find_counterexample(&net, &x, label, &large).expect("widths");
        if !small_out.is_robust() {
            prop_assert!(!large_out.is_robust(), "monotonicity violated");
        }
    }

    /// The zero vector is never a counterexample for the net's own
    /// classification (P1 self-consistency).
    #[test]
    fn zero_noise_never_flips_own_label(
        seed in 0u64..1000,
        x0 in -50i64..50,
        x1 in -50i64..50,
    ) {
        let net = random_net(seed, &[2, 4, 2]);
        let x = rational_point(&[x0, x1]);
        let label = net.classify(&x).expect("width");
        let (out, stats) =
            find_counterexample(&net, &x, label, &NoiseRegion::symmetric(0, 2))
                .expect("widths");
        prop_assert!(out.is_robust());
        prop_assert!(stats.boxes_visited >= 1);
    }

    /// Region algebra: split partitions both the grid and the verdict work.
    #[test]
    fn split_partitions_counterexamples(
        seed in 0u64..300,
        x0 in -30i64..30,
        x1 in -30i64..30,
        delta in 1i64..4,
    ) {
        let net = random_net(seed, &[2, 3, 2]);
        let x = rational_point(&[x0, x1]);
        let label = net.classify(&x).expect("width");
        let region = NoiseRegion::symmetric(delta, 2);
        let (a, b) = region.split().expect("delta ≥ 1 splits");

        let count = |r: &NoiseRegion| {
            collect_region_counterexamples(&net, &x, label, r, usize::MAX)
                .expect("widths")
                .0
                .len()
        };
        prop_assert_eq!(count(&region), count(&a) + count(&b));
    }
}
